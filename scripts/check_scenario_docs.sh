#!/usr/bin/env bash
# Checks that every scenario named in the README / PAPER.md scenario tables
# exists in the registry (`figure --list` output), so the docs can never
# drift ahead of — or behind — the code.
#
# A "scenario table row" is any markdown table row whose first column is a
# single backticked name: `| `name` | ... |`. Rows whose first column is
# anything else (crate paths, strategy arms, …) are ignored.
set -euo pipefail

cd "$(dirname "$0")/.."

listing=$(cargo run --release -p xcc-bench --bin figure -- --list)
echo "$listing"

fail=0
for doc in README.md PAPER.md; do
    # First-column backticked names of table rows, e.g. "| `fig8` | ...".
    names=$(sed -n 's/^| *`\([a-z0-9_]*\)` *|.*/\1/p' "$doc" | sort -u)
    for name in $names; do
        if ! echo "$listing" | awk '{print $1}' | grep -qx "$name"; then
            echo "ERROR: $doc names scenario \`$name\` but 'figure --list' does not know it" >&2
            fail=1
        fi
    done
done

# The docs must also cover every registered scenario at least once.
for name in $(echo "$listing" | awk '{print $1}'); do
    if ! grep -q "\`$name\`" README.md PAPER.md; then
        echo "ERROR: registered scenario \`$name\` is not documented in README.md or PAPER.md" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "scenario docs OK: every documented scenario is registered and vice versa"
