//! The RPC cost model.
//!
//! The paper identifies the Tendermint RPC endpoint as the dominant
//! cross-chain bottleneck: queries are served one at a time, and the queries
//! the relayer uses to pull packet data back out of the chain return large
//! responses whose service time grows with the amount of IBC data in the
//! queried block (§IV-B, §V "Transaction data collection"). The model here is
//! calibrated against the two measurements the paper reports: a block of 20
//! transactions with 100 `MsgTransfer` each takes ≈2.9 s to query, and the
//! same block shape with `MsgRecvPacket` takes ≈5.7 s.

use serde::{Deserialize, Serialize};

use xcc_sim::SimDuration;

/// The kind of RPC request being served, which determines its cost profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestKind {
    /// `broadcast_tx_sync`: submit a transaction and run `CheckTx`.
    BroadcastTxSync,
    /// `status` / small metadata queries.
    Status,
    /// `abci_query` for an account (sequence / balance lookups).
    AccountQuery,
    /// Mempool-aware account-sequence query: the committed sequence plus the
    /// account's unconfirmed mempool window (Tendermint's `unconfirmed_txs`
    /// filtered by sender). Costs a mempool scan on top of the account read.
    UnconfirmedAccountQuery,
    /// Packet-data pull: the `tx_search`-style query the relayer issues per
    /// source transaction to rebuild packets, including proofs.
    PacketDataPull,
    /// A batched packet-data pull covering many transactions in one query:
    /// the block scan is paid once and a per-item pagination surcharge is
    /// added instead (the "what if pulls were batched?" counterfactual).
    BatchedDataPull,
    /// Proof query for a single packet commitment or acknowledgement.
    ProofQuery,
    /// Header/commit/validator-set query used to build client updates.
    ClientUpdateData,
    /// `block_results`-style query for a whole block (analysis tooling).
    BlockResults,
    /// Unreceived-packet / unreceived-ack filter queries.
    UnreceivedQuery,
}

impl RequestKind {
    /// Every request kind, in declaration order. The position of a kind in
    /// this table is its stable xcc-prof counter slot (see
    /// [`RequestKind::index`]); new kinds must be appended, not inserted.
    pub const ALL: [RequestKind; 10] = [
        RequestKind::BroadcastTxSync,
        RequestKind::Status,
        RequestKind::AccountQuery,
        RequestKind::UnconfirmedAccountQuery,
        RequestKind::PacketDataPull,
        RequestKind::BatchedDataPull,
        RequestKind::ProofQuery,
        RequestKind::ClientUpdateData,
        RequestKind::BlockResults,
        RequestKind::UnreceivedQuery,
    ];

    /// The kind's stable position in [`RequestKind::ALL`], used as its
    /// work-counter slot in `xcc_sim::prof`.
    pub fn index(self) -> usize {
        match self {
            RequestKind::BroadcastTxSync => 0,
            RequestKind::Status => 1,
            RequestKind::AccountQuery => 2,
            RequestKind::UnconfirmedAccountQuery => 3,
            RequestKind::PacketDataPull => 4,
            RequestKind::BatchedDataPull => 5,
            RequestKind::ProofQuery => 6,
            RequestKind::ClientUpdateData => 7,
            RequestKind::BlockResults => 8,
            RequestKind::UnreceivedQuery => 9,
        }
    }

    /// The kind's wire-style snake_case name, used as its key in profiled
    /// bench output (`BENCH_golden.json`).
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::BroadcastTxSync => "broadcast_tx_sync",
            RequestKind::Status => "status",
            RequestKind::AccountQuery => "account_query",
            RequestKind::UnconfirmedAccountQuery => "unconfirmed_account_query",
            RequestKind::PacketDataPull => "packet_data_pull",
            RequestKind::BatchedDataPull => "batched_data_pull",
            RequestKind::ProofQuery => "proof_query",
            RequestKind::ClientUpdateData => "client_update_data",
            RequestKind::BlockResults => "block_results",
            RequestKind::UnreceivedQuery => "unreceived_query",
        }
    }
}

/// Service-time parameters of the simulated RPC server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpcCostModel {
    /// Fixed cost of accepting and dispatching any request.
    pub base: SimDuration,
    /// Cost per kilobyte of response payload.
    pub per_response_kilobyte: SimDuration,
    /// Additional cost of a packet-data pull per IBC *message committed in
    /// the queried block* when the messages are transfers. This is the
    /// super-linear term that makes large submission batches so expensive
    /// (Figs. 12 and 13).
    pub data_pull_per_block_msg_transfer: SimDuration,
    /// As above, for receive messages (larger responses: packets plus proofs
    /// plus acknowledgements).
    pub data_pull_per_block_msg_recv: SimDuration,
    /// Cost of running `CheckTx` during `broadcast_tx_sync`, per message in
    /// the submitted transaction.
    pub broadcast_per_msg: SimDuration,
    /// Per-requested-item surcharge of a batched data pull: result assembly
    /// and pagination for every packet the single query returns. Batching
    /// amortizes the block scan but is not free.
    pub batched_pull_per_item: SimDuration,
    /// Per-pending-transaction cost of an unconfirmed-aware account query:
    /// the node walks its mempool to count the account's in-flight window,
    /// so the scan grows with the mempool backlog.
    pub unconfirmed_query_per_pending_tx: SimDuration,
}

impl Default for RpcCostModel {
    fn default() -> Self {
        RpcCostModel {
            base: SimDuration::from_millis(5),
            per_response_kilobyte: SimDuration::from_micros(900),
            // Calibrated so that 50 pulls over a 5,000-message block cost
            // ≈110 s (transfer) and ≈207 s (recv), the Fig. 12 breakdown.
            data_pull_per_block_msg_transfer: SimDuration::from_micros(439),
            data_pull_per_block_msg_recv: SimDuration::from_micros(823),
            broadcast_per_msg: SimDuration::from_micros(30),
            batched_pull_per_item: SimDuration::from_micros(120),
            unconfirmed_query_per_pending_tx: SimDuration::from_micros(4),
        }
    }
}

/// Context describing the request being priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestProfile {
    /// What kind of request this is.
    pub kind: RequestKind,
    /// Estimated response payload in bytes.
    pub response_bytes: usize,
    /// For data pulls and broadcasts: the number of IBC messages in the
    /// queried block / submitted transaction.
    pub messages: usize,
    /// For data pulls: whether the block being queried is dominated by
    /// receive messages (larger per-message responses).
    pub recv_heavy: bool,
    /// For batched data pulls: the number of items the single query returns.
    pub items: usize,
}

impl RequestProfile {
    /// A small fixed-size request (status, account query…).
    pub fn small(kind: RequestKind) -> Self {
        RequestProfile {
            kind,
            response_bytes: 512,
            messages: 0,
            recv_heavy: false,
            items: 0,
        }
    }
}

impl RpcCostModel {
    /// The server-side service time of a request.
    pub fn service_time(&self, profile: &RequestProfile) -> SimDuration {
        let size_cost = self.per_response_kilobyte * (profile.response_bytes as u64 / 1024);
        let kind_cost = match profile.kind {
            RequestKind::BroadcastTxSync => self.broadcast_per_msg * profile.messages as u64,
            RequestKind::PacketDataPull => {
                let per_msg = if profile.recv_heavy {
                    self.data_pull_per_block_msg_recv
                } else {
                    self.data_pull_per_block_msg_transfer
                };
                per_msg * profile.messages as u64
            }
            RequestKind::BatchedDataPull => {
                // One block scan for the whole batch plus a per-item
                // pagination surcharge, instead of one scan per chunk.
                let per_msg = if profile.recv_heavy {
                    self.data_pull_per_block_msg_recv
                } else {
                    self.data_pull_per_block_msg_transfer
                };
                per_msg * profile.messages as u64
                    + self.batched_pull_per_item * profile.items as u64
            }
            RequestKind::UnconfirmedAccountQuery => {
                // The mempool scan: `items` carries the pending-tx count the
                // node walked to answer the query.
                self.unconfirmed_query_per_pending_tx * profile.items as u64
            }
            RequestKind::BlockResults => {
                // Whole-block queries pay the size cost twice: encoding and
                // pagination overhead (the paper's 331,706-line responses).
                size_cost
            }
            // Metadata lookups answered from indexed state: no per-message
            // work beyond the base fee and response-size cost. Each variant
            // is priced explicitly so the `uncosted-rpc` lint can prove no
            // RequestKind ships without a costing decision.
            RequestKind::Status
            | RequestKind::AccountQuery
            | RequestKind::ProofQuery
            | RequestKind::ClientUpdateData
            | RequestKind::UnreceivedQuery => SimDuration::ZERO,
        };
        self.base + size_cost + kind_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_reproduces_paper_block_query_costs() {
        let model = RpcCostModel::default();
        // A single data pull over a block holding 2,000 transfer messages
        // (the paper's 20 × 100 example) should take roughly 2.9 s…
        let transfer_pull = model.service_time(&RequestProfile {
            kind: RequestKind::PacketDataPull,
            response_bytes: 1_200_000,
            messages: 2_000,
            recv_heavy: false,
            items: 0,
        });
        // …and the recv-heavy equivalent roughly 5.7 s.
        let recv_pull = model.service_time(&RequestProfile {
            kind: RequestKind::PacketDataPull,
            response_bytes: 2_400_000,
            messages: 2_000,
            recv_heavy: true,
            items: 0,
        });
        let t = transfer_pull.as_secs_f64();
        let r = recv_pull.as_secs_f64();
        assert!((1.5..4.5).contains(&t), "transfer pull {t}s");
        assert!((3.5..8.0).contains(&r), "recv pull {r}s");
        assert!(r > t * 1.5, "recv pulls must be substantially slower");
    }

    #[test]
    fn fig12_scale_data_pull_costs() {
        // 50 pulls over a 5,000-message block: ≈110 s for transfers and
        // ≈207 s for receives (±20%).
        let model = RpcCostModel::default();
        let transfer_total: f64 = (0..50)
            .map(|_| {
                model
                    .service_time(&RequestProfile {
                        kind: RequestKind::PacketDataPull,
                        response_bytes: 70_000,
                        messages: 5_000,
                        recv_heavy: false,
                        items: 0,
                    })
                    .as_secs_f64()
            })
            .sum();
        let recv_total: f64 = (0..50)
            .map(|_| {
                model
                    .service_time(&RequestProfile {
                        kind: RequestKind::PacketDataPull,
                        response_bytes: 140_000,
                        messages: 5_000,
                        recv_heavy: true,
                        items: 0,
                    })
                    .as_secs_f64()
            })
            .sum();
        assert!(
            (88.0..132.0).contains(&transfer_total),
            "transfer pulls total {transfer_total}s"
        );
        assert!(
            (165.0..250.0).contains(&recv_total),
            "recv pulls total {recv_total}s"
        );
    }

    #[test]
    fn batched_pull_amortizes_the_block_scan() {
        let model = RpcCostModel::default();
        // Fig. 12 shape: 5,000 packets pulled out of a 5,000-message block.
        // Sequentially that is 50 chunked pulls, each paying the block scan…
        let sequential: f64 = (0..50)
            .map(|_| {
                model
                    .service_time(&RequestProfile {
                        kind: RequestKind::PacketDataPull,
                        response_bytes: 70_000,
                        messages: 5_000,
                        recv_heavy: false,
                        items: 0,
                    })
                    .as_secs_f64()
            })
            .sum();
        // …while one batched query pays it once plus a per-item surcharge.
        let batched = model
            .service_time(&RequestProfile {
                kind: RequestKind::BatchedDataPull,
                response_bytes: 3_500_000,
                messages: 5_000,
                recv_heavy: false,
                items: 5_000,
            })
            .as_secs_f64();
        assert!(
            batched * 10.0 < sequential,
            "batched {batched}s vs sequential {sequential}s"
        );
        // The surcharge keeps batching from being free.
        let unbatched_single = model
            .service_time(&RequestProfile {
                kind: RequestKind::PacketDataPull,
                response_bytes: 3_500_000,
                messages: 5_000,
                recv_heavy: false,
                items: 0,
            })
            .as_secs_f64();
        assert!(batched > unbatched_single);
    }

    #[test]
    fn service_time_is_monotone_in_size_and_messages() {
        let model = RpcCostModel::default();
        let small = model.service_time(&RequestProfile::small(RequestKind::Status));
        let big = model.service_time(&RequestProfile {
            kind: RequestKind::BlockResults,
            response_bytes: 10_000_000,
            messages: 0,
            recv_heavy: false,
            items: 0,
        });
        assert!(big > small);

        let few = model.service_time(&RequestProfile {
            kind: RequestKind::BroadcastTxSync,
            response_bytes: 1_000,
            messages: 10,
            recv_heavy: false,
            items: 0,
        });
        let many = model.service_time(&RequestProfile {
            kind: RequestKind::BroadcastTxSync,
            response_bytes: 1_000,
            messages: 100,
            recv_heavy: false,
            items: 0,
        });
        assert!(many > few);
    }

    #[test]
    fn small_queries_cost_little() {
        let model = RpcCostModel::default();
        let status = model.service_time(&RequestProfile::small(RequestKind::Status));
        assert!(status < SimDuration::from_millis(20));
    }

    #[test]
    fn unconfirmed_query_scales_with_the_mempool_scan() {
        let model = RpcCostModel::default();
        let profile = |items| RequestProfile {
            kind: RequestKind::UnconfirmedAccountQuery,
            response_bytes: 512,
            messages: 0,
            recv_heavy: false,
            items,
        };
        let empty = model.service_time(&profile(0));
        let busy = model.service_time(&profile(5_000));
        assert_eq!(
            empty,
            model.service_time(&RequestProfile::small(RequestKind::AccountQuery)),
            "an empty mempool costs no more than a plain account query"
        );
        assert_eq!(
            busy - empty,
            model.unconfirmed_query_per_pending_tx * 5_000,
            "the mempool walk is linear in the backlog"
        );
    }
}
