//! The WebSocket event subscription and its frame-size limit.
//!
//! Hermes learns about new blocks by subscribing to the node's WebSocket
//! endpoint. Tendermint caps WebSocket messages at 16 MiB; when a block
//! carries more IBC event data than that, the subscription fails with
//! "Failed to collect events" and — as §V of the paper documents — the
//! affected packets are neither relayed nor timed out.

use std::rc::Rc;

use xcc_sim::SimDuration;
use xcc_tendermint::node::BlockTxEvents;

use crate::endpoint::RpcEndpoint;

/// Tendermint's default maximum WebSocket message size (16 MiB).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Errors raised while collecting a block's events over the subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WsError {
    /// The serialized event payload exceeds the maximum frame size.
    ///
    /// Hermes logs this as "Failed to collect events".
    FrameTooLarge {
        /// Size of the payload that was attempted.
        payload_bytes: usize,
        /// The configured limit.
        max_bytes: usize,
    },
    /// The requested block does not exist (subscription raced ahead).
    UnknownBlock {
        /// The missing height.
        height: u64,
    },
}

impl std::fmt::Display for WsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WsError::FrameTooLarge { payload_bytes, max_bytes } => write!(
                f,
                "Failed to collect events: WebSocket frame of {payload_bytes} bytes exceeds maximum of {max_bytes} bytes"
            ),
            WsError::UnknownBlock { height } => write!(f, "no block at height {height}"),
        }
    }
}

impl std::error::Error for WsError {}

/// The batch of events delivered for one newly committed block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockEventBatch {
    /// Height of the block.
    pub height: u64,
    /// Per-transaction `(tx hash, result code, events)` in block order,
    /// shared with the block's commit-time cache (and with every other
    /// subscriber) rather than cloned per delivery.
    pub tx_events: Rc<BlockTxEvents>,
    /// Total encoded size of the delivered payload.
    pub payload_bytes: usize,
}

impl BlockEventBatch {
    /// Total number of events across all transactions.
    pub fn event_count(&self) -> usize {
        self.tx_events
            .iter()
            .map(|(_, _, events)| events.len())
            .sum()
    }

    /// Number of transactions whose execution succeeded.
    pub fn successful_txs(&self) -> usize {
        self.tx_events
            .iter()
            .filter(|(_, code, _)| *code == 0)
            .count()
    }
}

/// A per-relayer WebSocket subscription to one chain's `NewBlock` events.
#[derive(Debug, Clone)]
pub struct WebSocketSubscription {
    max_frame_bytes: usize,
    delivery_overhead: SimDuration,
    delivered_blocks: u64,
    failed_blocks: u64,
}

impl Default for WebSocketSubscription {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_FRAME_BYTES)
    }
}

impl WebSocketSubscription {
    /// Creates a subscription with an explicit frame-size limit.
    pub fn new(max_frame_bytes: usize) -> Self {
        WebSocketSubscription {
            max_frame_bytes,
            delivery_overhead: SimDuration::from_millis(2),
            delivered_blocks: 0,
            failed_blocks: 0,
        }
    }

    /// The configured frame-size limit.
    pub fn max_frame_bytes(&self) -> usize {
        self.max_frame_bytes
    }

    /// Fixed processing overhead added to each delivered batch.
    pub fn delivery_overhead(&self) -> SimDuration {
        self.delivery_overhead
    }

    /// Number of block event batches successfully delivered.
    pub fn delivered_blocks(&self) -> u64 {
        self.delivered_blocks
    }

    /// Number of blocks whose events could not be collected.
    pub fn failed_blocks(&self) -> u64 {
        self.failed_blocks
    }

    /// Collects the events of the block at `height` from `rpc`, enforcing
    /// the frame-size limit.
    ///
    /// # Errors
    ///
    /// Fails with [`WsError::FrameTooLarge`] when the block's event payload
    /// exceeds the limit, and [`WsError::UnknownBlock`] when the block does
    /// not exist.
    pub fn collect_block_events(
        &mut self,
        rpc: &RpcEndpoint,
        height: u64,
    ) -> Result<BlockEventBatch, WsError> {
        if height == 0 || height > rpc.chain().borrow().height() {
            return Err(WsError::UnknownBlock { height });
        }
        let (tx_events, payload_bytes) = rpc.block_events(height);
        if payload_bytes > self.max_frame_bytes {
            self.failed_blocks += 1;
            return Err(WsError::FrameTooLarge {
                payload_bytes,
                max_bytes: self.max_frame_bytes,
            });
        }
        self.delivered_blocks += 1;
        Ok(BlockEventBatch {
            height,
            tx_events,
            payload_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::RpcCostModel;
    use xcc_chain::chain::Chain;
    use xcc_chain::coin::Coin;
    use xcc_chain::genesis::GenesisConfig;
    use xcc_chain::msg::Msg;
    use xcc_chain::tx::Tx;
    use xcc_sim::{DetRng, LatencyModel, SimTime};

    fn rpc_with_block(txs: usize) -> RpcEndpoint {
        let chain = Chain::new(GenesisConfig::new("chain-a").with_funded_accounts(
            "user",
            txs.max(1),
            100_000_000,
        ))
        .into_shared();
        let rpc = RpcEndpoint::new(
            chain.clone(),
            RpcCostModel::default(),
            LatencyModel::Zero,
            DetRng::new(3),
        );
        {
            let mut c = chain.borrow_mut();
            for i in 0..txs {
                let tx = Tx::new(
                    format!("user-{i}").into(),
                    0,
                    vec![Msg::BankSend {
                        from: format!("user-{i}").into(),
                        to: "user-0".into(),
                        amount: Coin::new("uatom", 1),
                    }],
                    "uatom",
                );
                c.submit_tx(&tx, SimTime::ZERO).unwrap();
            }
            c.produce_block(SimTime::from_secs(5));
        }
        rpc
    }

    #[test]
    fn events_are_delivered_within_the_limit() {
        let rpc = rpc_with_block(3);
        let mut ws = WebSocketSubscription::default();
        let batch = ws.collect_block_events(&rpc, 1).unwrap();
        assert_eq!(batch.height, 1);
        assert_eq!(batch.tx_events.len(), 3);
        assert_eq!(batch.successful_txs(), 3);
        assert!(batch.event_count() >= 3);
        assert_eq!(ws.delivered_blocks(), 1);
        assert_eq!(ws.failed_blocks(), 0);
    }

    #[test]
    fn oversized_payload_fails_to_collect_events() {
        let rpc = rpc_with_block(5);
        // Artificially tiny limit triggers the same code path as the paper's
        // 1,000 × 100-transfer block.
        let mut ws = WebSocketSubscription::new(64);
        let err = ws.collect_block_events(&rpc, 1).unwrap_err();
        match err {
            WsError::FrameTooLarge {
                payload_bytes,
                max_bytes,
            } => {
                assert!(payload_bytes > max_bytes);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("Failed to collect events"));
        assert_eq!(ws.failed_blocks(), 1);
    }

    #[test]
    fn unknown_blocks_are_reported() {
        let rpc = rpc_with_block(1);
        let mut ws = WebSocketSubscription::default();
        assert_eq!(
            ws.collect_block_events(&rpc, 7).unwrap_err(),
            WsError::UnknownBlock { height: 7 }
        );
        assert_eq!(
            ws.collect_block_events(&rpc, 0).unwrap_err(),
            WsError::UnknownBlock { height: 0 }
        );
    }

    #[test]
    fn default_limit_is_sixteen_mebibytes() {
        assert_eq!(DEFAULT_MAX_FRAME_BYTES, 16_777_216);
        let ws = WebSocketSubscription::default();
        assert_eq!(ws.max_frame_bytes(), DEFAULT_MAX_FRAME_BYTES);
        assert!(ws.delivery_overhead() > SimDuration::ZERO);
    }
}
