//! The simulated Tendermint RPC endpoint served by a full node.
//!
//! All queries go through a single-server FIFO queue ([`FifoServer`]): the
//! endpoint serves them one at a time, which is the root cause of the
//! data-pull bottleneck the paper measures. Every method returns an
//! [`RpcResponse`] carrying both the result and the simulated time at which
//! the caller receives it (queueing + service + network round trip).

use std::rc::Rc;

use xcc_chain::account::AccountId;
use xcc_chain::chain::SharedChain;
use xcc_chain::tx::Tx;
use xcc_ibc::client::ClientUpdate;
use xcc_ibc::commitment::{CommitmentProof, NonMembershipProof};
use xcc_ibc::events as ibc_events;
use xcc_ibc::ids::{ChannelId, PortId, Sequence};
use xcc_ibc::packet::{Acknowledgement, Packet};
use xcc_sim::prof;
use xcc_sim::{DetRng, FifoServer, LatencyModel, SimDuration, SimTime};
use xcc_tendermint::abci::Event;
use xcc_tendermint::hash::Hash;
use xcc_tendermint::node::{BlockTxEvents, TxStatus};

use crate::cost::{RequestKind, RequestProfile, RpcCostModel};

/// A response from the RPC endpoint: the value plus when it arrives at the
/// caller.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcResponse<T> {
    /// The response payload.
    pub value: T,
    /// Simulated time at which the caller has the response in hand.
    pub ready_at: SimTime,
    /// Estimated size of the response in bytes.
    pub response_bytes: usize,
}

/// Errors returned by `broadcast_tx_sync`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BroadcastError {
    /// `CheckTx` rejected the transaction (code and log are included).
    CheckTxFailed {
        /// ABCI error code.
        code: u32,
        /// Error log, e.g. "account sequence mismatch…".
        log: String,
    },
    /// The mempool refused the transaction (full or duplicate).
    MempoolRejected {
        /// Description of the rejection.
        reason: String,
    },
}

impl std::fmt::Display for BroadcastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BroadcastError::CheckTxFailed { code, log } => {
                write!(f, "broadcast failed (code {code}): {log}")
            }
            BroadcastError::MempoolRejected { reason } => {
                write!(f, "mempool rejected tx: {reason}")
            }
        }
    }
}

impl std::error::Error for BroadcastError {}

/// The answer to a mempool-aware account-sequence query
/// ([`RpcEndpoint::account_sequence_unconfirmed`]): everything a client needs
/// to pick its next sequence without burning a transaction on the §V
/// account-sequence race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnconfirmedSequence {
    /// The committed sequence — what a plain
    /// [`account_sequence`](RpcEndpoint::account_sequence) query returns.
    pub committed: u64,
    /// The sequence `CheckTx` expects on the account's next submission (the
    /// node's check state). Runs ahead of `committed` while the account's
    /// transactions sit in the mempool, and resets to `committed` at every
    /// block commit.
    pub expected: u64,
    /// Number of the account's transactions currently in the mempool.
    pub pending: u64,
}

impl UnconfirmedSequence {
    /// The sequence the account's next *new* transaction will need once the
    /// mempool drains: the committed sequence plus the unconfirmed window.
    pub fn unconfirmed(&self) -> u64 {
        self.committed + self.pending
    }
}

/// A snapshot of one RPC lane's accounting: every relayer process owns one
/// endpoint (lane) per chain, each with its own single-server FIFO queue, so
/// serialization is per-process — a second process's queries never queue
/// behind the first's. The experiment runner collects one snapshot per lane
/// at the end of a run ([`lane_stats`](RpcEndpoint::lane_stats)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneStats {
    /// The lane's diagnostic name (`rpc-<chain-id>`).
    pub name: String,
    /// Total queries this lane served.
    pub queries_served: u64,
    /// Cumulative time the lane's server spent busy.
    pub busy_time: SimDuration,
    /// Cumulative queueing delay over all the lane's queries.
    pub total_wait: SimDuration,
    /// Largest observed sojourn time (wait plus service) of any query.
    pub max_backlog: SimDuration,
}

/// The execution outcome of one committed transaction, as reported by
/// `tx_search`-style queries.
#[derive(Debug, Clone, PartialEq)]
pub struct TxResultView {
    /// The transaction hash.
    pub hash: Hash,
    /// Height the transaction was committed at.
    pub height: u64,
    /// ABCI result code (0 = success).
    pub code: u32,
    /// Execution log (error message on failure).
    pub log: String,
    /// Events emitted by the transaction.
    pub events: Vec<Event>,
    /// Encoded size of the transaction in bytes.
    pub tx_bytes: usize,
}

/// A Tendermint RPC endpoint bound to one chain's full node.
#[derive(Debug)]
pub struct RpcEndpoint {
    chain: SharedChain,
    queue: FifoServer,
    cost: RpcCostModel,
    latency: LatencyModel,
    rng: DetRng,
}

impl RpcEndpoint {
    /// Creates an endpoint for `chain` with the given cost and latency
    /// models.
    pub fn new(chain: SharedChain, cost: RpcCostModel, latency: LatencyModel, rng: DetRng) -> Self {
        let name = format!("rpc-{}", chain.borrow().id());
        RpcEndpoint {
            chain,
            queue: FifoServer::new(name),
            cost,
            latency,
            rng,
        }
    }

    /// The chain this endpoint serves.
    pub fn chain(&self) -> &SharedChain {
        &self.chain
    }

    /// Total number of queries served so far.
    pub fn queries_served(&self) -> u64 {
        self.queue.jobs_served()
    }

    /// Cumulative time the RPC server spent busy.
    pub fn busy_time(&self) -> SimDuration {
        self.queue.busy_time()
    }

    /// The queueing backlog a request arriving at `now` would face.
    pub fn backlog_at(&self, now: SimTime) -> SimDuration {
        self.queue.backlog_at(now)
    }

    /// A snapshot of this lane's accounting (queries served, busy time,
    /// cumulative wait, worst backlog).
    pub fn lane_stats(&self) -> LaneStats {
        LaneStats {
            name: self.queue.name().to_string(),
            queries_served: self.queue.jobs_served(),
            busy_time: self.queue.busy_time(),
            total_wait: self.queue.total_wait(),
            max_backlog: self.queue.max_backlog(),
        }
    }

    fn respond<T>(&mut self, now: SimTime, profile: RequestProfile, value: T) -> RpcResponse<T> {
        prof::bump_rpc_call(profile.kind.index());
        let service = self.cost.service_time(&profile);
        let request_arrives = now + self.latency.sample_one_way(&mut self.rng);
        let served_at = self.queue.submit(request_arrives, service);
        let ready_at = served_at + self.latency.sample_one_way(&mut self.rng);
        RpcResponse {
            value,
            ready_at,
            response_bytes: profile.response_bytes,
        }
    }

    /// `status`: the chain id and latest committed height.
    pub fn status(&mut self, now: SimTime) -> RpcResponse<(String, u64)> {
        let (id, height) = {
            let chain = self.chain.borrow();
            (chain.id().to_string(), chain.height())
        };
        self.respond(
            now,
            RequestProfile::small(RequestKind::Status),
            (id, height),
        )
    }

    /// Account sequence query, used by clients to sign their next
    /// transaction.
    pub fn account_sequence(&mut self, now: SimTime, address: &AccountId) -> RpcResponse<u64> {
        let seq = self.chain.borrow().app().account_sequence(address);
        self.respond(now, RequestProfile::small(RequestKind::AccountQuery), seq)
    }

    /// Mempool-aware account-sequence query: the committed sequence, the
    /// check-state sequence `CheckTx` currently expects, and the account's
    /// unconfirmed mempool window — Tendermint's `unconfirmed_txs` filtered
    /// by sender, folded into one query. The service time pays a scan over
    /// the whole mempool (the node walks every pending transaction to filter
    /// by sender), so the query gets slower exactly when it matters most.
    pub fn account_sequence_unconfirmed(
        &mut self,
        now: SimTime,
        address: &AccountId,
    ) -> RpcResponse<UnconfirmedSequence> {
        let (snapshot, mempool_size) = {
            let chain = self.chain.borrow();
            let app = chain.app();
            (
                UnconfirmedSequence {
                    committed: app.account_sequence(address),
                    expected: app.check_account_sequence(address),
                    pending: chain.mempool_pending_from(address.as_str()) as u64,
                },
                chain.mempool_size(),
            )
        };
        self.respond(
            now,
            RequestProfile {
                kind: RequestKind::UnconfirmedAccountQuery,
                response_bytes: 512,
                messages: 0,
                recv_heavy: false,
                items: mempool_size,
            },
            snapshot,
        )
    }

    /// `broadcast_tx_sync`: submit a transaction to the mempool.
    pub fn broadcast_tx_sync(
        &mut self,
        now: SimTime,
        tx: &Tx,
    ) -> RpcResponse<Result<Hash, BroadcastError>> {
        let msg_count = tx.msg_count();
        let raw = tx.encode();
        // The transaction reaches the node one network hop after the caller
        // sends it; blocks proposed before that instant cannot include it.
        let arrival = now + self.latency.sample_one_way(&mut self.rng);
        let result = {
            let mut chain = self.chain.borrow_mut();
            chain.submit_raw_tx(raw, arrival)
        };
        let value = result.map_err(|e| match e {
            xcc_tendermint::node::SubmitError::CheckTxFailed { code, log } => {
                BroadcastError::CheckTxFailed { code, log }
            }
            xcc_tendermint::node::SubmitError::Mempool(err) => BroadcastError::MempoolRejected {
                reason: err.to_string(),
            },
        });
        self.respond(
            now,
            RequestProfile {
                kind: RequestKind::BroadcastTxSync,
                response_bytes: 256,
                messages: msg_count,
                recv_heavy: false,
                items: 0,
            },
            value,
        )
    }

    /// Whether a transaction is committed, pending or unknown.
    pub fn tx_status(&mut self, now: SimTime, hash: &Hash) -> RpcResponse<TxStatus> {
        let status = self.chain.borrow().tx_status(hash);
        self.respond(now, RequestProfile::small(RequestKind::Status), status)
    }

    /// The execution results of every transaction committed at `height`
    /// (the `tx_search tx.height=X` query the analysis tooling uses).
    pub fn block_tx_results(
        &mut self,
        now: SimTime,
        height: u64,
    ) -> RpcResponse<Vec<TxResultView>> {
        let (views, bytes) = self.collect_block_results(height);
        self.respond(
            now,
            RequestProfile {
                kind: RequestKind::BlockResults,
                response_bytes: bytes,
                messages: 0,
                recv_heavy: false,
                items: 0,
            },
            views,
        )
    }

    fn collect_block_results(&self, height: u64) -> (Vec<TxResultView>, usize) {
        let chain = self.chain.borrow();
        let Some(block) = chain.block_at(height) else {
            return (Vec::new(), 256);
        };
        let mut views = Vec::with_capacity(block.results.len());
        let mut bytes = 512usize;
        // Hashes come from the commit-time event cache instead of re-hashing
        // every raw transaction on every poll.
        for ((tx, result), (hash, _, _)) in block
            .block
            .data
            .txs
            .iter()
            .zip(&block.results)
            .zip(block.tx_events.iter())
        {
            let view = TxResultView {
                hash: *hash,
                height,
                code: result.code,
                log: result.log.clone(),
                events: result.events.clone(),
                tx_bytes: tx.len(),
            };
            bytes += tx.len() + result.encoded_size();
            views.push(view);
        }
        (views, bytes)
    }

    /// The number of IBC messages committed in the block at `height`, used to
    /// price data-pull queries against that block.
    fn block_ibc_messages(&self, height: u64) -> usize {
        let chain = self.chain.borrow();
        chain
            .block_at(height)
            .map(|b| b.results.iter().map(|r| r.events.len()).sum())
            .unwrap_or(0)
    }

    /// The relayer's packet data pull: reconstructs the packets and
    /// commitment proofs for `sequences` sent over `(port, channel)`,
    /// querying against the block at `height` (whose size drives the cost).
    pub fn pull_packet_data(
        &mut self,
        now: SimTime,
        height: u64,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
    ) -> RpcResponse<Vec<(Packet, CommitmentProof)>> {
        let (out, bytes) = self.collect_packet_data(port, channel, sequences);
        let block_msgs = self.block_ibc_messages(height);
        self.respond(
            now,
            RequestProfile {
                kind: RequestKind::PacketDataPull,
                response_bytes: bytes,
                messages: block_msgs,
                recv_heavy: false,
                items: 0,
            },
            out,
        )
    }

    fn collect_packet_data(
        &self,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
    ) -> (Vec<(Packet, CommitmentProof)>, usize) {
        let mut out = Vec::with_capacity(sequences.len());
        let mut bytes = 1024usize;
        let chain = self.chain.borrow();
        let ibc = chain.app().ibc();
        for seq in sequences {
            if let (Some(packet), Some(proof)) = (
                ibc.sent_packet(port, channel, *seq),
                ibc.prove_packet_commitment(port, channel, *seq),
            ) {
                bytes += packet.encoded_size() + proof.encoded_size();
                out.push((packet.clone(), proof));
            }
        }
        (out, bytes)
    }

    /// A batched variant of [`pull_packet_data`](RpcEndpoint::pull_packet_data)
    /// covering an arbitrary number of sequences in one query: the block scan
    /// is paid once for the whole batch, with a per-item pagination surcharge
    /// (see [`RpcCostModel::batched_pull_per_item`]).
    pub fn pull_packet_data_batched(
        &mut self,
        now: SimTime,
        height: u64,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
    ) -> RpcResponse<Vec<(Packet, CommitmentProof)>> {
        let (out, bytes) = self.collect_packet_data(port, channel, sequences);
        let block_msgs = self.block_ibc_messages(height);
        self.respond(
            now,
            RequestProfile {
                kind: RequestKind::BatchedDataPull,
                response_bytes: bytes,
                messages: block_msgs,
                recv_heavy: false,
                items: sequences.len(),
            },
            out,
        )
    }

    /// The relayer's acknowledgement data pull on the destination chain:
    /// returns the acknowledgement and its proof for each received sequence,
    /// priced against the (recv-heavy) block at `height`.
    pub fn pull_ack_data(
        &mut self,
        now: SimTime,
        height: u64,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
    ) -> RpcResponse<Vec<(Sequence, Acknowledgement, CommitmentProof)>> {
        let (out, bytes) = self.collect_ack_data(port, channel, sequences);
        let block_msgs = self.block_ibc_messages(height);
        self.respond(
            now,
            RequestProfile {
                kind: RequestKind::PacketDataPull,
                response_bytes: bytes,
                messages: block_msgs,
                recv_heavy: true,
                items: 0,
            },
            out,
        )
    }

    /// A batched variant of [`pull_ack_data`](RpcEndpoint::pull_ack_data):
    /// one recv-heavy query for the whole batch of sequences, with the block
    /// scan paid once plus the per-item pagination surcharge.
    pub fn pull_ack_data_batched(
        &mut self,
        now: SimTime,
        height: u64,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
    ) -> RpcResponse<Vec<(Sequence, Acknowledgement, CommitmentProof)>> {
        let (out, bytes) = self.collect_ack_data(port, channel, sequences);
        let block_msgs = self.block_ibc_messages(height);
        self.respond(
            now,
            RequestProfile {
                kind: RequestKind::BatchedDataPull,
                response_bytes: bytes,
                messages: block_msgs,
                recv_heavy: true,
                items: sequences.len(),
            },
            out,
        )
    }

    fn collect_ack_data(
        &self,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
    ) -> (Vec<(Sequence, Acknowledgement, CommitmentProof)>, usize) {
        let mut out = Vec::with_capacity(sequences.len());
        let mut bytes = 1024usize;
        let chain = self.chain.borrow();
        let ibc = chain.app().ibc();
        for seq in sequences {
            if let (Some(ack), Some(proof)) = (
                ibc.packet_acknowledgement(port, channel, *seq),
                ibc.prove_packet_acknowledgement(port, channel, *seq),
            ) {
                bytes += ack.encoded_size() + proof.encoded_size();
                out.push((*seq, ack.clone(), proof));
            }
        }
        (out, bytes)
    }

    /// Header, commit, validator set and IBC root of the latest block,
    /// packaged as the client update a relayer submits before proofs.
    pub fn client_update_data(&mut self, now: SimTime) -> RpcResponse<Option<ClientUpdate>> {
        let update = {
            let chain = self.chain.borrow();
            chain.latest_block().map(|latest| {
                let height = latest.block.header.height;
                ClientUpdate {
                    header: latest.block.header.clone(),
                    commit: chain
                        .commit_for(height)
                        .cloned()
                        .expect("latest block has a commit"),
                    validators: chain.validators().clone(),
                    ibc_root: chain.app().ibc().commitment_root(),
                }
            })
        };
        self.respond(
            now,
            RequestProfile {
                kind: RequestKind::ClientUpdateData,
                response_bytes: 2_048,
                messages: 0,
                recv_heavy: false,
                items: 0,
            },
            update,
        )
    }

    /// Filters `sequences` down to packets not yet received on this chain.
    pub fn unreceived_packets(
        &mut self,
        now: SimTime,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
    ) -> RpcResponse<Vec<Sequence>> {
        let unreceived = self
            .chain
            .borrow()
            .app()
            .ibc()
            .unreceived_packets(port, channel, sequences);
        self.respond(
            now,
            RequestProfile {
                kind: RequestKind::UnreceivedQuery,
                response_bytes: 128 + sequences.len() * 8,
                messages: 0,
                recv_heavy: false,
                items: 0,
            },
            unreceived,
        )
    }

    /// Filters `sequences` down to packets whose commitments still exist on
    /// this chain, i.e. not yet acknowledged.
    pub fn unacknowledged_packets(
        &mut self,
        now: SimTime,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
    ) -> RpcResponse<Vec<Sequence>> {
        let unacked = self
            .chain
            .borrow()
            .app()
            .ibc()
            .unacknowledged_packets(port, channel, sequences);
        self.respond(
            now,
            RequestProfile {
                kind: RequestKind::UnreceivedQuery,
                response_bytes: 128 + sequences.len() * 8,
                messages: 0,
                recv_heavy: false,
                items: 0,
            },
            unacked,
        )
    }

    /// A proof that this chain never received the given packet, used to build
    /// `MsgTimeout` on the counterparty.
    pub fn non_receipt_proof(
        &mut self,
        now: SimTime,
        port: &PortId,
        channel: &ChannelId,
        sequence: Sequence,
    ) -> RpcResponse<Option<NonMembershipProof>> {
        let proof = self
            .chain
            .borrow()
            .app()
            .ibc()
            .prove_packet_non_receipt(port, channel, sequence);
        self.respond(now, RequestProfile::small(RequestKind::ProofQuery), proof)
    }

    /// The events emitted by every transaction at `height`, grouped per
    /// transaction, along with the total encoded size. This is what the
    /// WebSocket subscription delivers to the relayer when a new block is
    /// committed; the frame-size limit is enforced by
    /// [`crate::websocket::WebSocketSubscription`].
    pub fn block_events(&self, height: u64) -> (Rc<BlockTxEvents>, usize) {
        let chain = self.chain.borrow();
        let Some(block) = chain.block_at(height) else {
            return (Rc::new(Vec::new()), 0);
        };
        // Both the tuple list (which includes the event payload *and* the
        // per-tx hashes) and its encoded size are precomputed once at block
        // commit; each subscriber shares the same allocation.
        (Rc::clone(&block.tx_events), block.events_payload_bytes)
    }

    /// Extracts the IBC packets sent in the block at `height` over the given
    /// channel end, in event order (used by tests and the analysis pipeline;
    /// the relayer itself goes through the WebSocket path).
    pub fn packets_sent_at(&self, height: u64, port: &PortId, channel: &ChannelId) -> Vec<Packet> {
        let (events, _) = self.block_events(height);
        events
            .iter()
            .filter(|(_, code, _)| *code == 0)
            .flat_map(|(_, _, events)| events.iter())
            .filter(|e| {
                e.kind == ibc_events::SEND_PACKET && ibc_events::is_for_channel(e, port, channel)
            })
            .filter_map(ibc_events::packet_from_event)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcc_chain::chain::Chain;
    use xcc_chain::coin::Coin;
    use xcc_chain::genesis::GenesisConfig;
    use xcc_chain::msg::Msg;

    fn endpoint(latency_ms: u64) -> RpcEndpoint {
        let chain =
            Chain::new(GenesisConfig::new("chain-a").with_funded_accounts("user", 3, 100_000_000))
                .into_shared();
        RpcEndpoint::new(
            chain,
            RpcCostModel::default(),
            LatencyModel::constant_rtt_ms(latency_ms),
            DetRng::new(7),
        )
    }

    fn bank_tx(seq: u64) -> Tx {
        Tx::new(
            "user-0".into(),
            seq,
            vec![Msg::BankSend {
                from: "user-0".into(),
                to: "user-1".into(),
                amount: Coin::new("uatom", 1),
            }],
            "uatom",
        )
    }

    #[test]
    fn status_reports_chain_and_height() {
        let mut rpc = endpoint(0);
        let res = rpc.status(SimTime::ZERO);
        assert_eq!(res.value, ("chain-a".to_string(), 0));
        assert!(res.ready_at > SimTime::ZERO, "service time is never zero");
    }

    #[test]
    fn broadcast_enters_mempool_and_reports_errors() {
        let mut rpc = endpoint(0);
        let ok = rpc.broadcast_tx_sync(SimTime::ZERO, &bank_tx(0));
        assert!(ok.value.is_ok());
        assert_eq!(rpc.chain().borrow().mempool_size(), 1);

        // Stale sequence: the paper's "account sequence mismatch".
        let err = rpc
            .broadcast_tx_sync(SimTime::ZERO, &bank_tx(0))
            .value
            .unwrap_err();
        match err {
            BroadcastError::MempoolRejected { .. } => panic!("expected CheckTx failure"),
            BroadcastError::CheckTxFailed { log, .. } => {
                assert!(log.contains("account sequence mismatch"))
            }
        }
    }

    #[test]
    fn queries_are_served_sequentially() {
        let mut rpc = endpoint(0);
        // Two expensive queries issued at the same instant: the second waits.
        rpc.chain()
            .borrow_mut()
            .produce_block(SimTime::from_secs(5));
        let first = rpc.block_tx_results(SimTime::from_secs(5), 1);
        let second = rpc.block_tx_results(SimTime::from_secs(5), 1);
        assert!(second.ready_at > first.ready_at);
        assert_eq!(rpc.queries_served(), 2);
        assert!(rpc.busy_time() > SimDuration::ZERO);
        // The lane snapshot mirrors the live accessors and records that the
        // second query waited behind the first on this lane's queue.
        let lane = rpc.lane_stats();
        assert_eq!(lane.name, "rpc-chain-a");
        assert_eq!(lane.queries_served, 2);
        assert_eq!(lane.busy_time, rpc.busy_time());
        assert!(lane.total_wait > SimDuration::ZERO);
        assert!(lane.max_backlog >= lane.total_wait);
    }

    #[test]
    fn separate_lanes_do_not_queue_behind_each_other() {
        // Two endpoints on the same chain model two relayer processes'
        // independent RPC connections: the same two expensive queries issued
        // at the same instant each get an idle server.
        let chain =
            Chain::new(GenesisConfig::new("chain-a").with_funded_accounts("user", 3, 100_000_000))
                .into_shared();
        chain.borrow_mut().produce_block(SimTime::from_secs(5));
        let lane_of = |seed| {
            RpcEndpoint::new(
                chain.clone(),
                RpcCostModel::default(),
                LatencyModel::Zero,
                DetRng::new(seed),
            )
        };
        let mut a = lane_of(1);
        let mut b = lane_of(2);
        let shared_first = a.block_tx_results(SimTime::from_secs(5), 1);
        let own_lane = b.block_tx_results(SimTime::from_secs(5), 1);
        assert_eq!(
            own_lane.ready_at, shared_first.ready_at,
            "a process with its own lane pays no queueing behind its peer"
        );
        assert_eq!(a.lane_stats().total_wait, SimDuration::ZERO);
        assert_eq!(b.lane_stats().total_wait, SimDuration::ZERO);
    }

    #[test]
    fn network_latency_adds_a_round_trip() {
        let mut lan = endpoint(0);
        let mut wan = endpoint(200);
        let t0 = SimTime::ZERO;
        let lan_ready = lan.status(t0).ready_at;
        let wan_ready = wan.status(t0).ready_at;
        let diff = (wan_ready - t0).as_millis() as i64 - (lan_ready - t0).as_millis() as i64;
        assert!(
            (195..=205).contains(&diff),
            "round trip difference was {diff}ms"
        );
    }

    #[test]
    fn account_sequence_tracks_commits() {
        let mut rpc = endpoint(0);
        assert_eq!(
            rpc.account_sequence(SimTime::ZERO, &"user-0".into()).value,
            0
        );
        rpc.broadcast_tx_sync(SimTime::ZERO, &bank_tx(0))
            .value
            .unwrap();
        rpc.chain()
            .borrow_mut()
            .produce_block(SimTime::from_secs(5));
        assert_eq!(
            rpc.account_sequence(SimTime::from_secs(5), &"user-0".into())
                .value,
            1
        );
    }

    #[test]
    fn unconfirmed_sequence_tracks_the_mempool_window_and_the_check_reset() {
        let mut rpc = endpoint(0);
        let idle = rpc
            .account_sequence_unconfirmed(SimTime::ZERO, &"user-0".into())
            .value;
        assert_eq!(
            idle,
            UnconfirmedSequence {
                committed: 0,
                expected: 0,
                pending: 0
            }
        );

        // Two transactions enter the mempool: the check state runs ahead of
        // the committed state by exactly the unconfirmed window.
        rpc.broadcast_tx_sync(SimTime::ZERO, &bank_tx(0))
            .value
            .unwrap();
        rpc.broadcast_tx_sync(SimTime::ZERO, &bank_tx(1))
            .value
            .unwrap();
        let pending = rpc
            .account_sequence_unconfirmed(SimTime::ZERO, &"user-0".into())
            .value;
        assert_eq!(pending.committed, 0);
        assert_eq!(pending.expected, 2);
        assert_eq!(pending.pending, 2);
        assert_eq!(pending.unconfirmed(), 2);

        // A block that commits only the first transaction (the second arrived
        // after the propose instant) resets the check state below the
        // unconfirmed window — the §V straddled-commit shape.
        let straddled = Tx::new(
            "user-0".into(),
            2,
            vec![Msg::BankSend {
                from: "user-0".into(),
                to: "user-1".into(),
                amount: Coin::new("uatom", 2),
            }],
            "uatom",
        );
        rpc.chain()
            .borrow_mut()
            .submit_tx(&straddled, SimTime::from_secs(10))
            .unwrap();
        rpc.chain()
            .borrow_mut()
            .produce_block(SimTime::from_secs(5));
        let after = rpc
            .account_sequence_unconfirmed(SimTime::from_secs(5), &"user-0".into())
            .value;
        assert_eq!(after.committed, 2, "the first two transactions committed");
        assert_eq!(
            after.pending, 1,
            "the straddled transaction is still pending"
        );
        assert_eq!(
            after.expected, 2,
            "the commit reset the check state below the unconfirmed window"
        );
        assert_eq!(after.unconfirmed(), 3);
    }

    #[test]
    fn block_tx_results_and_events_reflect_committed_txs() {
        let mut rpc = endpoint(0);
        let hash = rpc
            .broadcast_tx_sync(SimTime::ZERO, &bank_tx(0))
            .value
            .unwrap();
        rpc.chain()
            .borrow_mut()
            .produce_block(SimTime::from_secs(5));
        let results = rpc.block_tx_results(SimTime::from_secs(5), 1);
        assert_eq!(results.value.len(), 1);
        assert_eq!(results.value[0].hash, hash);
        assert_eq!(results.value[0].code, 0);
        assert!(!results.value[0].events.is_empty());

        let (events, bytes) = rpc.block_events(1);
        assert_eq!(events.len(), 1);
        assert!(bytes > 0);
        // Unknown heights return empty results rather than failing.
        assert!(rpc
            .block_tx_results(SimTime::from_secs(5), 99)
            .value
            .is_empty());
        assert_eq!(rpc.block_events(99).0.len(), 0);
    }

    #[test]
    fn tx_status_follows_lifecycle() {
        let mut rpc = endpoint(0);
        let tx = bank_tx(0);
        let hash = tx.hash();
        assert_eq!(rpc.tx_status(SimTime::ZERO, &hash).value, TxStatus::Unknown);
        rpc.broadcast_tx_sync(SimTime::ZERO, &tx).value.unwrap();
        assert_eq!(rpc.tx_status(SimTime::ZERO, &hash).value, TxStatus::Pending);
        rpc.chain()
            .borrow_mut()
            .produce_block(SimTime::from_secs(5));
        assert_eq!(
            rpc.tx_status(SimTime::from_secs(5), &hash).value,
            TxStatus::Committed
        );
    }

    #[test]
    fn client_update_data_requires_a_block() {
        let mut rpc = endpoint(0);
        assert!(rpc.client_update_data(SimTime::ZERO).value.is_none());
        rpc.chain()
            .borrow_mut()
            .produce_block(SimTime::from_secs(5));
        let update = rpc.client_update_data(SimTime::from_secs(5)).value.unwrap();
        assert_eq!(update.header.height, 1);
        assert_eq!(update.commit.height, 1);
    }
}
