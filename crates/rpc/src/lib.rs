//! Simulated Tendermint RPC and WebSocket endpoints.
//!
//! The paper's headline finding is that cross-chain relaying spends roughly
//! 69% of its time waiting for the blockchain's RPC endpoint, because
//! Tendermint serves queries sequentially and the packet-data queries return
//! very large responses. This crate models that subsystem:
//!
//! * [`cost::RpcCostModel`] — response-size- and content-aware service times,
//!   calibrated to the block-query measurements reported in §V of the paper;
//! * [`endpoint::RpcEndpoint`] — a single-server FIFO query queue bound to a
//!   simulated chain, exposing the queries the relayer and the analysis
//!   tooling need (`broadcast_tx_sync`, `tx_search`, packet/ack pulls with
//!   proofs, client update data, unreceived filters);
//! * [`websocket::WebSocketSubscription`] — the per-relayer event
//!   subscription with Tendermint's 16 MiB frame limit and its
//!   "Failed to collect events" failure mode.
//!
//! # Example
//!
//! ```rust
//! use xcc_chain::chain::Chain;
//! use xcc_chain::genesis::GenesisConfig;
//! use xcc_rpc::cost::RpcCostModel;
//! use xcc_rpc::endpoint::RpcEndpoint;
//! use xcc_sim::{DetRng, LatencyModel, SimTime};
//!
//! let chain = Chain::new(GenesisConfig::new("chain-a")).into_shared();
//! let mut rpc = RpcEndpoint::new(chain, RpcCostModel::default(), LatencyModel::Zero, DetRng::new(1));
//! let status = rpc.status(SimTime::ZERO);
//! assert_eq!(status.value.0, "chain-a");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod endpoint;
pub mod websocket;
