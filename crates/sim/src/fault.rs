//! Domain-neutral fault events for discrete-event simulations.
//!
//! A fault is something the environment does *to* the simulated system at a
//! scheduled instant: a process loses its in-memory state, a service stops
//! answering for a while, a trust anchor lapses. This module only knows about
//! those abstract shapes — which process, which service, when, for how long —
//! expressed over [`SimTime`]/[`SimDuration`]. What "process 0" or
//! "service 1" *means* is the embedding runner's business (the IBC runner
//! maps processes to relayers, services to chains and trust subjects to relay
//! paths).
//!
//! Determinism contract: a [`FaultTimeline`] is an ordered list that the
//! runner schedules up-front, before the event loop starts. An **empty**
//! timeline therefore performs zero scheduler calls, leaving the scheduler's
//! tie-break sequence numbers — and with them every downstream event ordering
//! — exactly as they were before fault injection existed. That is why golden
//! fixtures recorded without faults replay bit-identically (see
//! docs/DETERMINISM.md).

use crate::time::{SimDuration, SimTime};

/// One kind of fault, addressed by abstract process/service/subject indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Process `process` crashes: it loses all in-memory state and stops
    /// reacting to notifications until a matching [`FaultKind::ProcessRestart`].
    ProcessCrash {
        /// Index of the crashing process.
        process: usize,
    },
    /// Process `process` restarts cold: it rebuilds its caches from the
    /// outside world and rejoins the simulation's wake protocol.
    ProcessRestart {
        /// Index of the restarting process.
        process: usize,
    },
    /// Service `service` stops making progress for `duration` starting at the
    /// event's scheduled time (a chain halt: no blocks are produced).
    ServiceHalt {
        /// Index of the halted service.
        service: usize,
        /// How long the service stays halted.
        duration: SimDuration,
    },
    /// Service `service` runs `factor`× slower for `duration` starting at the
    /// event's scheduled time (a block-interval stretch). `factor` is an
    /// integer multiplier so stretched schedules stay exactly representable.
    ServiceStretch {
        /// Index of the slowed service.
        service: usize,
        /// Integer slow-down multiplier applied to the service's period.
        factor: u64,
        /// How long the slow-down window lasts.
        duration: SimDuration,
    },
    /// The trust anchor for `subject` lapses permanently (a light-client
    /// trust-period expiry): verification against it fails from this instant.
    TrustExpiry {
        /// Index of the trust subject (the runner's relay-path index).
        subject: usize,
    },
}

/// A deterministic schedule of fault events: `(time, kind)` pairs held in
/// time order (ties keep insertion order, mirroring the scheduler's FIFO
/// tie-break).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultTimeline {
    events: Vec<(SimTime, FaultKind)>,
}

impl FaultTimeline {
    /// An empty timeline (injects nothing, schedules nothing).
    pub fn new() -> Self {
        FaultTimeline { events: Vec::new() }
    }

    /// Builds a timeline from `(time, kind)` pairs, stable-sorting them by
    /// time so equal-time events keep the order they were given in.
    pub fn from_events(events: impl IntoIterator<Item = (SimTime, FaultKind)>) -> Self {
        let mut events: Vec<(SimTime, FaultKind)> = events.into_iter().collect();
        events.sort_by_key(|(at, _)| *at);
        FaultTimeline { events }
    }

    /// Whether the timeline holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The event at `index`, if any.
    pub fn get(&self, index: usize) -> Option<(SimTime, FaultKind)> {
        self.events.get(index).copied()
    }

    /// Iterates the `(time, kind)` pairs in schedule order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, FaultKind)> + '_ {
        self.events.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_events_sorts_by_time_keeping_insertion_order_on_ties() {
        let t = |s| SimTime::from_secs(s);
        let crash = FaultKind::ProcessCrash { process: 0 };
        let restart = FaultKind::ProcessRestart { process: 0 };
        let expiry = FaultKind::TrustExpiry { subject: 1 };
        let timeline = FaultTimeline::from_events([(t(9), restart), (t(3), crash), (t(3), expiry)]);
        assert_eq!(timeline.len(), 3);
        assert_eq!(timeline.get(0), Some((t(3), crash)));
        assert_eq!(timeline.get(1), Some((t(3), expiry)));
        assert_eq!(timeline.get(2), Some((t(9), restart)));
        assert_eq!(timeline.get(3), None);
    }

    #[test]
    fn empty_timeline_is_empty_and_iterates_nothing() {
        let timeline = FaultTimeline::new();
        assert!(timeline.is_empty());
        assert_eq!(timeline.len(), 0);
        assert_eq!(timeline.iter().count(), 0);
        assert_eq!(FaultTimeline::default(), timeline);
    }

    #[test]
    fn durations_travel_with_their_events() {
        let halt = FaultKind::ServiceHalt {
            service: 0,
            duration: SimDuration::from_secs(30),
        };
        let stretch = FaultKind::ServiceStretch {
            service: 1,
            factor: 4,
            duration: SimDuration::from_secs(20),
        };
        let timeline = FaultTimeline::from_events([
            (SimTime::from_secs(5), halt),
            (SimTime::from_secs(6), stretch),
        ]);
        let collected: Vec<_> = timeline.iter().collect();
        assert_eq!(collected[0].1, halt);
        assert_eq!(collected[1].1, stretch);
    }
}
