//! Virtual time: simulation instants and durations with nanosecond precision.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in nanoseconds since the start of the
/// simulation.
///
/// `SimTime` is a newtype over `u64`; arithmetic with [`SimDuration`] is
/// checked in debug builds and saturating in release builds, so a simulation
/// never silently wraps around.
///
/// # Example
///
/// ```rust
/// use xcc_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(200);
/// assert_eq!(t.as_secs_f64(), 0.2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in nanoseconds.
///
/// # Example
///
/// ```rust
/// use xcc_sim::SimDuration;
///
/// let block_interval = SimDuration::from_secs(5);
/// assert_eq!(block_interval.as_millis(), 5_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a floating point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Duration elapsed since `earlier`, or [`SimDuration::ZERO`] if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    ///
    /// Returns `None` when `earlier` is later than `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Whole nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds in this duration (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds as a floating point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two durations.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by a non-negative floating point factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{}ms", self.as_millis())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<SimDuration> for f64 {
    fn from(d: SimDuration) -> f64 {
        d.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 10_500_000_000);
    }

    #[test]
    fn time_difference_is_duration() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(8);
        assert_eq!(b - a, SimDuration::from_secs(5));
        // Saturating in the other direction.
        assert_eq!(a - b, SimDuration::ZERO);
    }

    #[test]
    fn checked_since_detects_ordering() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(8);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_secs(5)));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(200) * 3;
        assert_eq!(d.as_millis(), 600);
        assert_eq!((d / 2).as_millis(), 300);
        assert_eq!(
            d.saturating_sub(SimDuration::from_secs(10)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        let d = SimDuration::from_secs_f64(0.2);
        assert_eq!(d.as_millis(), 200);
        let d = SimDuration::from_secs_f64(2.9);
        assert_eq!(d.as_millis(), 2900);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn duration_from_negative_secs_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_mul_f64() {
        let d = SimDuration::from_secs(10).mul_f64(0.5);
        assert_eq!(d.as_secs(), 5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
        assert_eq!(SimDuration::from_millis(20).to_string(), "20ms");
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|s| SimDuration::from_secs(*s))
            .sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_secs(1);
        let db = SimDuration::from_secs(2);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }
}
