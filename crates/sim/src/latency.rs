//! Network latency models.
//!
//! The paper evaluates two network conditions: a local-area network with
//! negligible latency (< 0.5 ms) and an emulated wide-area network with a
//! 200 ms round-trip time between any pair of machines. [`LatencyModel`]
//! reproduces both, plus a jittered variant for sensitivity studies.

use serde::{Deserialize, Serialize};

use crate::rng::DetRng;
use crate::time::SimDuration;

/// A model of one-way network delay between two hosts.
///
/// # Example
///
/// ```rust
/// use xcc_sim::LatencyModel;
///
/// // The paper's WAN setup: 200 ms round trip between any pair of machines.
/// let wan = LatencyModel::constant_rtt_ms(200);
/// assert_eq!(wan.one_way_nominal().as_millis(), 100);
///
/// let lan = LatencyModel::Zero;
/// assert!(lan.one_way_nominal().is_zero());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// No network delay (the paper's "0 ms" LAN configuration).
    #[default]
    Zero,
    /// A fixed one-way delay.
    Constant {
        /// One-way delay applied to every message.
        one_way: SimDuration,
    },
    /// A uniformly distributed one-way delay in `[min, max]`.
    Uniform {
        /// Smallest possible one-way delay.
        min: SimDuration,
        /// Largest possible one-way delay.
        max: SimDuration,
    },
}

impl LatencyModel {
    /// A constant model expressed as a round-trip time in milliseconds, as
    /// the paper configures it (`tc`-style emulation of 200 ms RTT).
    pub fn constant_rtt_ms(rtt_ms: u64) -> Self {
        if rtt_ms == 0 {
            LatencyModel::Zero
        } else {
            LatencyModel::Constant {
                one_way: SimDuration::from_millis(rtt_ms / 2),
            }
        }
    }

    /// A uniformly jittered model centred on `rtt_ms / 2` one-way with
    /// ±`jitter_ms` of jitter.
    pub fn jittered_rtt_ms(rtt_ms: u64, jitter_ms: u64) -> Self {
        let centre = rtt_ms / 2;
        LatencyModel::Uniform {
            min: SimDuration::from_millis(centre.saturating_sub(jitter_ms)),
            max: SimDuration::from_millis(centre + jitter_ms),
        }
    }

    /// The nominal (mean) one-way delay of the model.
    pub fn one_way_nominal(&self) -> SimDuration {
        match *self {
            LatencyModel::Zero => SimDuration::ZERO,
            LatencyModel::Constant { one_way } => one_way,
            LatencyModel::Uniform { min, max } => (min + max) / 2,
        }
    }

    /// The nominal round-trip time of the model.
    pub fn rtt_nominal(&self) -> SimDuration {
        self.one_way_nominal() * 2
    }

    /// Samples a one-way delay. Deterministic given the RNG state.
    pub fn sample_one_way(&self, rng: &mut DetRng) -> SimDuration {
        match *self {
            LatencyModel::Zero => SimDuration::ZERO,
            LatencyModel::Constant { one_way } => one_way,
            LatencyModel::Uniform { min, max } => {
                if max <= min {
                    min
                } else {
                    let span = max.as_nanos() - min.as_nanos();
                    SimDuration::from_nanos(min.as_nanos() + rng.next_u64_below(span + 1))
                }
            }
        }
    }

    /// Samples a full round trip (two one-way samples).
    pub fn sample_rtt(&self, rng: &mut DetRng) -> SimDuration {
        self.sample_one_way(rng) + self.sample_one_way(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rtt_splits_in_half() {
        let m = LatencyModel::constant_rtt_ms(200);
        assert_eq!(m.one_way_nominal(), SimDuration::from_millis(100));
        assert_eq!(m.rtt_nominal(), SimDuration::from_millis(200));
    }

    #[test]
    fn zero_rtt_is_zero_model() {
        assert_eq!(LatencyModel::constant_rtt_ms(0), LatencyModel::Zero);
        let mut rng = DetRng::new(7);
        assert!(LatencyModel::Zero.sample_one_way(&mut rng).is_zero());
    }

    #[test]
    fn uniform_samples_stay_in_bounds() {
        let m = LatencyModel::jittered_rtt_ms(200, 20);
        let mut rng = DetRng::new(42);
        for _ in 0..1000 {
            let d = m.sample_one_way(&mut rng);
            assert!(d >= SimDuration::from_millis(80));
            assert!(d <= SimDuration::from_millis(120));
        }
    }

    #[test]
    fn uniform_with_degenerate_range() {
        let m = LatencyModel::Uniform {
            min: SimDuration::from_millis(10),
            max: SimDuration::from_millis(10),
        };
        let mut rng = DetRng::new(1);
        assert_eq!(m.sample_one_way(&mut rng), SimDuration::from_millis(10));
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let m = LatencyModel::jittered_rtt_ms(200, 50);
        let mut a = DetRng::new(9);
        let mut b = DetRng::new(9);
        for _ in 0..100 {
            assert_eq!(m.sample_one_way(&mut a), m.sample_one_way(&mut b));
        }
    }
}
