//! xcc-prof: deterministic work counters.
//!
//! Wall-clock timings of a simulation run depend on the host machine and are
//! useless as an exact regression signal on shared CI runners. The counters
//! in this module measure *work performed* instead — events scheduled and
//! popped, RPC calls served per request kind, transactions encoded and
//! decoded, bytes serialized, telemetry records written, relayer wakes and
//! clear-scan visits. Because every run of the simulator is single-threaded
//! and fully deterministic (PRs 5–9), these counters are bit-stable across
//! machines: the same spec and seed always produce the same counter vector,
//! so `goldens --bench --compare` can enforce them with exact equality while
//! wall-clock stays a human-facing, informational number.
//!
//! # Design
//!
//! Counters live in thread-local cells, not in a context object threaded
//! through every API. A simulation run executes entirely on one thread
//! (the experiment runner is a plain event loop), so thread-locality is
//! exactly run-locality: the runner calls [`reset`] when a run starts and
//! [`snapshot`] when it ends, and concurrent runs on sibling threads never
//! observe each other's work. The bump functions are a single `Cell`
//! increment — cheap enough to leave enabled unconditionally, which is what
//! keeps the counters trustworthy: there is no "profiling build" whose
//! behaviour could drift from the real one.
//!
//! RPC calls are counted per request kind in a fixed-size table indexed by
//! the kind's stable index ([`RPC_KIND_SLOTS`] slots). The `sim` crate does
//! not know the `RequestKind` enum (it lives upstream in `xcc-rpc`), so the
//! table is positional here and named by the caller when it surfaces a
//! snapshot.

use std::cell::Cell;

/// Number of positional RPC-kind slots in [`WorkCounters::rpc_calls`].
///
/// `xcc-rpc` currently defines 10 request kinds; the table leaves headroom
/// so adding a kind does not change this crate.
pub const RPC_KIND_SLOTS: usize = 16;

/// A snapshot of the deterministic work counters for one simulation run.
///
/// Obtained from [`snapshot`]; all fields are plain totals since the last
/// [`reset`] on the current thread.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkCounters {
    /// Events pushed into any [`crate::Scheduler`].
    pub events_scheduled: u64,
    /// Events popped from any [`crate::Scheduler`].
    pub events_popped: u64,
    /// RPC calls served, indexed by request-kind slot.
    pub rpc_calls: [u64; RPC_KIND_SLOTS],
    /// Transactions encoded to wire bytes.
    pub txs_encoded: u64,
    /// Transactions decoded from wire bytes.
    pub txs_decoded: u64,
    /// Total wire bytes produced by transaction encoding.
    pub bytes_serialized: u64,
    /// Telemetry step records written (earliest-wins duplicates included).
    pub telemetry_records: u64,
    /// Relayer wake events processed by the runner.
    pub relayer_wakes: u64,
    /// Packets visited by the periodic clear scan.
    pub clear_scan_visits: u64,
}

impl WorkCounters {
    /// Total RPC calls across every request kind.
    pub fn total_rpc_calls(&self) -> u64 {
        self.rpc_calls.iter().sum()
    }

    /// Field-wise sum of two snapshots (used to aggregate a fixture set).
    pub fn merged(&self, other: &WorkCounters) -> WorkCounters {
        let mut rpc_calls = self.rpc_calls;
        for (slot, n) in rpc_calls.iter_mut().zip(other.rpc_calls.iter()) {
            *slot += n;
        }
        WorkCounters {
            events_scheduled: self.events_scheduled + other.events_scheduled,
            events_popped: self.events_popped + other.events_popped,
            rpc_calls,
            txs_encoded: self.txs_encoded + other.txs_encoded,
            txs_decoded: self.txs_decoded + other.txs_decoded,
            bytes_serialized: self.bytes_serialized + other.bytes_serialized,
            telemetry_records: self.telemetry_records + other.telemetry_records,
            relayer_wakes: self.relayer_wakes + other.relayer_wakes,
            clear_scan_visits: self.clear_scan_visits + other.clear_scan_visits,
        }
    }
}

struct CounterCells {
    events_scheduled: Cell<u64>,
    events_popped: Cell<u64>,
    rpc_calls: [Cell<u64>; RPC_KIND_SLOTS],
    txs_encoded: Cell<u64>,
    txs_decoded: Cell<u64>,
    bytes_serialized: Cell<u64>,
    telemetry_records: Cell<u64>,
    relayer_wakes: Cell<u64>,
    clear_scan_visits: Cell<u64>,
}

impl CounterCells {
    const fn new() -> Self {
        CounterCells {
            events_scheduled: Cell::new(0),
            events_popped: Cell::new(0),
            rpc_calls: [const { Cell::new(0) }; RPC_KIND_SLOTS],
            txs_encoded: Cell::new(0),
            txs_decoded: Cell::new(0),
            bytes_serialized: Cell::new(0),
            telemetry_records: Cell::new(0),
            relayer_wakes: Cell::new(0),
            clear_scan_visits: Cell::new(0),
        }
    }
}

thread_local! {
    static COUNTERS: CounterCells = const { CounterCells::new() };
}

/// Resets every counter on the current thread to zero.
///
/// The experiment runner calls this at the start of a run so a snapshot at
/// the end measures exactly that run's work.
pub fn reset() {
    COUNTERS.with(|c| {
        c.events_scheduled.set(0);
        c.events_popped.set(0);
        for slot in &c.rpc_calls {
            slot.set(0);
        }
        c.txs_encoded.set(0);
        c.txs_decoded.set(0);
        c.bytes_serialized.set(0);
        c.telemetry_records.set(0);
        c.relayer_wakes.set(0);
        c.clear_scan_visits.set(0);
    });
}

/// Reads the current thread's counters without resetting them.
pub fn snapshot() -> WorkCounters {
    COUNTERS.with(|c| {
        let mut rpc_calls = [0u64; RPC_KIND_SLOTS];
        for (out, slot) in rpc_calls.iter_mut().zip(c.rpc_calls.iter()) {
            *out = slot.get();
        }
        WorkCounters {
            events_scheduled: c.events_scheduled.get(),
            events_popped: c.events_popped.get(),
            rpc_calls,
            txs_encoded: c.txs_encoded.get(),
            txs_decoded: c.txs_decoded.get(),
            bytes_serialized: c.bytes_serialized.get(),
            telemetry_records: c.telemetry_records.get(),
            relayer_wakes: c.relayer_wakes.get(),
            clear_scan_visits: c.clear_scan_visits.get(),
        }
    })
}

#[inline]
fn bump(field: impl Fn(&CounterCells) -> &Cell<u64>) {
    COUNTERS.with(|c| {
        let cell = field(c);
        cell.set(cell.get() + 1);
    });
}

/// Counts one event pushed into a scheduler.
#[inline]
pub fn bump_event_scheduled() {
    bump(|c| &c.events_scheduled);
}

/// Counts one event popped from a scheduler.
#[inline]
pub fn bump_event_popped() {
    bump(|c| &c.events_popped);
}

/// Counts one RPC call of the kind with the given stable index.
///
/// Indices beyond [`RPC_KIND_SLOTS`] are counted in the last slot rather
/// than dropped, so a future kind added without growing the table is still
/// visible in totals.
#[inline]
pub fn bump_rpc_call(kind_index: usize) {
    COUNTERS.with(|c| {
        let cell = &c.rpc_calls[kind_index.min(RPC_KIND_SLOTS - 1)];
        cell.set(cell.get() + 1);
    });
}

/// Counts one transaction encoded, contributing `wire_bytes` to the
/// serialized-bytes total.
#[inline]
pub fn bump_tx_encoded(wire_bytes: u64) {
    COUNTERS.with(|c| {
        c.txs_encoded.set(c.txs_encoded.get() + 1);
        c.bytes_serialized
            .set(c.bytes_serialized.get() + wire_bytes);
    });
}

/// Counts one transaction decoded from wire bytes.
#[inline]
pub fn bump_tx_decoded() {
    bump(|c| &c.txs_decoded);
}

/// Counts one telemetry step record written.
#[inline]
pub fn bump_telemetry_record() {
    bump(|c| &c.telemetry_records);
}

/// Counts one relayer wake processed by the runner's event loop.
#[inline]
pub fn bump_relayer_wake() {
    bump(|c| &c.relayer_wakes);
}

/// Counts one packet visited by the periodic clear scan.
#[inline]
pub fn bump_clear_scan_visit() {
    bump(|c| &c.clear_scan_visits);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_then_bump_then_snapshot_round_trips() {
        reset();
        bump_event_scheduled();
        bump_event_scheduled();
        bump_event_popped();
        bump_rpc_call(0);
        bump_rpc_call(3);
        bump_rpc_call(3);
        bump_tx_encoded(128);
        bump_tx_decoded();
        bump_telemetry_record();
        bump_relayer_wake();
        bump_clear_scan_visit();

        let snap = snapshot();
        assert_eq!(snap.events_scheduled, 2);
        assert_eq!(snap.events_popped, 1);
        assert_eq!(snap.rpc_calls[0], 1);
        assert_eq!(snap.rpc_calls[3], 2);
        assert_eq!(snap.total_rpc_calls(), 3);
        assert_eq!(snap.txs_encoded, 1);
        assert_eq!(snap.bytes_serialized, 128);
        assert_eq!(snap.txs_decoded, 1);
        assert_eq!(snap.telemetry_records, 1);
        assert_eq!(snap.relayer_wakes, 1);
        assert_eq!(snap.clear_scan_visits, 1);

        reset();
        assert_eq!(snapshot(), WorkCounters::default());
    }

    #[test]
    fn out_of_range_rpc_kind_lands_in_the_last_slot() {
        reset();
        bump_rpc_call(RPC_KIND_SLOTS + 5);
        let snap = snapshot();
        assert_eq!(snap.rpc_calls[RPC_KIND_SLOTS - 1], 1);
        assert_eq!(snap.total_rpc_calls(), 1);
    }

    #[test]
    fn merged_sums_field_wise() {
        let mut a = WorkCounters {
            events_scheduled: 1,
            txs_encoded: 2,
            ..WorkCounters::default()
        };
        a.rpc_calls[1] = 5;
        let mut b = WorkCounters {
            events_scheduled: 10,
            bytes_serialized: 7,
            ..WorkCounters::default()
        };
        b.rpc_calls[1] = 3;
        let m = a.merged(&b);
        assert_eq!(m.events_scheduled, 11);
        assert_eq!(m.txs_encoded, 2);
        assert_eq!(m.bytes_serialized, 7);
        assert_eq!(m.rpc_calls[1], 8);
    }
}
