//! Deterministic event scheduler.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::prof;
use crate::time::{SimDuration, SimTime};

/// A pending event in the scheduler's queue.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties are broken by insertion sequence for full determinism.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which queue implementation backs a [`Scheduler`].
///
/// Both backends honour the exact same `(time, seq)` FIFO contract; they
/// are equivalence-tested against each other (see the unit tests here and
/// the property test in `tests/property_invariants.rs`). The wheel trades
/// the heap's `O(log n)` comparisons per operation for near-constant slot
/// arithmetic, which is what the experiment runner selects for replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerBackend {
    /// A binary min-heap ordered by `(time, seq)` — the reference backend.
    #[default]
    Heap,
    /// A hierarchical timing wheel with a sorted front buffer.
    Wheel,
}

enum Backend<E> {
    Heap(BinaryHeap<Scheduled<E>>),
    Wheel(Wheel<E>),
}

/// A deterministic discrete-event scheduler.
///
/// Events are popped in non-decreasing time order; events scheduled for the
/// same instant are delivered in insertion order, which makes simulation runs
/// bit-for-bit reproducible for a given seed and workload.
///
/// # FIFO tie-breaking is a contract, not an accident
///
/// Every event carries a monotonically increasing sequence number assigned
/// at `schedule_*` time, and the queue orders by `(time, seq)`. Two
/// guarantees follow, and the experiment runner's event loop
/// (`xcc_framework::runner`) depends on both:
///
/// 1. **Insertion order at equal timestamps.** When a block commit notifies
///    every relayer process, the runner schedules one `RelayerWake` per
///    process at the same instant; FIFO delivery runs the processes in
///    ascending id order, deterministically.
/// 2. **FIFO survives interleaved pops.** The sequence counter is global and
///    never reset, so an event scheduled *while same-instant events are
///    being delivered* sorts after everything already queued at that
///    instant. The runner uses this to make a block event yield to pending
///    relayer wakes: re-scheduling the block at the current time places it
///    behind every wake already queued there.
///
/// Both properties are pinned by unit tests
/// (`simultaneous_events_pop_in_insertion_order`,
/// `fifo_order_survives_interleaved_scheduling_and_pops`) and hold for both
/// queue backends ([`SchedulerBackend`]); a property test drives the heap
/// and the timing wheel through identical random schedule/pop interleavings
/// and asserts identical pop sequences.
///
/// The scheduler also tracks the current simulation time: popping an event
/// advances the clock to that event's timestamp.
///
/// # Example
///
/// ```rust
/// use xcc_sim::{Scheduler, SimDuration};
///
/// let mut sched = Scheduler::new();
/// sched.schedule_in(SimDuration::from_secs(2), "second");
/// sched.schedule_in(SimDuration::from_secs(1), "first");
/// assert_eq!(sched.pop().unwrap().1, "first");
/// assert_eq!(sched.now().as_secs_f64(), 1.0);
/// ```
pub struct Scheduler<E> {
    backend: Backend<E>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty heap-backed scheduler with the clock at
    /// [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_backend(SchedulerBackend::Heap)
    }

    /// Creates an empty scheduler on the chosen queue backend with the clock
    /// at [`SimTime::ZERO`].
    pub fn with_backend(backend: SchedulerBackend) -> Self {
        let backend = match backend {
            SchedulerBackend::Heap => Backend::Heap(BinaryHeap::new()),
            SchedulerBackend::Wheel => Backend::Wheel(Wheel::new()),
        };
        Scheduler {
            backend,
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
        }
    }

    /// The queue backend this scheduler runs on.
    pub fn backend(&self) -> SchedulerBackend {
        match &self.backend {
            Backend::Heap(_) => SchedulerBackend::Heap,
            Backend::Wheel(_) => SchedulerBackend::Wheel,
        }
    }

    /// The current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(q) => q.len(),
            Backend::Wheel(w) => w.len,
        }
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Schedules `payload` for delivery at the absolute instant `time`.
    ///
    /// Scheduling an event in the past is clamped to the current time; the
    /// event will be delivered on the next pop.
    pub fn schedule_at(&mut self, time: SimTime, payload: E) {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        prof::bump_event_scheduled();
        let ev = Scheduled { time, seq, payload };
        match &mut self.backend {
            Backend::Heap(q) => q.push(ev),
            Backend::Wheel(w) => w.insert(ev),
        }
    }

    /// Schedules `payload` for delivery `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = match &mut self.backend {
            Backend::Heap(q) => q.pop()?,
            Backend::Wheel(w) => w.pop()?,
        };
        debug_assert!(ev.time >= self.now, "scheduler time went backwards");
        self.now = ev.time;
        self.popped += 1;
        prof::bump_event_popped();
        Some((ev.time, ev.payload))
    }

    /// Returns the timestamp of the next pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(q) => q.peek().map(|e| e.time),
            Backend::Wheel(w) => w.peek_time(),
        }
    }

    /// Drops every pending event, leaving the clock untouched.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap(q) => q.clear(),
            Backend::Wheel(w) => w.clear(),
        }
    }
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("backend", &self.backend())
            .field("now", &self.now)
            .field("pending", &self.len())
            .field("delivered", &self.popped)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Hierarchical timing wheel backend
// ---------------------------------------------------------------------------

/// Slot width exponent of the finest level: `2^20` ns ≈ 1.05 ms per slot.
const GRANULARITY_BITS: u32 = 20;
/// Slots per level (`2^SLOT_BITS`), one occupancy bit each.
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels. The top level's rotation spans `2^(20 + 6·8) = 2^68` ns, which
/// exceeds `u64::MAX`, so every representable `SimTime` fits and no
/// overflow list is needed.
const LEVELS: usize = 8;

const fn level_shift(level: usize) -> u32 {
    GRANULARITY_BITS + SLOT_BITS * level as u32
}

/// A hierarchical timing wheel with an exact, sorted front.
///
/// The wheel proper is an approximation structure: each level buckets events
/// into `SLOTS` slots of geometrically growing width, so ordering inside a
/// slot is unknown. Exactness comes from the `ready` buffer — a tiny binary
/// heap holding every event whose time falls inside the *current* finest
/// slot (one `cursor` slot, ~1 ms of simulated time). All deliveries pop
/// from `ready`, so the global `(time, seq)` order is preserved bit-for-bit;
/// the wheel levels only ever hand whole slots down (cascade) or into
/// `ready` (drain), never deliver directly.
///
/// Invariants:
///
/// * every queued event's time is `>= cursor << GRANULARITY_BITS`;
/// * every event with `time >> GRANULARITY_BITS == cursor` is in `ready`;
/// * an event stored at level `l` shares its level-`l+1` parent slot with
///   the cursor, so its slot index never wraps past the cursor's and slot
///   occupancy scans are plain left-to-right bit scans.
struct Wheel<E> {
    /// `slots[level][index]` holds events awaiting cascade, unordered.
    slots: Vec<Vec<Vec<Scheduled<E>>>>,
    /// One occupancy bit per slot, per level.
    occupied: [u64; LEVELS],
    /// Exactly the events inside the current finest slot, exactly ordered.
    ready: BinaryHeap<Scheduled<E>>,
    /// Absolute index (`time >> GRANULARITY_BITS`) of the current finest
    /// slot. Monotone; only advances when `ready` drains.
    cursor: u64,
    len: usize,
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Wheel {
            slots: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occupied: [0; LEVELS],
            ready: BinaryHeap::new(),
            cursor: 0,
            len: 0,
        }
    }

    fn insert(&mut self, ev: Scheduled<E>) {
        self.len += 1;
        self.place(ev);
    }

    /// Files an event into `ready` or the finest level whose rotation
    /// contains both the event and the cursor.
    fn place(&mut self, ev: Scheduled<E>) {
        let t = ev.time.as_nanos();
        if t >> GRANULARITY_BITS <= self.cursor {
            // Inside (or before — impossible for new events, the scheduler
            // clamps to `now`) the current slot: delivered straight from the
            // exact front buffer.
            self.ready.push(ev);
            return;
        }
        let cursor_ns = self.cursor << GRANULARITY_BITS;
        for level in 0..LEVELS {
            // Same parent slot as the cursor one level up ⇒ this level's
            // rotation covers the event without index ambiguity.
            let parent_shift = level_shift(level) + SLOT_BITS;
            if parent_shift >= u64::BITS || (t >> parent_shift) == (cursor_ns >> parent_shift) {
                let idx = (t >> level_shift(level)) as usize & (SLOTS - 1);
                self.slots[level][idx].push(ev);
                self.occupied[level] |= 1 << idx;
                return;
            }
        }
        unreachable!("the top level's rotation spans all of u64");
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        loop {
            if let Some(ev) = self.ready.pop() {
                self.len -= 1;
                return Some(ev);
            }
            if self.len == 0 {
                return None;
            }
            // `ready` is dry but slots are not: advance the cursor to the
            // earliest occupied slot and drain (level 0) or cascade
            // (level > 0) it. Cascading strictly demotes events — relative
            // to the new cursor their level-(l-1) parent check now passes —
            // so this loop terminates.
            let Some((level, start_ns)) = self.earliest_occupied() else {
                // Unreachable while the len invariant holds (len > 0 means
                // some slot is occupied); degrade to "empty" rather than
                // panicking inside the simulation kernel.
                self.len = 0;
                return None;
            };
            let idx = (start_ns >> level_shift(level)) as usize & (SLOTS - 1);
            self.occupied[level] &= !(1 << idx);
            let drained = std::mem::take(&mut self.slots[level][idx]);
            self.cursor = start_ns >> GRANULARITY_BITS;
            for ev in drained {
                self.place(ev);
            }
        }
    }

    /// Occupancy bits of `level` strictly after the cursor's slot index.
    ///
    /// Occupied slots at a level sit strictly after the cursor's index
    /// within the same rotation (see the struct invariants), so masking off
    /// everything at or before that index leaves the candidates in
    /// left-to-right order.
    fn occupied_ahead(&self, level: usize) -> u64 {
        let cursor_ns = self.cursor << GRANULARITY_BITS;
        let cur_idx = (cursor_ns >> level_shift(level)) as u32 & (SLOTS as u32 - 1);
        // Bits 0..=cur_idx, written to stay in range when cur_idx is 63.
        let at_or_before = u64::MAX >> (u64::BITS - 1 - cur_idx);
        self.occupied[level] & !at_or_before
    }

    /// The earliest occupied slot over all levels, as `(level, slot start in
    /// ns)`. Slot spans start at their lower bound, so the slot with the
    /// minimal start can be drained first without reordering risk.
    fn earliest_occupied(&self) -> Option<(usize, u64)> {
        let cursor_ns = self.cursor << GRANULARITY_BITS;
        let mut best: Option<(usize, u64)> = None;
        for level in 0..LEVELS {
            let ahead = self.occupied_ahead(level);
            if ahead == 0 {
                continue;
            }
            let shift = level_shift(level);
            let idx = ahead.trailing_zeros() as u64;
            let rotation_shift = shift + SLOT_BITS;
            let base = if rotation_shift >= u64::BITS {
                0
            } else {
                (cursor_ns >> rotation_shift) << rotation_shift
            };
            let start = base + (idx << shift);
            if best.is_none_or(|(_, s)| start < s) {
                best = Some((level, start));
            }
        }
        best
    }

    fn peek_time(&self) -> Option<SimTime> {
        if let Some(ev) = self.ready.peek() {
            return Some(ev.time);
        }
        // The wheel levels are unordered inside a slot, but slots later than
        // the earliest-starting occupied slot of each level cannot contain
        // earlier events, so the global minimum is the min over each level's
        // first occupied slot.
        let mut best: Option<SimTime> = None;
        for level in 0..LEVELS {
            let ahead = self.occupied_ahead(level);
            if ahead == 0 {
                continue;
            }
            let idx = ahead.trailing_zeros() as usize;
            for ev in &self.slots[level][idx] {
                if best.is_none_or(|b| ev.time < b) {
                    best = Some(ev.time);
                }
            }
        }
        best
    }

    fn clear(&mut self) {
        for level in &mut self.slots {
            for slot in level {
                slot.clear();
            }
        }
        self.occupied = [0; LEVELS];
        self.ready.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(3), 3u32);
        s.schedule_at(SimTime::from_secs(1), 1u32);
        s.schedule_at(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_in_insertion_order() {
        let mut s = Scheduler::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            s.schedule_at(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    /// Pins the second half of the FIFO contract the experiment runner
    /// relies on: an event scheduled at time `t` *while same-instant events
    /// are being popped* is delivered after every event already queued at
    /// `t`, because the sequence counter is global and never reset. This is
    /// what lets a block event "yield" to pending relayer wakes by
    /// re-scheduling itself at the current time.
    #[test]
    fn fifo_order_survives_interleaved_scheduling_and_pops() {
        for backend in [SchedulerBackend::Heap, SchedulerBackend::Wheel] {
            let mut s = Scheduler::with_backend(backend);
            let t = SimTime::from_secs(1);
            s.schedule_at(t, "block-b");
            s.schedule_at(t, "wake-0");
            s.schedule_at(t, "wake-1");
            // The runner pops block-b, sees wakes pending at the same
            // instant, and re-schedules it: the requeued event must sort
            // after both wakes (and after anything a wake schedules at the
            // same instant).
            assert_eq!(s.pop().unwrap().1, "block-b");
            s.schedule_at(t, "block-b-requeued");
            assert_eq!(s.pop().unwrap().1, "wake-0");
            s.schedule_at(t, "scheduled-by-wake-0");
            assert_eq!(s.pop().unwrap().1, "wake-1");
            assert_eq!(s.pop().unwrap().1, "block-b-requeued");
            assert_eq!(s.pop().unwrap().1, "scheduled-by-wake-0");
            assert!(s.is_empty());
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut s = Scheduler::new();
        s.schedule_in(SimDuration::from_secs(5), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop().unwrap();
        assert_eq!(s.now(), SimTime::from_secs(5));
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        for backend in [SchedulerBackend::Heap, SchedulerBackend::Wheel] {
            let mut s = Scheduler::with_backend(backend);
            s.schedule_at(SimTime::from_secs(10), "later");
            s.pop().unwrap();
            // Scheduling before `now` must not rewind the clock.
            s.schedule_at(SimTime::from_secs(1), "past");
            let (t, e) = s.pop().unwrap();
            assert_eq!(e, "past");
            assert_eq!(t, SimTime::from_secs(10));
        }
    }

    #[test]
    fn peek_does_not_advance() {
        for backend in [SchedulerBackend::Heap, SchedulerBackend::Wheel] {
            let mut s = Scheduler::with_backend(backend);
            s.schedule_at(SimTime::from_secs(2), ());
            assert_eq!(s.peek_time(), Some(SimTime::from_secs(2)));
            assert_eq!(s.now(), SimTime::ZERO);
        }
    }

    #[test]
    fn delivered_counts_pops() {
        let mut s = Scheduler::new();
        for i in 0..10u64 {
            s.schedule_at(SimTime::from_secs(i), i);
        }
        while s.pop().is_some() {}
        assert_eq!(s.delivered(), 10);
        assert!(s.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        for backend in [SchedulerBackend::Heap, SchedulerBackend::Wheel] {
            let mut s = Scheduler::with_backend(backend);
            s.schedule_in(SimDuration::from_secs(1), ());
            s.clear();
            assert!(s.is_empty());
            assert_eq!(s.pop(), None);
        }
    }

    #[test]
    fn scheduling_counts_into_prof() {
        prof::reset();
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), ());
        s.schedule_at(SimTime::from_secs(2), ());
        s.pop();
        let snap = prof::snapshot();
        assert_eq!(snap.events_scheduled, 2);
        assert_eq!(snap.events_popped, 1);
    }

    /// Drives both backends through the same mixed workload — spanning slot
    /// boundaries, whole levels and far-future cascades — and demands
    /// identical pop sequences. The randomized version with interleaved
    /// pops lives in `tests/property_invariants.rs`.
    #[test]
    fn wheel_matches_heap_across_level_boundaries() {
        let times: Vec<u64> = vec![
            0,
            1,
            999,
            1 << 20,
            (1 << 20) + 1,
            (1 << 26) - 1,
            1 << 26,
            (1 << 26) + (1 << 20),
            1 << 32,
            (1 << 32) + 5,
            1 << 40,
            (1 << 40) + (1 << 26),
            1 << 50,
            u64::MAX / 2,
            3,
            1,
        ];
        let mut heap = Scheduler::with_backend(SchedulerBackend::Heap);
        let mut wheel = Scheduler::with_backend(SchedulerBackend::Wheel);
        for (i, &t) in times.iter().enumerate() {
            heap.schedule_at(SimTime::from_nanos(t), i);
            wheel.schedule_at(SimTime::from_nanos(t), i);
        }
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            assert_eq!(a, b);
            assert_eq!(heap.now(), wheel.now());
            if a.is_none() {
                break;
            }
        }
    }
}
