//! Deterministic event scheduler.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A pending event in the scheduler's queue.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties are broken by insertion sequence for full determinism.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event scheduler.
///
/// Events are popped in non-decreasing time order; events scheduled for the
/// same instant are delivered in insertion order, which makes simulation runs
/// bit-for-bit reproducible for a given seed and workload.
///
/// # FIFO tie-breaking is a contract, not an accident
///
/// Every event carries a monotonically increasing sequence number assigned
/// at `schedule_*` time, and the heap orders by `(time, seq)`. Two
/// guarantees follow, and the experiment runner's event loop
/// (`xcc_framework::runner`) depends on both:
///
/// 1. **Insertion order at equal timestamps.** When a block commit notifies
///    every relayer process, the runner schedules one `RelayerWake` per
///    process at the same instant; FIFO delivery runs the processes in
///    ascending id order, deterministically.
/// 2. **FIFO survives interleaved pops.** The sequence counter is global and
///    never reset, so an event scheduled *while same-instant events are
///    being delivered* sorts after everything already queued at that
///    instant. The runner uses this to make a block event yield to pending
///    relayer wakes: re-scheduling the block at the current time places it
///    behind every wake already queued there.
///
/// Both properties are pinned by unit tests
/// (`simultaneous_events_pop_in_insertion_order`,
/// `fifo_order_survives_interleaved_scheduling_and_pops`).
///
/// The scheduler also tracks the current simulation time: popping an event
/// advances the clock to that event's timestamp.
///
/// # Example
///
/// ```rust
/// use xcc_sim::{Scheduler, SimDuration};
///
/// let mut sched = Scheduler::new();
/// sched.schedule_in(SimDuration::from_secs(2), "second");
/// sched.schedule_in(SimDuration::from_secs(1), "first");
/// assert_eq!(sched.pop().unwrap().1, "first");
/// assert_eq!(sched.now().as_secs_f64(), 1.0);
/// ```
pub struct Scheduler<E> {
    queue: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
        }
    }

    /// The current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Schedules `payload` for delivery at the absolute instant `time`.
    ///
    /// Scheduling an event in the past is clamped to the current time; the
    /// event will be delivered on the next pop.
    pub fn schedule_at(&mut self, time: SimTime, payload: E) {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled { time, seq, payload });
    }

    /// Schedules `payload` for delivery `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.queue.pop()?;
        debug_assert!(ev.time >= self.now, "scheduler time went backwards");
        self.now = ev.time;
        self.popped += 1;
        Some((ev.time, ev.payload))
    }

    /// Returns the timestamp of the next pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|e| e.time)
    }

    /// Drops every pending event, leaving the clock untouched.
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("delivered", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(3), 3u32);
        s.schedule_at(SimTime::from_secs(1), 1u32);
        s.schedule_at(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_in_insertion_order() {
        let mut s = Scheduler::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            s.schedule_at(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    /// Pins the second half of the FIFO contract the experiment runner
    /// relies on: an event scheduled at time `t` *while same-instant events
    /// are being popped* is delivered after every event already queued at
    /// `t`, because the sequence counter is global and never reset. This is
    /// what lets a block event "yield" to pending relayer wakes by
    /// re-scheduling itself at the current time.
    #[test]
    fn fifo_order_survives_interleaved_scheduling_and_pops() {
        let mut s = Scheduler::new();
        let t = SimTime::from_secs(1);
        s.schedule_at(t, "block-b");
        s.schedule_at(t, "wake-0");
        s.schedule_at(t, "wake-1");
        // The runner pops block-b, sees wakes pending at the same instant,
        // and re-schedules it: the requeued event must sort after both wakes
        // (and after anything a wake schedules at the same instant).
        assert_eq!(s.pop().unwrap().1, "block-b");
        s.schedule_at(t, "block-b-requeued");
        assert_eq!(s.pop().unwrap().1, "wake-0");
        s.schedule_at(t, "scheduled-by-wake-0");
        assert_eq!(s.pop().unwrap().1, "wake-1");
        assert_eq!(s.pop().unwrap().1, "block-b-requeued");
        assert_eq!(s.pop().unwrap().1, "scheduled-by-wake-0");
        assert!(s.is_empty());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut s = Scheduler::new();
        s.schedule_in(SimDuration::from_secs(5), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop().unwrap();
        assert_eq!(s.now(), SimTime::from_secs(5));
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(10), "later");
        s.pop().unwrap();
        // Scheduling before `now` must not rewind the clock.
        s.schedule_at(SimTime::from_secs(1), "past");
        let (t, e) = s.pop().unwrap();
        assert_eq!(e, "past");
        assert_eq!(t, SimTime::from_secs(10));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(2), ());
        assert_eq!(s.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(s.now(), SimTime::ZERO);
    }

    #[test]
    fn delivered_counts_pops() {
        let mut s = Scheduler::new();
        for i in 0..10u64 {
            s.schedule_at(SimTime::from_secs(i), i);
        }
        while s.pop().is_some() {}
        assert_eq!(s.delivered(), 10);
        assert!(s.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut s = Scheduler::new();
        s.schedule_in(SimDuration::from_secs(1), ());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
    }
}
