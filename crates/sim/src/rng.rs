//! Deterministic random number streams.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator with convenient helpers for
/// simulation use.
///
/// Each experiment run owns one `DetRng` seeded from the experiment seed;
/// sub-components derive independent streams via [`DetRng::fork`], so adding
/// randomness to one component never perturbs another.
///
/// # Example
///
/// ```rust
/// use xcc_sim::DetRng;
///
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut child = a.fork("relayer-0");
/// let x = child.uniform_f64(0.0, 1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
    seed: u64,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// The child's seed mixes the parent seed with a hash of the label, so
    /// forks are stable across runs and independent of the parent's position
    /// in its own stream.
    pub fn fork(&self, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        DetRng::new(self.seed ^ h.rotate_left(17))
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// A uniformly distributed floating point value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        self.inner.gen_range(lo..hi)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// A multiplicative noise factor in `[1 - spread, 1 + spread]`, used to
    /// add bounded run-to-run variance to service times (the paper reports
    /// per-rate distributions over 20 executions).
    pub fn noise_factor(&mut self, spread: f64) -> f64 {
        if spread <= 0.0 {
            1.0
        } else {
            self.uniform_f64(1.0 - spread, 1.0 + spread)
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.next_u64_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..20).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn forks_are_stable_and_independent() {
        let parent = DetRng::new(99);
        let mut c1 = parent.fork("chain-a");
        let mut c2 = parent.fork("chain-a");
        let mut c3 = parent.fork("chain-b");
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn bounded_sampling() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            assert!(r.next_u64_below(10) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        DetRng::new(0).next_u64_below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(8);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-3.0));
        assert!(r.chance(4.0));
    }

    #[test]
    fn noise_factor_bounds() {
        let mut r = DetRng::new(17);
        for _ in 0..500 {
            let f = r.noise_factor(0.1);
            assert!((0.9..=1.1).contains(&f));
        }
        assert_eq!(r.noise_factor(0.0), 1.0);
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut r = DetRng::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
