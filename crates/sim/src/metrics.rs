//! Metric recorders used by the analysis pipeline.
//!
//! The paper reports throughput distributions over 20 executions (violin
//! plots with medians and quartiles), per-step latency breakdowns and time
//! series of completion percentages. The types here provide the primitive
//! statistics those reports are built from.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing named counter.
///
/// # Example
///
/// ```rust
/// use xcc_sim::metrics::Counter;
///
/// let mut c = Counter::new("transfers_completed");
/// c.inc();
/// c.add(9);
/// assert_eq!(c.value(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// Summary statistics over a set of floating-point samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean, or 0 when empty.
    pub mean: f64,
    /// Population standard deviation, or 0 when empty.
    pub std_dev: f64,
    /// Minimum sample, or 0 when empty.
    pub min: f64,
    /// Maximum sample, or 0 when empty.
    pub max: f64,
    /// Median (50th percentile), or 0 when empty.
    pub median: f64,
    /// Lower quartile (25th percentile), or 0 when empty.
    pub lower_quartile: f64,
    /// Upper quartile (75th percentile), or 0 when empty.
    pub upper_quartile: f64,
}

impl Summary {
    /// An all-zero summary for an empty sample set.
    pub fn empty() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            max: 0.0,
            median: 0.0,
            lower_quartile: 0.0,
            upper_quartile: 0.0,
        }
    }
}

/// A collection of floating-point samples with quantile queries.
///
/// Used for the per-input-rate throughput distributions of Figs. 6, 8 and 9
/// (each violin in the paper is one `Histogram` of 20 executions).
///
/// # Example
///
/// ```rust
/// use xcc_sim::metrics::Histogram;
///
/// let mut h = Histogram::new("throughput_tfps");
/// for v in [10.0, 20.0, 30.0, 40.0] {
///     h.record(v);
/// }
/// assert_eq!(h.summary().median, 25.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    name: String,
    samples: Vec<f64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new(name: impl Into<String>) -> Self {
        Histogram {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The histogram's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one sample. Non-finite samples are ignored.
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
        }
    }

    /// Records a duration sample in seconds.
    pub fn record_duration(&mut self, value: SimDuration) {
        self.record(value.as_secs_f64());
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The recorded samples in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Linear-interpolation percentile, `p` in `[0, 100]`.
    ///
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        let p = p.clamp(0.0, 100.0);
        let rank = p / 100.0 * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = rank - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// Full summary statistics of the recorded samples.
    pub fn summary(&self) -> Summary {
        if self.samples.is_empty() {
            return Summary::empty();
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let var = self.samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self
            .samples
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        Summary {
            count: self.samples.len(),
            mean,
            std_dev: var.sqrt(),
            min,
            max,
            median: self.percentile(50.0),
            lower_quartile: self.percentile(25.0),
            upper_quartile: self.percentile(75.0),
        }
    }
}

/// A time series of `(time, value)` points, e.g. the completion percentage
/// curves of Figs. 12 and 13.
///
/// # Example
///
/// ```rust
/// use xcc_sim::metrics::TimeSeries;
/// use xcc_sim::SimTime;
///
/// let mut ts = TimeSeries::new("completed_pct");
/// ts.push(SimTime::from_secs(10), 50.0);
/// ts.push(SimTime::from_secs(20), 100.0);
/// assert_eq!(ts.value_at(SimTime::from_secs(15)), Some(50.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series' name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point. Points must be pushed in non-decreasing time order.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previously pushed point.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some((last, _)) = self.points.last() {
            assert!(time >= *last, "time series points must be pushed in order");
        }
        self.points.push((time, value));
    }

    /// The raw points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last value at or before `time` (step interpolation), if any.
    pub fn value_at(&self, time: SimTime) -> Option<f64> {
        self.points
            .iter()
            .take_while(|(t, _)| *t <= time)
            .last()
            .map(|(_, v)| *v)
    }

    /// The earliest time at which the series reaches `threshold` or more.
    pub fn first_time_at_least(&self, threshold: f64) -> Option<SimTime> {
        self.points
            .iter()
            .find(|(_, v)| *v >= threshold)
            .map(|(t, _)| *t)
    }

    /// The final value of the series, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|(_, v)| *v)
    }
}

/// A registry grouping named histograms and counters for one experiment run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating on first use) the counter named `name`.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters
            .entry(name.to_string())
            .or_insert_with(|| Counter::new(name))
    }

    /// Returns (creating on first use) the histogram named `name`.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(name))
    }

    /// Read-only access to a counter's value, 0 when absent.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map(Counter::value).unwrap_or(0)
    }

    /// Read-only access to a histogram, if present.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = &Counter> {
        self.counters.values()
    }

    /// Iterates over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = &Histogram> {
        self.histograms.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(c.to_string(), "x=5");
    }

    #[test]
    fn histogram_summary_matches_hand_computation() {
        let mut h = Histogram::new("t");
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-9);
        assert!((s.std_dev - 2.0).abs() < 1e-9);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn histogram_percentiles_interpolate() {
        let mut h = Histogram::new("t");
        for v in [10.0, 20.0, 30.0, 40.0] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 10.0);
        assert_eq!(h.percentile(100.0), 40.0);
        assert_eq!(h.percentile(50.0), 25.0);
        assert_eq!(h.summary().lower_quartile, 17.5);
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let mut h = Histogram::new("t");
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(1.0);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn empty_histogram_summary_is_zero() {
        let h = Histogram::new("t");
        assert_eq!(h.summary(), Summary::empty());
        assert_eq!(h.percentile(50.0), 0.0);
    }

    #[test]
    fn time_series_step_lookup() {
        let mut ts = TimeSeries::new("pct");
        ts.push(SimTime::from_secs(5), 10.0);
        ts.push(SimTime::from_secs(10), 60.0);
        ts.push(SimTime::from_secs(20), 100.0);
        assert_eq!(ts.value_at(SimTime::from_secs(1)), None);
        assert_eq!(ts.value_at(SimTime::from_secs(7)), Some(10.0));
        assert_eq!(ts.value_at(SimTime::from_secs(30)), Some(100.0));
        assert_eq!(ts.first_time_at_least(50.0), Some(SimTime::from_secs(10)));
        assert_eq!(ts.last_value(), Some(100.0));
    }

    #[test]
    #[should_panic(expected = "pushed in order")]
    fn time_series_rejects_unordered_points() {
        let mut ts = TimeSeries::new("pct");
        ts.push(SimTime::from_secs(10), 1.0);
        ts.push(SimTime::from_secs(5), 2.0);
    }

    #[test]
    fn registry_creates_on_demand() {
        let mut reg = MetricsRegistry::new();
        reg.counter("a").inc();
        reg.histogram("h").record(3.0);
        assert_eq!(reg.counter_value("a"), 1);
        assert_eq!(reg.counter_value("missing"), 0);
        assert_eq!(reg.get_histogram("h").unwrap().len(), 1);
        assert_eq!(reg.counters().count(), 1);
        assert_eq!(reg.histograms().count(), 1);
    }
}
