//! Single-server FIFO queue used to model sequential service points.
//!
//! The paper's central finding is that the Tendermint RPC endpoint serves
//! queries one at a time ("Tendermint is unable to process queries in
//! parallel, requiring the relayer to wait while its requests for data are
//! processed one by one"). [`FifoServer`] captures exactly that behaviour: a
//! job submitted at time `t` with service requirement `s` completes at
//! `max(t, busy_until) + s`.

use crate::time::{SimDuration, SimTime};

/// A deterministic single-server FIFO queue.
///
/// The server keeps track of when it will next be idle and of simple
/// utilisation statistics. It does not store the jobs themselves — callers
/// submit a job and receive its completion time, which they typically turn
/// into a scheduled event.
///
/// # Example
///
/// ```rust
/// use xcc_sim::{FifoServer, SimDuration, SimTime};
///
/// let mut rpc = FifoServer::new("rpc");
/// let t0 = SimTime::ZERO;
/// let first = rpc.submit(t0, SimDuration::from_secs(3));
/// let second = rpc.submit(t0, SimDuration::from_secs(2));
/// assert_eq!(first.as_secs_f64(), 3.0);
/// // The second query waits for the first: sequential processing.
/// assert_eq!(second.as_secs_f64(), 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct FifoServer {
    name: String,
    busy_until: SimTime,
    busy_time: SimDuration,
    jobs_served: u64,
    total_wait: SimDuration,
    max_backlog: SimDuration,
}

impl FifoServer {
    /// Creates an idle server with a diagnostic `name`.
    pub fn new(name: impl Into<String>) -> Self {
        FifoServer {
            name: name.into(),
            busy_until: SimTime::ZERO,
            busy_time: SimDuration::ZERO,
            jobs_served: 0,
            total_wait: SimDuration::ZERO,
            max_backlog: SimDuration::ZERO,
        }
    }

    /// The diagnostic name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Submits a job arriving at `now` with service requirement `service` and
    /// returns the time at which the job completes.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let start = self.busy_until.max(now);
        let wait = start - now;
        let completion = start + service;
        self.busy_until = completion;
        self.busy_time += service;
        self.jobs_served += 1;
        self.total_wait += wait;
        let backlog = completion - now;
        if backlog > self.max_backlog {
            self.max_backlog = backlog;
        }
        completion
    }

    /// The instant at which the server becomes idle given everything
    /// submitted so far.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// How long a job arriving at `now` would have to wait before service
    /// starts.
    pub fn backlog_at(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Whether the server would be idle at `now`.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Total number of jobs submitted so far.
    pub fn jobs_served(&self) -> u64 {
        self.jobs_served
    }

    /// Cumulative service time of all submitted jobs.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Cumulative queueing delay experienced by all submitted jobs.
    pub fn total_wait(&self) -> SimDuration {
        self.total_wait
    }

    /// Mean queueing delay per job, or zero when nothing was submitted.
    pub fn mean_wait(&self) -> SimDuration {
        if self.jobs_served == 0 {
            SimDuration::ZERO
        } else {
            self.total_wait / self.jobs_served
        }
    }

    /// The largest observed sojourn time (wait plus service) of any job.
    pub fn max_backlog(&self) -> SimDuration {
        self.max_backlog
    }

    /// Fraction of the interval `[SimTime::ZERO, horizon]` the server spent
    /// busy. Returns `0.0` for a zero-length horizon.
    // xcc-lint: allow(float-determinism, reason = "reporting-only ratio; read by renderers, never fed back into simulated state")
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_time.as_secs_f64() / horizon.as_secs_f64()).min(1.0)
    }

    /// Resets all statistics and makes the server idle again.
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.busy_time = SimDuration::ZERO;
        self.jobs_served = 0;
        self.total_wait = SimDuration::ZERO;
        self.max_backlog = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_serves_immediately() {
        let mut s = FifoServer::new("rpc");
        let done = s.submit(SimTime::from_secs(10), SimDuration::from_secs(2));
        assert_eq!(done, SimTime::from_secs(12));
        assert_eq!(s.mean_wait(), SimDuration::ZERO);
    }

    #[test]
    fn busy_server_queues_jobs_fifo() {
        let mut s = FifoServer::new("rpc");
        let t = SimTime::ZERO;
        let a = s.submit(t, SimDuration::from_secs(1));
        let b = s.submit(t, SimDuration::from_secs(1));
        let c = s.submit(t, SimDuration::from_secs(1));
        assert_eq!(a, SimTime::from_secs(1));
        assert_eq!(b, SimTime::from_secs(2));
        assert_eq!(c, SimTime::from_secs(3));
        assert_eq!(s.jobs_served(), 3);
        assert_eq!(s.total_wait(), SimDuration::from_secs(3)); // 0 + 1 + 2
        assert_eq!(s.mean_wait(), SimDuration::from_secs(1));
    }

    #[test]
    fn later_arrival_after_idle_gap() {
        let mut s = FifoServer::new("rpc");
        s.submit(SimTime::ZERO, SimDuration::from_secs(1));
        // Arrives after the server went idle again.
        let done = s.submit(SimTime::from_secs(5), SimDuration::from_secs(1));
        assert_eq!(done, SimTime::from_secs(6));
        assert!(s.is_idle_at(SimTime::from_secs(7)));
    }

    #[test]
    fn utilization_is_bounded() {
        let mut s = FifoServer::new("rpc");
        s.submit(SimTime::ZERO, SimDuration::from_secs(5));
        assert!((s.utilization(SimTime::from_secs(10)) - 0.5).abs() < 1e-9);
        assert_eq!(s.utilization(SimTime::ZERO), 0.0);
        // Overloaded server never reports more than 100%.
        s.submit(SimTime::ZERO, SimDuration::from_secs(100));
        assert_eq!(s.utilization(SimTime::from_secs(10)), 1.0);
    }

    #[test]
    fn backlog_reporting() {
        let mut s = FifoServer::new("rpc");
        s.submit(SimTime::ZERO, SimDuration::from_secs(10));
        assert_eq!(
            s.backlog_at(SimTime::from_secs(4)),
            SimDuration::from_secs(6)
        );
        assert_eq!(s.backlog_at(SimTime::from_secs(20)), SimDuration::ZERO);
        assert_eq!(s.max_backlog(), SimDuration::from_secs(10));
    }

    #[test]
    fn reset_clears_state() {
        let mut s = FifoServer::new("rpc");
        s.submit(SimTime::ZERO, SimDuration::from_secs(10));
        s.reset();
        assert_eq!(s.jobs_served(), 0);
        assert!(s.is_idle_at(SimTime::ZERO));
    }
}
