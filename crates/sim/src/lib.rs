//! Deterministic discrete-event simulation kernel.
//!
//! This crate provides the building blocks used by every other crate in the
//! workspace to reproduce the experiments of *"Analyzing the Performance of
//! the Inter-Blockchain Communication Protocol"* (DSN 2023) without the
//! paper's physical five-machine testbed:
//!
//! * a virtual clock and strongly-typed time/duration values ([`SimTime`],
//!   [`SimDuration`]),
//! * a deterministic event scheduler generic over the event payload
//!   ([`Scheduler`]),
//! * a single-server FIFO queue used to model the *sequential* Tendermint RPC
//!   endpoint that the paper identifies as the main bottleneck
//!   ([`FifoServer`]),
//! * network latency models (constant RTT, uniform jitter) ([`LatencyModel`]),
//! * deterministic random number streams ([`DetRng`]),
//! * domain-neutral fault events and timelines for dependability experiments
//!   ([`FaultKind`], [`FaultTimeline`]),
//! * metric recorders (counters, histograms, time series) used by the
//!   analysis pipeline ([`metrics`]),
//! * deterministic work counters — the xcc-prof profiling layer whose
//!   totals are exact-match regression signals, unlike wall-clock
//!   ([`prof`]).
//!
//! # Example
//!
//! ```rust
//! use xcc_sim::{Scheduler, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut sched = Scheduler::new();
//! sched.schedule_at(SimTime::ZERO + SimDuration::from_secs(5), Ev::Pong);
//! sched.schedule_at(SimTime::ZERO + SimDuration::from_secs(1), Ev::Ping);
//!
//! let (t1, e1) = sched.pop().unwrap();
//! assert_eq!(e1, Ev::Ping);
//! assert_eq!(t1.as_secs_f64(), 1.0);
//! let (_, e2) = sched.pop().unwrap();
//! assert_eq!(e2, Ev::Pong);
//! assert!(sched.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod latency;
pub mod metrics;
pub mod prof;
mod rng;
mod scheduler;
mod server;
mod time;

pub use fault::{FaultKind, FaultTimeline};
pub use latency::LatencyModel;
pub use rng::DetRng;
pub use scheduler::{Scheduler, SchedulerBackend};
pub use server::FifoServer;
pub use time::{SimDuration, SimTime};
