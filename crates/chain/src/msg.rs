//! Application messages routed by the chain.

use serde::{Deserialize, Serialize};

use crate::account::AccountId;
use crate::coin::Coin;
use crate::gas;
use xcc_ibc::client::ClientUpdate;
use xcc_ibc::commitment::{CommitmentProof, NonMembershipProof};
use xcc_ibc::height::Height;
use xcc_ibc::ids::ClientId;
use xcc_ibc::module::TransferParams;
use xcc_ibc::packet::{Acknowledgement, Packet};

/// A message inside a transaction, dispatched to the owning module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Msg {
    /// Bank module: move coins between two local accounts.
    BankSend {
        /// Sender account.
        from: AccountId,
        /// Receiver account.
        to: AccountId,
        /// Amount to move.
        amount: Coin,
    },
    /// IBC transfer module: initiate a cross-chain fungible token transfer
    /// (`MsgTransfer`).
    IbcTransfer(TransferParams),
    /// IBC core: receive a packet relayed from the counterparty
    /// (`MsgRecvPacket`).
    IbcRecvPacket {
        /// The relayed packet.
        packet: Packet,
        /// Proof that the counterparty committed to the packet.
        proof_commitment: CommitmentProof,
        /// Height the proof was generated at.
        proof_height: Height,
        /// The relayer account that signed the message.
        signer: AccountId,
    },
    /// IBC core: process an acknowledgement relayed back from the receiver
    /// (`MsgAcknowledgement`).
    IbcAcknowledgement {
        /// The packet being acknowledged.
        packet: Packet,
        /// The acknowledgement written by the receiving chain.
        acknowledgement: Acknowledgement,
        /// Proof that the receiving chain wrote the acknowledgement.
        proof_acked: CommitmentProof,
        /// Height the proof was generated at.
        proof_height: Height,
        /// The relayer account that signed the message.
        signer: AccountId,
    },
    /// IBC core: expire a packet that was never delivered (`MsgTimeout`).
    IbcTimeout {
        /// The expired packet.
        packet: Packet,
        /// Proof that the destination never received the packet.
        proof_unreceived: NonMembershipProof,
        /// Height the proof was generated at.
        proof_height: Height,
        /// The relayer account that signed the message.
        signer: AccountId,
    },
    /// IBC core: update a hosted light client with a newer counterparty
    /// header (`MsgUpdateClient`).
    IbcUpdateClient {
        /// The client to update.
        client_id: ClientId,
        /// The verified header bundle.
        update: Box<ClientUpdate>,
        /// The relayer account that signed the message.
        signer: AccountId,
    },
}

impl Msg {
    /// The gas this message consumes when executed.
    pub fn gas_cost(&self) -> u64 {
        match self {
            Msg::BankSend { .. } => gas::MSG_BANK_SEND_GAS,
            Msg::IbcTransfer(_) => gas::MSG_TRANSFER_GAS,
            Msg::IbcRecvPacket { .. } => gas::MSG_RECV_PACKET_GAS,
            Msg::IbcAcknowledgement { .. } => gas::MSG_ACK_GAS,
            Msg::IbcTimeout { .. } => gas::MSG_TIMEOUT_GAS,
            Msg::IbcUpdateClient { .. } => gas::MSG_UPDATE_CLIENT_GAS,
        }
    }

    /// A short type URL used in events and logs, mirroring Cosmos message
    /// type URLs.
    pub fn type_url(&self) -> &'static str {
        match self {
            Msg::BankSend { .. } => "/cosmos.bank.v1beta1.MsgSend",
            Msg::IbcTransfer(_) => "/ibc.applications.transfer.v1.MsgTransfer",
            Msg::IbcRecvPacket { .. } => "/ibc.core.channel.v1.MsgRecvPacket",
            Msg::IbcAcknowledgement { .. } => "/ibc.core.channel.v1.MsgAcknowledgement",
            Msg::IbcTimeout { .. } => "/ibc.core.channel.v1.MsgTimeout",
            Msg::IbcUpdateClient { .. } => "/ibc.core.client.v1.MsgUpdateClient",
        }
    }

    /// Approximate encoded size of the message in bytes, used for block-size
    /// accounting and the RPC response-size cost model.
    pub fn encoded_size(&self) -> usize {
        match self {
            Msg::BankSend { .. } => 160,
            // A MsgTransfer carries the ICS-20 packet data and addresses.
            Msg::IbcTransfer(params) => {
                220 + params.denom.len() + params.sender.len() + params.receiver.len()
            }
            // Recv/Ack/Timeout carry the packet plus a Merkle proof, which is
            // why the paper observes recv-heavy blocks producing much larger
            // query responses than transfer-heavy ones.
            Msg::IbcRecvPacket {
                packet,
                proof_commitment,
                ..
            } => 300 + packet.encoded_size() + proof_commitment.encoded_size(),
            Msg::IbcAcknowledgement {
                packet,
                acknowledgement,
                proof_acked,
                ..
            } => {
                300 + packet.encoded_size()
                    + acknowledgement.encoded_size()
                    + proof_acked.encoded_size()
            }
            Msg::IbcTimeout { packet, .. } => 300 + packet.encoded_size() + 96,
            Msg::IbcUpdateClient { .. } => 1_100,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcc_ibc::ids::{ChannelId, PortId};
    use xcc_sim::SimTime;

    fn transfer_msg() -> Msg {
        Msg::IbcTransfer(TransferParams {
            source_port: PortId::transfer(),
            source_channel: ChannelId::with_index(0),
            denom: "uatom".into(),
            amount: 100,
            sender: "alice".into(),
            receiver: "bob".into(),
            timeout_height: Height::at(1_000),
            timeout_timestamp: SimTime::ZERO,
        })
    }

    #[test]
    fn gas_costs_by_message_type() {
        assert_eq!(transfer_msg().gas_cost(), gas::MSG_TRANSFER_GAS);
        let send = Msg::BankSend {
            from: "a".into(),
            to: "b".into(),
            amount: Coin::new("uatom", 1),
        };
        assert_eq!(send.gas_cost(), gas::MSG_BANK_SEND_GAS);
    }

    #[test]
    fn type_urls_are_cosmos_style() {
        assert!(transfer_msg().type_url().contains("MsgTransfer"));
        let send = Msg::BankSend {
            from: "a".into(),
            to: "b".into(),
            amount: Coin::new("uatom", 1),
        };
        assert!(send.type_url().contains("MsgSend"));
    }

    #[test]
    fn encoded_sizes_are_positive_and_scale_with_content() {
        let small = transfer_msg();
        let large = Msg::IbcTransfer(TransferParams {
            denom: "transfer/channel-0/".repeat(10) + "uatom",
            ..match transfer_msg() {
                Msg::IbcTransfer(p) => p,
                _ => unreachable!(),
            }
        });
        assert!(small.encoded_size() > 0);
        assert!(large.encoded_size() > small.encoded_size());
    }
}
