//! Accounts, sequence numbers and the account keeper.
//!
//! Cosmos chains prevent transaction replay through per-account sequence
//! numbers. A transaction is only valid if it carries the account's current
//! sequence, and each committed transaction increments it. The paper's
//! "account sequence mismatch" deployment challenge (§V) and the
//! one-transaction-per-account-per-block workload limitation both derive from
//! this mechanism, so it is modelled faithfully here.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use xcc_tendermint::hash::{hash_fields, Hash};

/// A bech32-style account address (simplified to an opaque string).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AccountId(String);

impl AccountId {
    /// Wraps an address string.
    pub fn new(addr: impl Into<String>) -> Self {
        AccountId(addr.into())
    }

    /// The address as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AccountId {
    fn from(s: &str) -> Self {
        AccountId(s.to_string())
    }
}

impl From<String> for AccountId {
    fn from(s: String) -> Self {
        AccountId(s)
    }
}

/// An account record: address, account number and replay-protection sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Account {
    /// The account's address.
    pub address: AccountId,
    /// Stable per-chain account number.
    pub account_number: u64,
    /// The sequence expected on the account's next transaction.
    pub sequence: u64,
}

/// Computes the simulated signature an account produces over a transaction
/// body digest at a given sequence.
pub fn sign(address: &AccountId, sequence: u64, body_digest: &Hash) -> Hash {
    hash_fields(&[
        b"account-signature",
        address.as_str().as_bytes(),
        &sequence.to_be_bytes(),
        body_digest.as_bytes(),
    ])
}

/// The set of accounts known to the chain.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccountKeeper {
    accounts: BTreeMap<AccountId, Account>,
    next_number: u64,
}

impl AccountKeeper {
    /// Creates an empty keeper.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an account if it does not exist yet and returns it.
    pub fn get_or_create(&mut self, address: &AccountId) -> &Account {
        if !self.accounts.contains_key(address) {
            let account = Account {
                address: address.clone(),
                account_number: self.next_number,
                sequence: 0,
            };
            self.next_number += 1;
            self.accounts.insert(address.clone(), account);
        }
        self.accounts.get(address).expect("just inserted")
    }

    /// Looks up an account.
    pub fn get(&self, address: &AccountId) -> Option<&Account> {
        self.accounts.get(address)
    }

    /// Current sequence of an account (0 for unknown accounts).
    pub fn sequence(&self, address: &AccountId) -> u64 {
        self.accounts.get(address).map(|a| a.sequence).unwrap_or(0)
    }

    /// Increments an account's sequence after a successfully processed
    /// transaction.
    pub fn increment_sequence(&mut self, address: &AccountId) {
        if let Some(account) = self.accounts.get_mut(address) {
            account.sequence += 1;
        }
    }

    /// Number of known accounts.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// `true` when no accounts exist.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Iterates over all accounts in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Account> {
        self.accounts.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcc_tendermint::hash::sha256;

    #[test]
    fn accounts_get_consecutive_numbers_and_zero_sequence() {
        let mut keeper = AccountKeeper::new();
        let a = keeper.get_or_create(&"user-a".into()).clone();
        let b = keeper.get_or_create(&"user-b".into()).clone();
        assert_eq!(a.account_number, 0);
        assert_eq!(b.account_number, 1);
        assert_eq!(a.sequence, 0);
        // Re-creating returns the same account.
        assert_eq!(keeper.get_or_create(&"user-a".into()).account_number, 0);
        assert_eq!(keeper.len(), 2);
    }

    #[test]
    fn sequence_increments_only_for_known_accounts() {
        let mut keeper = AccountKeeper::new();
        keeper.get_or_create(&"user-a".into());
        keeper.increment_sequence(&"user-a".into());
        keeper.increment_sequence(&"user-a".into());
        keeper.increment_sequence(&"ghost".into());
        assert_eq!(keeper.sequence(&"user-a".into()), 2);
        assert_eq!(keeper.sequence(&"ghost".into()), 0);
        assert!(keeper.get(&"ghost".into()).is_none());
    }

    #[test]
    fn signatures_bind_account_sequence_and_body() {
        let digest = sha256(b"tx body");
        let s1 = sign(&"user-a".into(), 0, &digest);
        let s2 = sign(&"user-a".into(), 1, &digest);
        let s3 = sign(&"user-b".into(), 0, &digest);
        let s4 = sign(&"user-a".into(), 0, &sha256(b"other body"));
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_ne!(s1, s4);
        assert_eq!(s1, sign(&"user-a".into(), 0, &digest));
    }

    #[test]
    fn account_id_conversions() {
        let a: AccountId = "user-a".into();
        let b: AccountId = String::from("user-a").into();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "user-a");
        assert_eq!(AccountId::new("x").as_str(), "x");
    }
}
