//! The bank module: balances, transfers, minting and burning.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::account::AccountId;
use crate::coin::Coin;
use xcc_ibc::transfer::BankKeeper;
use xcc_tendermint::hash::{hash_fields, Hash};

/// Errors raised by bank operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BankError {
    /// The sender does not hold enough of the denomination.
    InsufficientFunds {
        /// The account that attempted to spend.
        address: AccountId,
        /// The denomination involved.
        denom: String,
        /// Balance actually held.
        held: u128,
        /// Amount required.
        required: u128,
    },
}

impl std::fmt::Display for BankError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BankError::InsufficientFunds {
                address,
                denom,
                held,
                required,
            } => write!(
                f,
                "insufficient funds: {address} holds {held}{denom}, needs {required}{denom}"
            ),
        }
    }
}

impl std::error::Error for BankError {}

/// The bank module state: per-account balances and total supply tracking.
///
/// # Example
///
/// ```rust
/// use xcc_chain::bank::BankModule;
/// use xcc_chain::coin::Coin;
///
/// let mut bank = BankModule::new();
/// bank.mint_coins(&"alice".into(), &Coin::new("uatom", 100));
/// bank.transfer(&"alice".into(), &"bob".into(), &Coin::new("uatom", 40)).unwrap();
/// assert_eq!(bank.balance(&"bob".into(), "uatom"), 40);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankModule {
    balances: BTreeMap<(AccountId, String), u128>,
    supply: BTreeMap<String, u128>,
}

impl BankModule {
    /// Creates an empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// The balance an account holds in a denomination.
    pub fn balance(&self, address: &AccountId, denom: &str) -> u128 {
        *self
            .balances
            .get(&(address.clone(), denom.to_string()))
            .unwrap_or(&0)
    }

    /// All balances of an account, in denomination order.
    pub fn balances_of(&self, address: &AccountId) -> Vec<Coin> {
        self.balances
            .iter()
            .filter(|((a, _), amount)| a == address && **amount > 0)
            .map(|((_, denom), amount)| Coin::new(denom.clone(), *amount))
            .collect()
    }

    /// Total minted supply of a denomination.
    pub fn total_supply(&self, denom: &str) -> u128 {
        *self.supply.get(denom).unwrap_or(&0)
    }

    /// Mints new coins into an account (genesis allocation and IBC vouchers).
    pub fn mint_coins(&mut self, to: &AccountId, coin: &Coin) {
        *self
            .balances
            .entry((to.clone(), coin.denom.clone()))
            .or_insert(0) += coin.amount;
        *self.supply.entry(coin.denom.clone()).or_insert(0) += coin.amount;
    }

    /// Burns coins from an account.
    ///
    /// # Errors
    ///
    /// Fails when the account's balance is insufficient.
    pub fn burn_coins(&mut self, from: &AccountId, coin: &Coin) -> Result<(), BankError> {
        let key = (from.clone(), coin.denom.clone());
        let held = *self.balances.get(&key).unwrap_or(&0);
        if held < coin.amount {
            return Err(BankError::InsufficientFunds {
                address: from.clone(),
                denom: coin.denom.clone(),
                held,
                required: coin.amount,
            });
        }
        self.balances.insert(key, held - coin.amount);
        if let Some(supply) = self.supply.get_mut(&coin.denom) {
            *supply = supply.saturating_sub(coin.amount);
        }
        Ok(())
    }

    /// Transfers coins between two accounts.
    ///
    /// # Errors
    ///
    /// Fails when the sender's balance is insufficient.
    pub fn transfer(
        &mut self,
        from: &AccountId,
        to: &AccountId,
        coin: &Coin,
    ) -> Result<(), BankError> {
        let from_key = (from.clone(), coin.denom.clone());
        let held = *self.balances.get(&from_key).unwrap_or(&0);
        if held < coin.amount {
            return Err(BankError::InsufficientFunds {
                address: from.clone(),
                denom: coin.denom.clone(),
                held,
                required: coin.amount,
            });
        }
        self.balances.insert(from_key, held - coin.amount);
        *self
            .balances
            .entry((to.clone(), coin.denom.clone()))
            .or_insert(0) += coin.amount;
        Ok(())
    }

    /// A digest of the bank state, folded into the application hash.
    pub fn state_hash(&self) -> Hash {
        let mut fields: Vec<Vec<u8>> = Vec::with_capacity(self.balances.len());
        for ((addr, denom), amount) in &self.balances {
            let mut bytes = addr.as_str().as_bytes().to_vec();
            bytes.push(0);
            bytes.extend_from_slice(denom.as_bytes());
            bytes.extend_from_slice(&amount.to_be_bytes());
            fields.push(bytes);
        }
        let refs: Vec<&[u8]> = fields.iter().map(|f| f.as_slice()).collect();
        hash_fields(&refs)
    }
}

impl BankKeeper for BankModule {
    fn send(&mut self, from: &str, to: &str, denom: &str, amount: u128) -> Result<(), String> {
        self.transfer(
            &AccountId::from(from),
            &AccountId::from(to),
            &Coin::new(denom, amount),
        )
        .map_err(|e| e.to_string())
    }

    fn mint(&mut self, to: &str, denom: &str, amount: u128) {
        self.mint_coins(&AccountId::from(to), &Coin::new(denom, amount));
    }

    fn burn(&mut self, from: &str, denom: &str, amount: u128) -> Result<(), String> {
        self.burn_coins(&AccountId::from(from), &Coin::new(denom, amount))
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_transfer_burn_roundtrip() {
        let mut bank = BankModule::new();
        let alice: AccountId = "alice".into();
        let bob: AccountId = "bob".into();
        bank.mint_coins(&alice, &Coin::new("uatom", 1_000));
        assert_eq!(bank.total_supply("uatom"), 1_000);

        bank.transfer(&alice, &bob, &Coin::new("uatom", 300))
            .unwrap();
        assert_eq!(bank.balance(&alice, "uatom"), 700);
        assert_eq!(bank.balance(&bob, "uatom"), 300);
        // Transfers do not change supply.
        assert_eq!(bank.total_supply("uatom"), 1_000);

        bank.burn_coins(&bob, &Coin::new("uatom", 100)).unwrap();
        assert_eq!(bank.balance(&bob, "uatom"), 200);
        assert_eq!(bank.total_supply("uatom"), 900);
    }

    #[test]
    fn overdraft_is_rejected_with_details() {
        let mut bank = BankModule::new();
        let err = bank
            .transfer(&"alice".into(), &"bob".into(), &Coin::new("uatom", 10))
            .unwrap_err();
        assert!(matches!(
            err,
            BankError::InsufficientFunds {
                held: 0,
                required: 10,
                ..
            }
        ));
        assert!(err.to_string().contains("insufficient funds"));
        assert!(bank
            .burn_coins(&"alice".into(), &Coin::new("uatom", 1))
            .is_err());
    }

    #[test]
    fn balances_of_lists_only_positive_amounts() {
        let mut bank = BankModule::new();
        let alice: AccountId = "alice".into();
        bank.mint_coins(&alice, &Coin::new("uatom", 5));
        bank.mint_coins(&alice, &Coin::new("transfer/channel-0/stake", 7));
        bank.burn_coins(&alice, &Coin::new("uatom", 5)).unwrap();
        let coins = bank.balances_of(&alice);
        assert_eq!(coins, vec![Coin::new("transfer/channel-0/stake", 7)]);
    }

    #[test]
    fn state_hash_tracks_balances() {
        let mut bank = BankModule::new();
        let h0 = bank.state_hash();
        bank.mint_coins(&"alice".into(), &Coin::new("uatom", 1));
        let h1 = bank.state_hash();
        assert_ne!(h0, h1);
    }

    #[test]
    fn bank_keeper_trait_is_wired_to_module() {
        let mut bank = BankModule::new();
        BankKeeper::mint(&mut bank, "alice", "uatom", 50);
        BankKeeper::send(&mut bank, "alice", "bob", "uatom", 20).unwrap();
        assert!(BankKeeper::send(&mut bank, "alice", "bob", "uatom", 500).is_err());
        BankKeeper::burn(&mut bank, "bob", "uatom", 20).unwrap();
        assert_eq!(bank.balance(&"alice".into(), "uatom"), 30);
        assert_eq!(bank.balance(&"bob".into(), "uatom"), 0);
    }
}
