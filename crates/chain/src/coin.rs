//! Coins: denominated token amounts.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An amount of a single denomination.
///
/// # Example
///
/// ```rust
/// use xcc_chain::coin::Coin;
///
/// let c = Coin::new("uatom", 1_000);
/// assert_eq!(c.to_string(), "1000uatom");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coin {
    /// The denomination, e.g. `uatom` or an IBC voucher denom.
    pub denom: String,
    /// The amount.
    pub amount: u128,
}

impl Coin {
    /// Creates a coin.
    pub fn new(denom: impl Into<String>, amount: u128) -> Self {
        Coin {
            denom: denom.into(),
            amount,
        }
    }
}

impl fmt::Display for Coin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.amount, self.denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_amount_then_denom() {
        assert_eq!(Coin::new("stake", 42).to_string(), "42stake");
    }

    #[test]
    fn equality_covers_both_fields() {
        assert_eq!(Coin::new("uatom", 1), Coin::new("uatom", 1));
        assert_ne!(Coin::new("uatom", 1), Coin::new("uatom", 2));
        assert_ne!(Coin::new("uatom", 1), Coin::new("stake", 1));
    }
}
