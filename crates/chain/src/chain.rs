//! A complete simulated chain: a Tendermint node running the Gaia-like
//! application, with convenience accessors used by the RPC layer, the relayer
//! and the benchmarking framework.

use std::cell::RefCell;
use std::rc::Rc;

use crate::app::GaiaApp;
use crate::genesis::GenesisConfig;
use crate::tx::Tx;
use xcc_sim::SimTime;
use xcc_tendermint::block::RawTx;
use xcc_tendermint::hash::Hash;
use xcc_tendermint::mempool::MempoolConfig;
use xcc_tendermint::node::{BlockOutcome, CommittedBlock, Node, SubmitError, TxStatus};
use xcc_tendermint::params::{ConsensusParams, ConsensusTimingModel};
use xcc_tendermint::validator::ValidatorSet;
use xcc_tendermint::vote::Commit;

/// A chain shared between the experiment driver, its RPC server and the
/// workload generator. The whole simulation is single-threaded, so interior
/// mutability via `RefCell` is sufficient.
pub type SharedChain = Rc<RefCell<Chain>>;

/// A simulated Cosmos Gaia chain.
///
/// # Example
///
/// ```rust
/// use xcc_chain::chain::Chain;
/// use xcc_chain::genesis::GenesisConfig;
/// use xcc_sim::SimTime;
///
/// let genesis = GenesisConfig::new("chain-a").with_funded_accounts("user", 2, 1_000_000);
/// let mut chain = Chain::new(genesis);
/// let outcome = chain.produce_block(SimTime::from_secs(5));
/// assert_eq!(outcome.height, 1);
/// ```
#[derive(Debug)]
pub struct Chain {
    node: Node<GaiaApp>,
}

impl Chain {
    /// Creates a chain with default consensus parameters and timing.
    pub fn new(genesis: GenesisConfig) -> Self {
        Self::with_params(
            genesis,
            ConsensusParams::default(),
            ConsensusTimingModel::default(),
            MempoolConfig::default(),
        )
    }

    /// Creates a chain with explicit consensus parameters, timing model and
    /// mempool limits.
    pub fn with_params(
        genesis: GenesisConfig,
        params: ConsensusParams,
        timing: ConsensusTimingModel,
        mempool: MempoolConfig,
    ) -> Self {
        let validators = ValidatorSet::with_equal_power(genesis.validator_count, 10);
        let app = GaiaApp::from_genesis(&genesis);
        Chain {
            node: Node::new(
                genesis.chain_id.clone(),
                validators,
                params,
                timing,
                mempool,
                app,
            ),
        }
    }

    /// Wraps the chain for shared single-threaded access.
    pub fn into_shared(self) -> SharedChain {
        Rc::new(RefCell::new(self))
    }

    /// The chain identifier.
    pub fn id(&self) -> &str {
        self.node.chain_id()
    }

    /// Current committed height.
    pub fn height(&self) -> u64 {
        self.node.height()
    }

    /// Read access to the application state.
    pub fn app(&self) -> &GaiaApp {
        self.node.app()
    }

    /// Mutable access to the application state (used by the setup phase for
    /// IBC handshakes and by tests).
    pub fn app_mut(&mut self) -> &mut GaiaApp {
        self.node.app_mut()
    }

    /// The validator set.
    pub fn validators(&self) -> &ValidatorSet {
        self.node.validators()
    }

    /// The consensus parameters.
    pub fn params(&self) -> &ConsensusParams {
        self.node.params()
    }

    /// The consensus timing model.
    pub fn timing(&self) -> &ConsensusTimingModel {
        self.node.timing()
    }

    /// Number of transactions waiting in the mempool.
    pub fn mempool_size(&self) -> usize {
        self.node.mempool_size()
    }

    /// Number of mempool transactions signed by `sender` (the account address
    /// as a string): the unconfirmed part of that account's sequence window,
    /// used by the RPC layer's `account_sequence_unconfirmed` query.
    pub fn mempool_pending_from(&self, sender: &str) -> usize {
        self.node.mempool_pending_from(sender)
    }

    /// When the latest block was committed.
    pub fn last_block_time(&self) -> SimTime {
        self.node.last_block_time()
    }

    /// Submits an encoded transaction to the mempool.
    ///
    /// # Errors
    ///
    /// Fails when `CheckTx` rejects the transaction or the mempool is full.
    pub fn submit_raw_tx(&mut self, raw: RawTx, now: SimTime) -> Result<Hash, SubmitError> {
        self.node.submit_tx(raw, now)
    }

    /// Encodes and submits a transaction.
    ///
    /// # Errors
    ///
    /// Fails when `CheckTx` rejects the transaction or the mempool is full.
    pub fn submit_tx(&mut self, tx: &Tx, now: SimTime) -> Result<Hash, SubmitError> {
        self.submit_raw_tx(tx.encode(), now)
    }

    /// Produces and commits the next block, reaping the mempool at
    /// `propose_time`.
    pub fn produce_block(&mut self, propose_time: SimTime) -> BlockOutcome {
        self.node.produce_block(propose_time)
    }

    /// The committed block at `height` (1-based).
    pub fn block_at(&self, height: u64) -> Option<&CommittedBlock> {
        self.node.block_at(height)
    }

    /// The most recently committed block.
    pub fn latest_block(&self) -> Option<&CommittedBlock> {
        self.node.latest_block()
    }

    /// The commit certifying the block at `height`.
    pub fn commit_for(&self, height: u64) -> Option<&Commit> {
        self.node.commit_for(height)
    }

    /// Looks up a committed transaction by hash.
    pub fn find_tx(
        &self,
        hash: &Hash,
    ) -> Option<(u64, usize, &xcc_tendermint::abci::DeliverTxResult)> {
        self.node.find_tx(hash)
    }

    /// Whether a transaction is committed, pending or unknown.
    pub fn tx_status(&self, hash: &Hash) -> TxStatus {
        self.node.tx_status(hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::AccountId;
    use crate::coin::Coin;
    use crate::msg::Msg;

    fn funded_chain() -> Chain {
        Chain::new(
            GenesisConfig::new("chain-a")
                .with_account("relayer", 10_000_000)
                .with_funded_accounts("user", 5, 10_000_000),
        )
    }

    fn send_tx(from: &str, seq: u64) -> Tx {
        Tx::new(
            from.into(),
            seq,
            vec![Msg::BankSend {
                from: from.into(),
                to: "relayer".into(),
                amount: Coin::new("uatom", 10),
            }],
            "uatom",
        )
    }

    #[test]
    fn blocks_include_submitted_txs_and_update_state() {
        let mut chain = funded_chain();
        let hash = chain
            .submit_tx(&send_tx("user-0", 0), SimTime::ZERO)
            .unwrap();
        assert_eq!(chain.tx_status(&hash), TxStatus::Pending);
        assert_eq!(chain.mempool_size(), 1);

        let outcome = chain.produce_block(SimTime::from_secs(5));
        assert_eq!(outcome.tx_count, 1);
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.tx_status(&hash), TxStatus::Committed);
        let (_, _, result) = chain.find_tx(&hash).unwrap();
        assert!(result.is_ok());
        assert_eq!(chain.app().account_sequence(&AccountId::new("user-0")), 1);
    }

    #[test]
    fn one_tx_per_account_per_block_when_client_reuses_committed_sequence() {
        let mut chain = funded_chain();
        // A client that always signs with the committed sequence (like the
        // paper's CLI users) can only get one transaction per block in.
        chain
            .submit_tx(&send_tx("user-0", 0), SimTime::ZERO)
            .unwrap();
        let err = chain
            .submit_tx(&send_tx("user-0", 0), SimTime::ZERO)
            .unwrap_err();
        assert!(err.to_string().contains("account sequence mismatch"));
        chain.produce_block(SimTime::from_secs(5));
        // After the block commits, the next committed sequence works.
        chain
            .submit_tx(&send_tx("user-0", 1), SimTime::from_secs(5))
            .unwrap();
    }

    #[test]
    fn multiple_accounts_can_fill_one_block() {
        let mut chain = funded_chain();
        for i in 0..5 {
            chain
                .submit_tx(&send_tx(&format!("user-{i}"), 0), SimTime::ZERO)
                .unwrap();
        }
        let outcome = chain.produce_block(SimTime::from_secs(5));
        assert_eq!(outcome.tx_count, 5);
    }

    #[test]
    fn shared_chain_allows_interior_mutation() {
        let shared = funded_chain().into_shared();
        shared.borrow_mut().produce_block(SimTime::from_secs(5));
        assert_eq!(shared.borrow().height(), 1);
        assert_eq!(shared.borrow().id(), "chain-a");
    }

    #[test]
    fn accessors_expose_consensus_configuration() {
        let chain = funded_chain();
        assert_eq!(chain.validators().len(), 5);
        assert_eq!(
            chain.params().min_block_interval,
            xcc_sim::SimDuration::from_secs(5)
        );
        assert!(chain.timing().consensus_latency(5).as_millis() < 100);
        assert!(chain.latest_block().is_none());
        assert!(chain.commit_for(0).is_none());
    }
}
