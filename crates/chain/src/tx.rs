//! Transactions: a signed batch of messages.

use std::cell::OnceCell;

use serde::{Deserialize, Serialize, Value};

use crate::account::{sign, AccountId};
use crate::coin::Coin;
use crate::gas;
use crate::msg::Msg;
use xcc_sim::prof;
use xcc_tendermint::block::RawTx;
use xcc_tendermint::hash::{hash_fields, sha256, Hash};

/// A transaction: one signer, a sequence number, a fee, and a batch of
/// messages.
///
/// The paper's workloads batch exactly 100 `MsgTransfer` messages per
/// transaction, the maximum Hermes allows, to work around the
/// one-transaction-per-account-per-block limitation (§III-D).
///
/// # Encode/hash caching
///
/// The wire encoding (and the hash derived from it) is computed once per
/// transaction instance and memoized: the broadcast path used to re-encode
/// the same transaction up to four times (hashing for telemetry, hashing for
/// submission tracking, encoding for the RPC call). The cache is
/// deliberately conservative around the all-`pub` fields: cloning a `Tx`
/// drops the cache, so the `clone → tamper → re-verify` pattern used in
/// tests can never observe a stale encoding. Mutating a `Tx` *after* calling
/// [`Tx::encode`]/[`Tx::hash`] on that same instance is the one pattern the
/// cache does not support; no simulator code does this (transactions are
/// built, signed and then treated as immutable).
#[derive(Debug)]
pub struct Tx {
    /// The messages to execute, in order.
    pub msgs: Vec<Msg>,
    /// The fee-paying signer.
    pub signer: AccountId,
    /// The signer's account sequence this transaction consumes.
    pub sequence: u64,
    /// Gas limit requested.
    pub gas_limit: u64,
    /// Fee offered.
    pub fee: Coin,
    /// Free-form memo.
    pub memo: String,
    /// Simulated signature over the transaction body.
    pub signature: Hash,
    /// Memoized `(encoding, hash)`, excluded from comparison, cloning and
    /// the wire format.
    // xcc-lint: allow(serde-field-coverage, reason = "in-memory memo of the wire encoding; must never itself appear in the wire encoding")
    encoded: OnceCell<(RawTx, Hash)>,
}

impl Clone for Tx {
    /// Clones the transaction *without* its encode cache: the clone may be
    /// tampered with (tests forge signers this way), so it must re-encode
    /// lazily from its own contents.
    fn clone(&self) -> Self {
        Tx {
            msgs: self.msgs.clone(),
            signer: self.signer.clone(),
            sequence: self.sequence,
            gas_limit: self.gas_limit,
            fee: self.fee.clone(),
            memo: self.memo.clone(),
            signature: self.signature,
            encoded: OnceCell::new(),
        }
    }
}

impl PartialEq for Tx {
    fn eq(&self, other: &Self) -> bool {
        self.msgs == other.msgs
            && self.signer == other.signer
            && self.sequence == other.sequence
            && self.gas_limit == other.gas_limit
            && self.fee == other.fee
            && self.memo == other.memo
            && self.signature == other.signature
    }
}

impl Serialize for Tx {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("msgs".to_string(), self.msgs.to_value()),
            ("signer".to_string(), self.signer.to_value()),
            ("sequence".to_string(), self.sequence.to_value()),
            ("gas_limit".to_string(), self.gas_limit.to_value()),
            ("fee".to_string(), self.fee.to_value()),
            ("memo".to_string(), self.memo.to_value()),
            ("signature".to_string(), self.signature.to_value()),
        ])
    }
}

impl Deserialize for Tx {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct Tx"))?;
        Ok(Tx {
            msgs: serde::de_field(m, "msgs")?,
            signer: serde::de_field(m, "signer")?,
            sequence: serde::de_field(m, "sequence")?,
            gas_limit: serde::de_field(m, "gas_limit")?,
            fee: serde::de_field(m, "fee")?,
            memo: serde::de_field(m, "memo")?,
            signature: serde::de_field(m, "signature")?,
            encoded: OnceCell::new(),
        })
    }
}

/// Errors produced when decoding a transaction from raw bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxDecodeError {
    /// Description of the malformation.
    pub reason: String,
}

impl std::fmt::Display for TxDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to decode tx: {}", self.reason)
    }
}

impl std::error::Error for TxDecodeError {}

impl Tx {
    /// Builds and signs a transaction.
    ///
    /// The gas limit and fee are derived from the message batch using the
    /// calibrated per-message costs and the configured gas price.
    pub fn new(signer: AccountId, sequence: u64, msgs: Vec<Msg>, fee_denom: &str) -> Self {
        let gas_limit = gas::TX_BASE_GAS + msgs.iter().map(Msg::gas_cost).sum::<u64>();
        let fee = Coin::new(fee_denom, gas::fee_for_gas(gas_limit));
        let body_digest = Self::body_digest(&signer, sequence, &msgs, &fee);
        let signature = sign(&signer, sequence, &body_digest);
        Tx {
            msgs,
            signer,
            sequence,
            gas_limit,
            fee,
            memo: String::new(),
            signature,
            encoded: OnceCell::new(),
        }
    }

    fn body_digest(signer: &AccountId, sequence: u64, msgs: &[Msg], fee: &Coin) -> Hash {
        let mut fields: Vec<Vec<u8>> = Vec::with_capacity(msgs.len() + 3);
        fields.push(signer.as_str().as_bytes().to_vec());
        fields.push(sequence.to_be_bytes().to_vec());
        fields.push(fee.to_string().into_bytes());
        for msg in msgs {
            let mut bytes = msg.type_url().as_bytes().to_vec();
            bytes.extend_from_slice(&(msg.encoded_size() as u64).to_be_bytes());
            fields.push(bytes);
        }
        let refs: Vec<&[u8]> = fields.iter().map(|f| f.as_slice()).collect();
        hash_fields(&refs)
    }

    /// Whether the transaction's signature matches its contents and claimed
    /// signer.
    pub fn verify_signature(&self) -> bool {
        let digest = Self::body_digest(&self.signer, self.sequence, &self.msgs, &self.fee);
        self.signature == sign(&self.signer, self.sequence, &digest)
    }

    /// Serialises the transaction into opaque bytes for inclusion in a block.
    ///
    /// The payload is the vendored serde shim's compact binary rendering —
    /// transactions are encoded and decoded millions of times per experiment,
    /// and JSON text on this path used to dominate experiment runtime. The
    /// returned [`RawTx`] still *declares* the exact byte length of the
    /// compact JSON rendering as its wire size, so every simulated quantity
    /// derived from transaction size (mempool and block byte limits, block
    /// processing time, WebSocket frame payloads) is unchanged: JSON remains
    /// the modelled wire format and survives at the reporting boundary only.
    pub fn encode(&self) -> RawTx {
        self.cached().0.clone()
    }

    /// The wire byte length of [`Tx::encode`]'s result, from the cache.
    pub fn encoded_len(&self) -> usize {
        self.cached().0.len()
    }

    /// The memoized `(encoding, hash)` pair, computed on first use. Only
    /// this cache-miss path counts as encoding work in the xcc-prof
    /// counters: a cache hit performs none.
    fn cached(&self) -> &(RawTx, Hash) {
        self.encoded.get_or_init(|| {
            let value = self.to_value();
            let wire_len = serde::json::encoded_len(&value);
            let raw = RawTx::with_wire_len(serde::binary::to_bytes(&value), wire_len);
            prof::bump_tx_encoded(raw.len() as u64);
            let hash = sha256(raw.as_bytes());
            (raw, hash)
        })
    }

    /// Decodes a transaction previously produced by [`Tx::encode`].
    ///
    /// # Errors
    ///
    /// Fails when the bytes are not a valid encoded transaction.
    pub fn decode(raw: &RawTx) -> Result<Self, TxDecodeError> {
        prof::bump_tx_decoded();
        let value = serde::binary::from_bytes(raw.as_bytes()).map_err(|e| TxDecodeError {
            reason: e.to_string(),
        })?;
        Tx::from_value(&value).map_err(|e| TxDecodeError {
            reason: e.to_string(),
        })
    }

    /// The transaction hash (identical to the hash of its encoding).
    ///
    /// Served from the encode cache: the first of `hash`/`encode` on an
    /// instance pays for the encoding, every later call is free. Pinned by
    /// `hash_is_stable_and_needs_one_encoding`.
    pub fn hash(&self) -> Hash {
        self.cached().1
    }

    /// Number of messages in the transaction.
    pub fn msg_count(&self) -> usize {
        self.msgs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcc_ibc::height::Height;
    use xcc_ibc::ids::{ChannelId, PortId};
    use xcc_ibc::module::TransferParams;
    use xcc_sim::SimTime;

    fn transfer(amount: u128) -> Msg {
        Msg::IbcTransfer(TransferParams {
            source_port: PortId::transfer(),
            source_channel: ChannelId::with_index(0),
            denom: "uatom".into(),
            amount,
            sender: "alice".into(),
            receiver: "bob".into(),
            timeout_height: Height::at(500),
            timeout_timestamp: SimTime::ZERO,
        })
    }

    #[test]
    fn encode_decode_roundtrip() {
        let tx = Tx::new("alice".into(), 3, vec![transfer(10), transfer(20)], "uatom");
        let raw = tx.encode();
        let decoded = Tx::decode(&raw).unwrap();
        assert_eq!(decoded, tx);
        assert_eq!(decoded.msg_count(), 2);
        assert_eq!(tx.hash(), sha256(raw.as_bytes()));
    }

    #[test]
    fn wire_length_models_the_json_rendering_exactly() {
        let msgs: Vec<Msg> = (0..100).map(|i| transfer(i as u128 + 1)).collect();
        let tx = Tx::new("alice".into(), 7, msgs, "uatom");
        let raw = tx.encode();
        let json = serde_json::to_vec(&tx).expect("tx serializes");
        // The declared wire size is the JSON rendering the real RPC would
        // carry, while the host payload is the (much smaller) binary form.
        assert_eq!(raw.len(), json.len());
        assert!(
            raw.as_bytes().len() < raw.len(),
            "binary payload ({}) should undercut the JSON wire size ({})",
            raw.as_bytes().len(),
            raw.len()
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        let err = Tx::decode(&RawTx::new(b"not json".to_vec())).unwrap_err();
        assert!(err.to_string().contains("failed to decode"));
    }

    #[test]
    fn gas_limit_matches_paper_for_hundred_transfers() {
        let msgs: Vec<Msg> = (0..100).map(|i| transfer(i as u128 + 1)).collect();
        let tx = Tx::new("alice".into(), 0, msgs, "uatom");
        let diff = (tx.gas_limit as f64 - 3_669_161.0).abs() / 3_669_161.0;
        assert!(
            diff < 0.01,
            "gas limit {} deviates from the paper by {:.2}%",
            tx.gas_limit,
            diff * 100.0
        );
        assert_eq!(tx.fee.amount, gas::fee_for_gas(tx.gas_limit));
    }

    #[test]
    fn signature_verifies_and_detects_tampering() {
        let tx = Tx::new("alice".into(), 1, vec![transfer(5)], "uatom");
        assert!(tx.verify_signature());

        let mut forged = tx.clone();
        forged.signer = "mallory".into();
        assert!(!forged.verify_signature());

        let mut replayed = tx.clone();
        replayed.sequence = 2;
        assert!(!replayed.verify_signature());
    }

    /// Satellite of the xcc-prof PR: `Tx::hash` used to re-encode the whole
    /// transaction on every call. This pins (a) hash stability — the cached
    /// hash equals a from-scratch sha256 of a fresh encoding, including on
    /// clones, which drop the cache — and (b) that repeated hash/encode
    /// calls cost exactly one encoding in the work counters.
    #[test]
    fn hash_is_stable_and_needs_one_encoding() {
        let tx = Tx::new("alice".into(), 3, vec![transfer(10), transfer(20)], "uatom");

        prof::reset();
        let h1 = tx.hash();
        let h2 = tx.hash();
        let raw = tx.encode();
        assert_eq!(h1, h2);
        assert_eq!(h1, sha256(raw.as_bytes()));
        assert_eq!(tx.encoded_len(), raw.len());
        let snap = prof::snapshot();
        assert_eq!(snap.txs_encoded, 1, "hash + hash + encode = one encoding");
        assert_eq!(snap.bytes_serialized, raw.len() as u64);

        // A clone re-encodes from its own contents and lands on the same
        // bytes and hash.
        let cloned = tx.clone();
        assert_eq!(cloned.hash(), h1);
        assert_eq!(cloned.encode(), raw);
        assert_eq!(prof::snapshot().txs_encoded, 2);
    }

    #[test]
    fn different_contents_give_different_hashes() {
        let a = Tx::new("alice".into(), 0, vec![transfer(1)], "uatom");
        let b = Tx::new("alice".into(), 0, vec![transfer(2)], "uatom");
        assert_ne!(a.hash(), b.hash());
    }
}
