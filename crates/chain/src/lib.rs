//! A Cosmos-SDK-like application chain ("Gaia simulator").
//!
//! This crate provides the host blockchain the paper's experiments run on:
//! accounts with replay-protecting sequence numbers, an ante handler that
//! reproduces the "account sequence mismatch" behaviour, a bank module, gas
//! metering calibrated to the per-message costs the paper reports, a
//! transaction format with 100-message batching, and a complete ABCI
//! application embedding the IBC module from `xcc-ibc`.
//!
//! [`chain::Chain`] glues the application to a Tendermint node from
//! `xcc-tendermint`, giving the benchmarking framework a fully functional
//! chain it can drive block by block in virtual time.
//!
//! # Example
//!
//! ```rust
//! use xcc_chain::chain::Chain;
//! use xcc_chain::genesis::GenesisConfig;
//! use xcc_chain::msg::Msg;
//! use xcc_chain::coin::Coin;
//! use xcc_chain::tx::Tx;
//! use xcc_sim::SimTime;
//!
//! let mut chain = Chain::new(
//!     GenesisConfig::new("demo").with_funded_accounts("user", 1, 1_000_000),
//! );
//! let tx = Tx::new(
//!     "user-0".into(),
//!     0,
//!     vec![Msg::BankSend { from: "user-0".into(), to: "user-0".into(), amount: Coin::new("uatom", 1) }],
//!     "uatom",
//! );
//! chain.submit_tx(&tx, SimTime::ZERO).unwrap();
//! let outcome = chain.produce_block(SimTime::from_secs(5));
//! assert_eq!(outcome.tx_count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod ante;
pub mod app;
pub mod bank;
pub mod chain;
pub mod coin;
pub mod gas;
pub mod genesis;
pub mod msg;
pub mod tx;
