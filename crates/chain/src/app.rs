//! The Gaia-like ABCI application: accounts, bank, gas and the embedded IBC
//! module, wired into the Tendermint node via the [`Application`] trait.

use crate::account::{AccountId, AccountKeeper};
use crate::ante::{self, AnteError};
use crate::bank::BankModule;
use crate::gas;
use crate::genesis::GenesisConfig;
use crate::msg::Msg;
use crate::tx::Tx;
use xcc_ibc::height::Height;
use xcc_ibc::module::{HostContext, IbcModule};
use xcc_sim::SimTime;
use xcc_tendermint::abci::{Application, CheckTxResult, DeliverTxResult, Event};
use xcc_tendermint::block::{Header, RawTx};
use xcc_tendermint::hash::{hash_fields, Hash};

/// The account that collects transaction fees.
pub const FEE_COLLECTOR: &str = "fee-collector";

/// ABCI error code for a message that failed during execution.
pub const CODE_MSG_FAILED: u32 = 111;
/// ABCI error code for an undecodable transaction.
pub const CODE_DECODE_FAILED: u32 = 2;

/// The Gaia-like blockchain application.
///
/// It keeps two copies of the account state: the committed state used by
/// `DeliverTx`, and a check state used by `CheckTx` so that several
/// transactions from the same account (with consecutive sequences) can be
/// admitted to the mempool within one block, exactly as the Cosmos SDK does.
#[derive(Debug, Clone)]
pub struct GaiaApp {
    chain_id: String,
    fee_denom: String,
    accounts: AccountKeeper,
    check_accounts: AccountKeeper,
    bank: BankModule,
    ibc: IbcModule,
    height: u64,
    block_time: SimTime,
}

impl GaiaApp {
    /// Creates the application from a genesis configuration.
    pub fn from_genesis(genesis: &GenesisConfig) -> Self {
        let mut accounts = AccountKeeper::new();
        let mut bank = BankModule::new();
        accounts.get_or_create(&AccountId::new(FEE_COLLECTOR));
        for (address, coins) in &genesis.accounts {
            accounts.get_or_create(address);
            for coin in coins {
                bank.mint_coins(address, coin);
            }
        }
        GaiaApp {
            chain_id: genesis.chain_id.clone(),
            fee_denom: genesis.fee_denom.clone(),
            check_accounts: accounts.clone(),
            accounts,
            bank,
            ibc: IbcModule::new(genesis.chain_id.clone()),
            height: 0,
            block_time: SimTime::ZERO,
        }
    }

    /// The chain identifier.
    pub fn chain_id(&self) -> &str {
        &self.chain_id
    }

    /// The native fee denomination.
    pub fn fee_denom(&self) -> &str {
        &self.fee_denom
    }

    /// Current block height as seen by the application.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Current block time as seen by the application.
    pub fn block_time(&self) -> SimTime {
        self.block_time
    }

    /// The host context handed to IBC handlers.
    pub fn host_context(&self) -> HostContext {
        HostContext {
            height: Height::at(self.height),
            time: self.block_time,
        }
    }

    /// Read access to the committed account state.
    pub fn accounts(&self) -> &AccountKeeper {
        &self.accounts
    }

    /// Read access to the bank module.
    pub fn bank(&self) -> &BankModule {
        &self.bank
    }

    /// Mutable access to the bank module (genesis/test funding).
    pub fn bank_mut(&mut self) -> &mut BankModule {
        &mut self.bank
    }

    /// Read access to the IBC module.
    pub fn ibc(&self) -> &IbcModule {
        &self.ibc
    }

    /// Mutable access to the IBC module, used by the setup phase to perform
    /// the client/connection/channel handshakes directly (the paper's tool
    /// likewise automates channel setup before benchmarking).
    pub fn ibc_mut(&mut self) -> &mut IbcModule {
        &mut self.ibc
    }

    /// The committed sequence of an account, as a client querying the chain
    /// would observe it.
    pub fn account_sequence(&self, address: &AccountId) -> u64 {
        self.accounts.sequence(address)
    }

    /// The check-state sequence of an account: the sequence `CheckTx` expects
    /// on that account's next submission. It runs ahead of the committed
    /// sequence while the account's transactions sit in the mempool, and is
    /// reset to the committed sequence at every commit — which is exactly
    /// what strands a client that tracked its own continuation across a
    /// straddled commit (§V's account-sequence race).
    pub fn check_account_sequence(&self, address: &AccountId) -> u64 {
        self.check_accounts.sequence(address)
    }

    /// Executes one message against the application state.
    fn execute_msg(&mut self, msg: &Msg) -> Result<Vec<Event>, String> {
        let ctx = self.host_context();
        match msg {
            Msg::BankSend { from, to, amount } => {
                self.bank
                    .transfer(from, to, amount)
                    .map_err(|e| e.to_string())?;
                Ok(vec![Event::new("transfer")
                    .with_attr("sender", from.as_str())
                    .with_attr("recipient", to.as_str())
                    .with_attr("amount", amount.to_string())])
            }
            Msg::IbcTransfer(params) => {
                let (_packet, events) = self
                    .ibc
                    .send_transfer(&ctx, &mut self.bank, params)
                    .map_err(|e| e.to_string())?;
                Ok(events)
            }
            Msg::IbcRecvPacket {
                packet,
                proof_commitment,
                proof_height,
                ..
            } => {
                let (_ack, events) = self
                    .ibc
                    .recv_packet(
                        &ctx,
                        &mut self.bank,
                        packet,
                        proof_commitment,
                        *proof_height,
                    )
                    .map_err(|e| e.to_string())?;
                Ok(events)
            }
            Msg::IbcAcknowledgement {
                packet,
                acknowledgement,
                proof_acked,
                proof_height,
                ..
            } => self
                .ibc
                .acknowledge_packet(
                    &ctx,
                    &mut self.bank,
                    packet,
                    acknowledgement,
                    proof_acked,
                    *proof_height,
                )
                .map_err(|e| e.to_string()),
            Msg::IbcTimeout {
                packet,
                proof_unreceived,
                proof_height,
                ..
            } => self
                .ibc
                .timeout_packet(
                    &ctx,
                    &mut self.bank,
                    packet,
                    proof_unreceived,
                    *proof_height,
                )
                .map_err(|e| e.to_string()),
            Msg::IbcUpdateClient {
                client_id, update, ..
            } => self
                .ibc
                .update_client(client_id, update)
                .map_err(|e| e.to_string()),
        }
    }

    fn ante_failure(err: &AnteError, gas_wanted: u64) -> DeliverTxResult {
        DeliverTxResult {
            code: err.code(),
            log: err.to_string(),
            gas_used: gas::TX_BASE_GAS.min(gas_wanted),
            gas_wanted,
            events: vec![],
        }
    }
}

impl Application for GaiaApp {
    fn check_tx(&mut self, tx: &RawTx) -> CheckTxResult {
        let decoded = match Tx::decode(tx) {
            Ok(tx) => tx,
            Err(e) => {
                return CheckTxResult {
                    code: CODE_DECODE_FAILED,
                    log: e.to_string(),
                    gas_wanted: 0,
                    sender: String::new(),
                    sequence: 0,
                }
            }
        };
        match ante::ante_handle(&mut self.check_accounts, &decoded) {
            Ok(()) => CheckTxResult {
                code: 0,
                log: String::new(),
                gas_wanted: decoded.gas_limit,
                sender: decoded.signer.to_string(),
                sequence: decoded.sequence,
            },
            Err(err) => CheckTxResult {
                code: err.code(),
                log: err.to_string(),
                gas_wanted: decoded.gas_limit,
                sender: decoded.signer.to_string(),
                sequence: decoded.sequence,
            },
        }
    }

    fn begin_block(&mut self, header: &Header) {
        self.height = header.height;
        self.block_time = header.time;
    }

    fn deliver_tx(&mut self, tx: &RawTx) -> DeliverTxResult {
        let decoded = match Tx::decode(tx) {
            Ok(tx) => tx,
            Err(e) => {
                return DeliverTxResult {
                    code: CODE_DECODE_FAILED,
                    log: e.to_string(),
                    gas_used: 0,
                    gas_wanted: 0,
                    events: vec![],
                }
            }
        };
        let gas_wanted = decoded.gas_limit;

        // Snapshot so a failing message reverts the whole transaction, as the
        // Cosmos SDK does. Failed transactions still consume gas and block
        // space, which matters for the redundant-relay experiments.
        let snapshot = (self.accounts.clone(), self.bank.clone(), self.ibc.clone());

        if let Err(err) = ante::ante_handle(&mut self.accounts, &decoded) {
            return Self::ante_failure(&err, gas_wanted);
        }
        // Fee payment to the fee collector.
        if decoded.fee.amount > 0 {
            if let Err(e) = self.bank.transfer(
                &decoded.signer,
                &AccountId::new(FEE_COLLECTOR),
                &decoded.fee,
            ) {
                let (accounts, bank, ibc) = snapshot;
                self.accounts = accounts;
                self.bank = bank;
                self.ibc = ibc;
                return DeliverTxResult {
                    code: ante::CODE_INSUFFICIENT_FUNDS,
                    log: e.to_string(),
                    gas_used: gas::TX_BASE_GAS,
                    gas_wanted,
                    events: vec![],
                };
            }
        }

        let mut events = Vec::new();
        let mut gas_used = gas::TX_BASE_GAS;
        for msg in &decoded.msgs {
            gas_used += msg.gas_cost();
            match self.execute_msg(msg) {
                Ok(mut msg_events) => {
                    events.push(Event::new("message").with_attr("action", msg.type_url()));
                    events.append(&mut msg_events);
                }
                Err(log) => {
                    let (accounts, bank, ibc) = snapshot;
                    self.accounts = accounts;
                    self.bank = bank;
                    self.ibc = ibc;
                    // The failed transaction still occupies block space,
                    // consumes gas, keeps its fee (relayers pay for redundant
                    // deliveries, §IV-A) and uses up the account sequence so
                    // it cannot be replayed — only the message effects revert.
                    let _ = ante::ante_handle(&mut self.accounts, &decoded);
                    if decoded.fee.amount > 0 {
                        let _ = self.bank.transfer(
                            &decoded.signer,
                            &AccountId::new(FEE_COLLECTOR),
                            &decoded.fee,
                        );
                    }
                    return DeliverTxResult {
                        code: CODE_MSG_FAILED,
                        log,
                        gas_used,
                        gas_wanted,
                        events: vec![],
                    };
                }
            }
        }

        DeliverTxResult {
            code: 0,
            log: String::new(),
            gas_used,
            gas_wanted,
            events,
        }
    }

    fn end_block(&mut self, _height: u64) {}

    fn commit(&mut self) -> Hash {
        // The check state is reset to the committed state after every block,
        // like resetting the CheckTx state in the SDK.
        self.check_accounts = self.accounts.clone();
        hash_fields(&[
            b"gaia-app-hash",
            self.bank.state_hash().as_bytes(),
            self.ibc.commitment_root().as_bytes(),
            &self.height.to_be_bytes(),
        ])
    }
}

/// Convenience constructor for a funded test/benchmark application.
pub fn funded_app(chain_id: &str, users: usize, balance: u128) -> GaiaApp {
    let genesis = GenesisConfig::new(chain_id)
        .with_account("relayer", balance)
        .with_funded_accounts("user", users, balance);
    GaiaApp::from_genesis(&genesis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coin::Coin;
    use xcc_ibc::ids::{ChannelId, PortId};
    use xcc_ibc::module::TransferParams;

    fn bank_send_tx(app: &GaiaApp, from: &str, to: &str, amount: u128, seq: u64) -> RawTx {
        let _ = app;
        Tx::new(
            from.into(),
            seq,
            vec![Msg::BankSend {
                from: from.into(),
                to: to.into(),
                amount: Coin::new("uatom", amount),
            }],
            "uatom",
        )
        .encode()
    }

    fn header_at(app: &GaiaApp, height: u64, secs: u64) -> Header {
        use xcc_tendermint::block::{BlockId, Data, Version};
        use xcc_tendermint::validator::{ValidatorAddress, ValidatorSet};
        let vals = ValidatorSet::with_equal_power(5, 10);
        Header {
            version: Version::default(),
            chain_id: app.chain_id().to_string(),
            height,
            time: SimTime::from_secs(secs),
            last_block_id: BlockId { hash: Hash::ZERO },
            last_commit_hash: Hash::ZERO,
            data_hash: Data::default().hash(),
            validators_hash: vals.hash(),
            next_validators_hash: vals.hash(),
            consensus_hash: Hash::ZERO,
            app_hash: Hash::ZERO,
            last_results_hash: Hash::ZERO,
            evidence_hash: xcc_tendermint::block::evidence_hash(&[]),
            proposer_address: ValidatorAddress::from_name("val-0"),
        }
    }

    #[test]
    fn genesis_funds_accounts_and_creates_fee_collector() {
        let app = funded_app("chain-a", 3, 1_000);
        assert_eq!(app.bank().balance(&"user-0".into(), "uatom"), 1_000);
        assert_eq!(app.bank().balance(&"relayer".into(), "uatom"), 1_000);
        assert!(app.accounts().get(&AccountId::new(FEE_COLLECTOR)).is_some());
        assert_eq!(app.account_sequence(&"user-0".into()), 0);
    }

    #[test]
    fn check_tx_accepts_consecutive_sequences_within_a_block() {
        let mut app = funded_app("chain-a", 1, 1_000_000);
        let tx0 = bank_send_tx(&app, "user-0", "relayer", 1, 0);
        let tx1 = bank_send_tx(&app, "user-0", "relayer", 1, 1);
        assert!(app.check_tx(&tx0).is_ok());
        // The check state advanced, so sequence 1 is now admissible even
        // though nothing has been committed yet.
        assert!(app.check_tx(&tx1).is_ok());
        // But replaying sequence 0 is the "account sequence mismatch" error.
        let res = app.check_tx(&tx0);
        assert_eq!(res.code, ante::CODE_SEQUENCE_MISMATCH);
        assert!(res.log.contains("account sequence mismatch"));
    }

    #[test]
    fn deliver_tx_moves_funds_charges_fees_and_bumps_sequence() {
        let mut app = funded_app("chain-a", 1, 1_000_000);
        app.begin_block(&header_at(&app, 1, 5));
        let res = app.deliver_tx(&bank_send_tx(&app, "user-0", "relayer", 500, 0));
        assert!(res.is_ok(), "log: {}", res.log);
        assert!(res.gas_used > 0 && res.gas_used <= res.gas_wanted);
        assert!(!res.events.is_empty());
        app.end_block(1);
        app.commit();

        let fee = gas::fee_for_gas(gas::TX_BASE_GAS + gas::MSG_BANK_SEND_GAS);
        assert_eq!(app.bank().balance(&"relayer".into(), "uatom"), 1_000_500);
        assert_eq!(
            app.bank().balance(&"user-0".into(), "uatom"),
            1_000_000 - 500 - fee
        );
        assert_eq!(
            app.bank().balance(&AccountId::new(FEE_COLLECTOR), "uatom"),
            fee
        );
        assert_eq!(app.account_sequence(&"user-0".into()), 1);
    }

    #[test]
    fn deliver_tx_with_stale_sequence_fails_with_code_32() {
        let mut app = funded_app("chain-a", 1, 1_000_000);
        app.begin_block(&header_at(&app, 1, 5));
        assert!(app
            .deliver_tx(&bank_send_tx(&app, "user-0", "relayer", 1, 0))
            .is_ok());
        let res = app.deliver_tx(&bank_send_tx(&app, "user-0", "relayer", 1, 0));
        assert_eq!(res.code, ante::CODE_SEQUENCE_MISMATCH);
    }

    #[test]
    fn failing_message_reverts_state_but_consumes_sequence_and_gas() {
        let mut app = funded_app("chain-a", 1, 1_000_000);
        app.begin_block(&header_at(&app, 1, 5));
        // Transfer over a non-existent channel fails at the IBC layer.
        let bad = Tx::new(
            "user-0".into(),
            0,
            vec![Msg::IbcTransfer(TransferParams {
                source_port: PortId::transfer(),
                source_channel: ChannelId::with_index(0),
                denom: "uatom".into(),
                amount: 10,
                sender: "user-0".into(),
                receiver: "bob".into(),
                timeout_height: Height::at(100),
                timeout_timestamp: SimTime::ZERO,
            })],
            "uatom",
        )
        .encode();
        let res = app.deliver_tx(&bad);
        assert_eq!(res.code, CODE_MSG_FAILED);
        assert!(res.gas_used > 0);
        // Transfer effects reverted, but the fee is kept and the sequence is
        // consumed.
        let fee = gas::fee_for_gas(gas::TX_BASE_GAS + gas::MSG_TRANSFER_GAS);
        assert_eq!(
            app.bank().balance(&"user-0".into(), "uatom"),
            1_000_000 - fee
        );
        assert_eq!(app.account_sequence(&"user-0".into()), 1);
    }

    #[test]
    fn undecodable_txs_are_rejected_in_check_and_deliver() {
        let mut app = funded_app("chain-a", 1, 1_000);
        let garbage = RawTx::new(b"junk".to_vec());
        assert_eq!(app.check_tx(&garbage).code, CODE_DECODE_FAILED);
        assert_eq!(app.deliver_tx(&garbage).code, CODE_DECODE_FAILED);
    }

    #[test]
    fn commit_resets_check_state_and_changes_app_hash() {
        let mut app = funded_app("chain-a", 1, 1_000_000);
        let tx0 = bank_send_tx(&app, "user-0", "relayer", 1, 0);
        assert!(app.check_tx(&tx0).is_ok());
        // Check state is ahead of committed state now; commit resets it.
        app.begin_block(&header_at(&app, 1, 5));
        let h1 = app.commit();
        assert!(
            app.check_tx(&tx0).is_ok(),
            "after reset, sequence 0 is valid again in check state"
        );

        app.begin_block(&header_at(&app, 2, 10));
        app.deliver_tx(&tx0);
        let h2 = app.commit();
        assert_ne!(h1, h2);
    }

    #[test]
    fn begin_block_updates_host_context() {
        let mut app = funded_app("chain-a", 1, 1_000);
        app.begin_block(&header_at(&app, 7, 35));
        assert_eq!(app.height(), 7);
        assert_eq!(app.block_time(), SimTime::from_secs(35));
        assert_eq!(app.host_context().height, Height::at(7));
    }
}
