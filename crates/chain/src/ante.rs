//! The ante handler: admission checks run before message execution.
//!
//! The sequence check here is the mechanism behind the paper's
//! "account sequence mismatch" deployment challenge (§V): an account's next
//! transaction must carry exactly the committed sequence number, which forces
//! clients that cannot observe their own in-flight transactions to wait one
//! block between submissions.

use crate::account::{AccountId, AccountKeeper};
use crate::tx::Tx;

/// Cosmos SDK error code for an incorrect account sequence.
pub const CODE_SEQUENCE_MISMATCH: u32 = 32;
/// Cosmos SDK error code for an unknown account.
pub const CODE_UNKNOWN_ACCOUNT: u32 = 9;
/// Cosmos SDK error code for an invalid signature.
pub const CODE_UNAUTHORIZED: u32 = 4;
/// Cosmos SDK error code for insufficient fee funds.
pub const CODE_INSUFFICIENT_FUNDS: u32 = 5;
/// Error code for an empty transaction.
pub const CODE_EMPTY_TX: u32 = 2;

/// Failures detected by the ante handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnteError {
    /// The transaction carries no messages.
    EmptyTx,
    /// The signer account does not exist on this chain.
    UnknownAccount {
        /// The unknown signer.
        signer: AccountId,
    },
    /// The transaction's sequence does not match the account's expected
    /// sequence.
    SequenceMismatch {
        /// Sequence the account expects next.
        expected: u64,
        /// Sequence the transaction carried.
        got: u64,
    },
    /// The signature does not verify against the transaction contents.
    InvalidSignature,
}

impl AnteError {
    /// The ABCI error code corresponding to this failure.
    pub fn code(&self) -> u32 {
        match self {
            AnteError::EmptyTx => CODE_EMPTY_TX,
            AnteError::UnknownAccount { .. } => CODE_UNKNOWN_ACCOUNT,
            AnteError::SequenceMismatch { .. } => CODE_SEQUENCE_MISMATCH,
            AnteError::InvalidSignature => CODE_UNAUTHORIZED,
        }
    }
}

impl std::fmt::Display for AnteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnteError::EmptyTx => write!(f, "transaction contains no messages"),
            AnteError::UnknownAccount { signer } => write!(f, "unknown account {signer}"),
            AnteError::SequenceMismatch { expected, got } => write!(
                f,
                "account sequence mismatch, expected {expected}, got {got}: incorrect account sequence"
            ),
            AnteError::InvalidSignature => write!(f, "signature verification failed: unauthorized"),
        }
    }
}

impl std::error::Error for AnteError {}

/// Runs the ante checks against the given account state and, on success,
/// increments the signer's sequence in that state.
///
/// The same routine is used for `CheckTx` (against the mempool's check state)
/// and `DeliverTx` (against the committed state), mirroring the Cosmos SDK.
///
/// # Errors
///
/// Returns the first failed check; the account state is left untouched on
/// failure.
pub fn ante_handle(accounts: &mut AccountKeeper, tx: &Tx) -> Result<(), AnteError> {
    if tx.msgs.is_empty() {
        return Err(AnteError::EmptyTx);
    }
    let Some(account) = accounts.get(&tx.signer) else {
        return Err(AnteError::UnknownAccount {
            signer: tx.signer.clone(),
        });
    };
    if account.sequence != tx.sequence {
        return Err(AnteError::SequenceMismatch {
            expected: account.sequence,
            got: tx.sequence,
        });
    }
    if !tx.verify_signature() {
        return Err(AnteError::InvalidSignature);
    }
    accounts.increment_sequence(&tx.signer);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coin::Coin;
    use crate::msg::Msg;

    fn keeper_with(addr: &str) -> AccountKeeper {
        let mut keeper = AccountKeeper::new();
        keeper.get_or_create(&addr.into());
        keeper
    }

    fn send_tx(signer: &str, sequence: u64) -> Tx {
        Tx::new(
            signer.into(),
            sequence,
            vec![Msg::BankSend {
                from: signer.into(),
                to: "bob".into(),
                amount: Coin::new("uatom", 1),
            }],
            "uatom",
        )
    }

    #[test]
    fn valid_tx_passes_and_bumps_sequence() {
        let mut keeper = keeper_with("alice");
        ante_handle(&mut keeper, &send_tx("alice", 0)).unwrap();
        assert_eq!(keeper.sequence(&"alice".into()), 1);
        ante_handle(&mut keeper, &send_tx("alice", 1)).unwrap();
        assert_eq!(keeper.sequence(&"alice".into()), 2);
    }

    #[test]
    fn replaying_the_same_sequence_is_the_paper_error() {
        let mut keeper = keeper_with("alice");
        ante_handle(&mut keeper, &send_tx("alice", 0)).unwrap();
        let err = ante_handle(&mut keeper, &send_tx("alice", 0)).unwrap_err();
        assert_eq!(
            err,
            AnteError::SequenceMismatch {
                expected: 1,
                got: 0
            }
        );
        assert_eq!(err.code(), CODE_SEQUENCE_MISMATCH);
        assert!(err.to_string().contains("account sequence mismatch"));
        // Failure does not consume the sequence.
        assert_eq!(keeper.sequence(&"alice".into()), 1);
    }

    #[test]
    fn future_sequences_are_also_rejected() {
        let mut keeper = keeper_with("alice");
        let err = ante_handle(&mut keeper, &send_tx("alice", 5)).unwrap_err();
        assert_eq!(
            err,
            AnteError::SequenceMismatch {
                expected: 0,
                got: 5
            }
        );
    }

    #[test]
    fn unknown_account_and_empty_tx_are_rejected() {
        let mut keeper = AccountKeeper::new();
        let err = ante_handle(&mut keeper, &send_tx("ghost", 0)).unwrap_err();
        assert_eq!(err.code(), CODE_UNKNOWN_ACCOUNT);

        let mut keeper = keeper_with("alice");
        let empty = Tx::new("alice".into(), 0, vec![], "uatom");
        assert_eq!(
            ante_handle(&mut keeper, &empty).unwrap_err(),
            AnteError::EmptyTx
        );
    }

    #[test]
    fn tampered_signature_is_rejected() {
        let mut keeper = keeper_with("alice");
        let mut tx = send_tx("alice", 0);
        tx.sequence = 0;
        tx.signature = xcc_tendermint::hash::sha256(b"forged");
        let err = ante_handle(&mut keeper, &tx).unwrap_err();
        assert_eq!(err, AnteError::InvalidSignature);
        assert_eq!(err.code(), CODE_UNAUTHORIZED);
    }
}
