//! Gas metering and the per-message gas costs observed in the paper.
//!
//! The paper reports that a 100-message transaction consumes on average
//! 3,669,161 gas for transfers, 7,238,699 gas for receives and 3,107,462 gas
//! for acknowledgements (§IV-A). The constants here decompose those totals
//! into a fixed per-transaction overhead plus a per-message cost so that
//! differently sized batches are charged consistently.

use serde::{Deserialize, Serialize};

/// Fixed gas overhead per transaction (signature verification, ante handler).
pub const TX_BASE_GAS: u64 = 80_000;

/// Gas consumed by one `MsgTransfer`.
pub const MSG_TRANSFER_GAS: u64 = 35_892;

/// Gas consumed by one `MsgRecvPacket` (includes proof verification and
/// voucher minting, hence roughly double a transfer).
pub const MSG_RECV_PACKET_GAS: u64 = 71_587;

/// Gas consumed by one `MsgAcknowledgement`.
pub const MSG_ACK_GAS: u64 = 30_275;

/// Gas consumed by one `MsgTimeout`.
pub const MSG_TIMEOUT_GAS: u64 = 32_000;

/// Gas consumed by one `MsgUpdateClient` (header verification).
pub const MSG_UPDATE_CLIENT_GAS: u64 = 110_000;

/// Gas consumed by one bank send message.
pub const MSG_BANK_SEND_GAS: u64 = 25_000;

/// The gas price the paper configures in Hermes: 0.01 tokens per unit of gas.
// xcc-lint: allow(float-determinism, reason = "paper-fixed constant; every fee passes through fee_for_gas, which ceils to an integer")
pub const GAS_PRICE: f64 = 0.01;

/// Errors produced by the gas meter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfGas {
    /// The configured limit.
    pub limit: u64,
    /// The amount that was attempted.
    pub attempted: u64,
}

impl std::fmt::Display for OutOfGas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of gas: limit {}, attempted {}",
            self.limit, self.attempted
        )
    }
}

impl std::error::Error for OutOfGas {}

/// A per-transaction gas meter.
///
/// # Example
///
/// ```rust
/// use xcc_chain::gas::GasMeter;
///
/// let mut meter = GasMeter::new(100_000);
/// meter.consume(80_000).unwrap();
/// assert_eq!(meter.remaining(), 20_000);
/// assert!(meter.consume(50_000).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GasMeter {
    limit: u64,
    consumed: u64,
}

impl GasMeter {
    /// Creates a meter with the given limit.
    pub fn new(limit: u64) -> Self {
        GasMeter { limit, consumed: 0 }
    }

    /// Consumes `amount` gas.
    ///
    /// # Errors
    ///
    /// Fails without consuming anything when the limit would be exceeded.
    pub fn consume(&mut self, amount: u64) -> Result<(), OutOfGas> {
        let attempted = self.consumed.saturating_add(amount);
        if attempted > self.limit {
            return Err(OutOfGas {
                limit: self.limit,
                attempted,
            });
        }
        self.consumed = attempted;
        Ok(())
    }

    /// Gas consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Gas still available.
    pub fn remaining(&self) -> u64 {
        self.limit - self.consumed
    }

    /// The configured limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

/// The fee (in the fee denomination) for a transaction consuming `gas` units
/// at the paper's configured gas price.
pub fn fee_for_gas(gas: u64) -> u128 {
    // xcc-lint: allow(float-determinism, reason = "gas fits in 53 bits and 0.01 * gas ceiled to an integer is exact on any IEEE-754 double")
    (gas as f64 * GAS_PRICE).ceil() as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_message_batches_match_paper_gas_within_one_percent() {
        let transfer_tx = TX_BASE_GAS + 100 * MSG_TRANSFER_GAS;
        let recv_tx = TX_BASE_GAS + 100 * MSG_RECV_PACKET_GAS;
        let ack_tx = TX_BASE_GAS + 100 * MSG_ACK_GAS;
        let close =
            |ours: u64, paper: u64| ((ours as f64 - paper as f64).abs() / paper as f64) < 0.01;
        assert!(
            close(transfer_tx, 3_669_161),
            "transfer tx gas {transfer_tx}"
        );
        assert!(close(recv_tx, 7_238_699), "recv tx gas {recv_tx}");
        assert!(close(ack_tx, 3_107_462), "ack tx gas {ack_tx}");
    }

    #[test]
    fn gas_meter_enforces_limit_without_partial_consumption() {
        let mut m = GasMeter::new(1_000);
        m.consume(400).unwrap();
        let err = m.consume(700).unwrap_err();
        assert_eq!(
            err,
            OutOfGas {
                limit: 1_000,
                attempted: 1_100
            }
        );
        // Failed consumption leaves the meter untouched.
        assert_eq!(m.consumed(), 400);
        assert_eq!(m.remaining(), 600);
        assert_eq!(m.limit(), 1_000);
    }

    #[test]
    fn fee_follows_configured_gas_price() {
        assert_eq!(fee_for_gas(3_669_161), 36_692);
        assert_eq!(fee_for_gas(0), 0);
    }

    #[test]
    fn out_of_gas_display() {
        assert!(OutOfGas {
            limit: 5,
            attempted: 9
        }
        .to_string()
        .contains("out of gas"));
    }
}
