//! Genesis configuration for a simulated Gaia chain.

use serde::{Deserialize, Serialize};

use crate::account::AccountId;
use crate::coin::Coin;

/// The initial state of a chain: identifier, staking denomination, funded
/// accounts and validator count.
///
/// # Example
///
/// ```rust
/// use xcc_chain::genesis::GenesisConfig;
///
/// let genesis = GenesisConfig::new("chain-a")
///     .with_validators(5)
///     .with_funded_accounts("user", 10, 1_000_000);
/// assert_eq!(genesis.accounts.len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenesisConfig {
    /// The chain identifier.
    pub chain_id: String,
    /// The native staking / fee denomination.
    pub fee_denom: String,
    /// Accounts created at genesis with their initial balances.
    pub accounts: Vec<(AccountId, Vec<Coin>)>,
    /// Number of consensus validators (the paper's testnets use 5).
    pub validator_count: usize,
}

impl GenesisConfig {
    /// Creates a genesis with no accounts, five validators and `uatom` as the
    /// native denomination.
    pub fn new(chain_id: impl Into<String>) -> Self {
        GenesisConfig {
            chain_id: chain_id.into(),
            fee_denom: "uatom".to_string(),
            accounts: Vec::new(),
            validator_count: 5,
        }
    }

    /// Sets the validator count.
    pub fn with_validators(mut self, count: usize) -> Self {
        self.validator_count = count;
        self
    }

    /// Sets the fee denomination.
    pub fn with_fee_denom(mut self, denom: impl Into<String>) -> Self {
        self.fee_denom = denom.into();
        self
    }

    /// Adds a single funded account.
    pub fn with_account(mut self, address: impl Into<String>, amount: u128) -> Self {
        let denom = self.fee_denom.clone();
        self.accounts
            .push((AccountId::new(address), vec![Coin::new(denom, amount)]));
        self
    }

    /// Adds `count` accounts named `{prefix}-0 .. {prefix}-{count-1}`, each
    /// funded with `amount` of the fee denomination — the multi-account
    /// workload shape the paper uses to submit many transactions per block.
    pub fn with_funded_accounts(mut self, prefix: &str, count: usize, amount: u128) -> Self {
        let denom = self.fee_denom.clone();
        for i in 0..count {
            self.accounts.push((
                AccountId::new(format!("{prefix}-{i}")),
                vec![Coin::new(denom.clone(), amount)],
            ));
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_accounts() {
        let genesis = GenesisConfig::new("chain-a")
            .with_fee_denom("stake")
            .with_validators(7)
            .with_account("relayer", 500)
            .with_funded_accounts("user", 3, 100);
        assert_eq!(genesis.chain_id, "chain-a");
        assert_eq!(genesis.fee_denom, "stake");
        assert_eq!(genesis.validator_count, 7);
        assert_eq!(genesis.accounts.len(), 4);
        assert_eq!(genesis.accounts[0].0, AccountId::new("relayer"));
        assert_eq!(genesis.accounts[3].0, AccountId::new("user-2"));
        assert_eq!(genesis.accounts[1].1[0], Coin::new("stake", 100));
    }

    #[test]
    fn defaults_match_paper_testnet() {
        let genesis = GenesisConfig::new("gaia-sim");
        assert_eq!(genesis.validator_count, 5);
        assert_eq!(genesis.fee_denom, "uatom");
        assert!(genesis.accounts.is_empty());
    }
}
