//! D2 fixture: the bench timing shim path is the rule's scoped exemption —
//! `Instant` here must NOT be flagged, with no suppression comment needed.

pub fn host_stopwatch_is_legal_here() -> f64 {
    let start = std::time::Instant::now();
    start.elapsed().as_secs_f64()
}
