//! D2 fixture: wall-clock time sources in simulated code.

use std::time::Instant;
use std::time::SystemTime;

pub fn measures_wall_time() -> u128 {
    let start = Instant::now();
    let _epoch = SystemTime::now();
    start.elapsed().as_nanos()
}
