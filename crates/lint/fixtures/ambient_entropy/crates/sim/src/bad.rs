//! D3 fixture: ambient entropy sources that would break seeded replay.

pub fn seeds_from_the_os() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn another_ambient_source() -> u64 {
    let rng = StdRng::from_entropy();
    rng.gen()
}
