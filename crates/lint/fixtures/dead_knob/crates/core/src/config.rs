//! K1 fixture: knob types whose pub fields must be read somewhere else in
//! the workspace, plus a sweep grid with a dead axis.

/// The deployment knobs.
pub struct DeploymentConfig {
    /// Read by `driver.rs`: alive.
    pub used_knob: u64,
    /// Read by nothing outside this file: a dead knob.
    pub orphan_knob: u64,
    // xcc-lint: allow(dead-knob, reason = "reserved for the fig14 sweep; wired up in the next PR")
    pub parked_knob: u64,
    /// Private fields are not knobs.
    internal_counter: u64,
}

/// Not a knob type: dead fields here are fine.
pub struct ScratchPad {
    pub unread_scratch: u64,
}

pub struct SweepGrid {
    pub base: DeploymentConfig,
}

impl SweepGrid {
    /// Driven by `driver.rs`: alive.
    pub fn used_axis(self, v: u64) -> Self {
        self
    }

    /// Nothing calls this: a dead axis.
    pub fn orphan_axis(self, v: u64) -> Self {
        self
    }

    /// Private helpers are not axes.
    fn expand(&self) -> u64 {
        self.base.internal_counter
    }
}
