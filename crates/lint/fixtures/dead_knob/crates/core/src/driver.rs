//! The reader side of the K1 fixture: exercises exactly one knob and one
//! axis, leaving their orphan twins dead.

pub fn drive(cfg: DeploymentConfig, grid: SweepGrid) -> u64 {
    grid.used_axis(cfg.used_knob).base.used_knob
}
