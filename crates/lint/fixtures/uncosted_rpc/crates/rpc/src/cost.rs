//! C1 fixture cost model: one unpriced variant, one dead variant, and a
//! wildcard arm hiding the gap.

pub enum RequestKind {
    Priced,
    Unpriced,
    DeadButPriced,
}

pub struct Model;

impl Model {
    pub fn service_time(&self, kind: &RequestKind) -> u64 {
        match kind {
            RequestKind::Priced => 10,
            RequestKind::DeadButPriced => 20,
            _ => 0,
        }
    }
}
