//! C1 fixture endpoint: one billed method and one RPC that names no
//! RequestKind at all.

pub struct RpcResponse<T> {
    pub value: T,
}

pub struct Endpoint;

impl Endpoint {
    pub fn billed(&self) -> RpcResponse<u64> {
        let _kind = RequestKind::Priced;
        RpcResponse { value: 1 }
    }

    pub fn free_rider(&self) -> RpcResponse<u64> {
        RpcResponse { value: 2 }
    }
}
