//! D4 fixture: float arithmetic in simulated code with no baseline budget,
//! one properly annotated site, one wrong-rule annotation, and one unused
//! annotation.

/// Two unsuppressed sites: the signature and the cast line.
pub fn drift(x: u64) -> f64 {
    x as f64 * 0.5
}

// xcc-lint: allow(float-determinism, reason = "reporting-only ratio; never feeds simulated state")
pub fn annotated_ratio(busy: f64, horizon: f64) -> f64 {
    busy / horizon
}

// xcc-lint: allow(panic-in-library, reason = "wrong rule: does not absorb the float below")
pub fn mislabeled(x: f32) -> f32 {
    x
}

// xcc-lint: allow(float-determinism, reason = "unused: nothing floats on the next line")
pub fn integral(x: u64) -> u64 {
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn floats_in_tests_are_exempt() {
        let x: f64 = 1.5;
        assert!(x > 1.0);
    }
}
