//! P1 fixture: panic sites in non-test library code with no baseline.

pub fn unwraps(input: Option<u64>) -> u64 {
    input.unwrap()
}

pub fn expects(input: Option<u64>) -> u64 {
    input.expect("fixture")
}

pub fn panics() {
    panic!("fixture");
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        Some(1u64).unwrap();
    }
}
