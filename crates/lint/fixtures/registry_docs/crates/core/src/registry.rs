//! R1 fixture registry: one covered scenario, one with no bench, one
//! missing from the docs.

pub struct ScenarioEntry {
    pub name: &'static str,
}

pub static ENTRIES: [ScenarioEntry; 3] = [
    ScenarioEntry { name: "covered" },
    ScenarioEntry { name: "benchless" },
    ScenarioEntry { name: "undocumented" },
];
