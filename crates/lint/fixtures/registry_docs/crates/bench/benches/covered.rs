fn main() {
    fixture::run("covered");
}
