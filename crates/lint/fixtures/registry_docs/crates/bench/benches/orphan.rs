fn main() {
    fixture::run("not-a-registered-name");
}
