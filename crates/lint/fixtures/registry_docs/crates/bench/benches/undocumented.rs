fn main() {
    fixture::run("undocumented");
}
