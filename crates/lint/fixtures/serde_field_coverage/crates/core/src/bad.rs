//! S1 fixture: hand-written serde impls that drift from the struct they
//! serialize, plus the three suppression-hygiene shapes (unused, malformed,
//! wrong-rule) parked on S1 sites.

/// The experiment knobs with hand-rolled serde.
pub struct Knobs {
    // xcc-lint: allow(serde-field-coverage, reason = "unused: alpha is covered by both impls")
    pub alpha: u64,
    pub beta: u64,
    /// Never named in either impl: one missing-field finding per impl.
    pub delta: u64,
    // xcc-lint: allow(serde-field-coverage, reason = "runtime-only cache; intentionally dropped from the JSON round-trip")
    pub hidden: u64,
}

impl Serialize for Knobs {
    fn serialize(&self, out: &mut Writer) {
        out.field("alpha", self.alpha);
        out.field("beta", self.beta);
    }
}

// xcc-lint: allow(serde-field-coverage
impl Deserialize for Knobs {
    fn deserialize(map: &Map) -> Self {
        Knobs {
            alpha: get(map, "alpha"),
            beta: get(map, "beta"),
            // xcc-lint: allow(wall-clock, reason = "wrong rule: does not absorb the stale key below")
            delta: get(map, "epsilon"),
            hidden: 0,
        }
    }
}

/// A struct with no hand-written impls stays silent.
pub struct Derived {
    pub left: u64,
    pub right: u64,
}

// Keys inside comments are not keys: "phantom" never fires.
pub fn fine_in_a_string() -> &'static str {
    "CamelCase and spaced strings are not field keys"
}
