//! D1 fixture: unordered hash collections without suppressions, plus one
//! correctly suppressed site and one suppression missing its reason.

use std::collections::{HashMap, HashSet};

pub fn iterates_a_hash_map(map: &HashMap<String, u64>) -> u64 {
    map.values().sum()
}

// xcc-lint: allow(hash-collections, reason = "membership probe only; never iterated")
pub fn suppressed_ok(set: &HashSet<u64>, x: u64) -> bool {
    set.contains(&x)
}

// xcc-lint: allow(hash-collections)
pub fn suppressed_without_reason(set: &HashSet<u64>) -> usize {
    set.len()
}

pub fn fine_in_a_string() -> &'static str {
    "HashMap in a string literal is not a finding"
}

// A HashSet in a comment is not a finding either.
