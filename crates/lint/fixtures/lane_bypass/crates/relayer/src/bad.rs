//! C2 fixture: hand-built RPC responses and direct cost-table access from
//! relayer code, which must go through the endpoint's lanes instead.

/// A hand-built response: bypasses lane costing entirely.
pub fn hand_built(height: u64) -> ResponseEnvelope {
    let response = RpcResponse {
        height,
        payload: Payload::Empty,
    };
    ResponseEnvelope::wrap(response)
}

/// Re-prices a request outside the lane scheduler.
pub fn reprice(cost: &RpcCostModel, kind: &RequestKind) -> SimDuration {
    cost.service_time(kind)
}

// xcc-lint: allow(lane-bypass, reason = "fixture shim: canned response for a chain that never answers")
pub fn canned() -> RpcResponse {
    // xcc-lint: allow(lane-bypass, reason = "fixture shim: canned response for a chain that never answers")
    RpcResponse { height: 0, payload: Payload::Empty }
}

/// Type positions are not constructions: stays silent.
pub fn forward(response: RpcResponse) -> u64 {
    response.height
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_harnesses_may_build_responses() {
        let r = RpcResponse { height: 7, payload: Payload::Empty };
        assert_eq!(r.height, 7);
    }
}
