//! End-to-end tests: each rule's bad fixture must fail `--check` with
//! exit code 2 and report the expected findings, and the real workspace
//! must be lint-clean.

use std::path::{Path, PathBuf};
use std::process::Command;

use xcc_lint::{rules, Config, RuleId};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn run_rules(root: &Path, rule_names: &[&str]) -> Vec<(String, String)> {
    let mut rules_on: Vec<RuleId> = rule_names
        .iter()
        .map(|n| RuleId::parse(n).expect("known rule"))
        .collect();
    rules_on.push(RuleId::Suppression);
    let outcome = rules::run(&Config {
        root: root.to_path_buf(),
        rules: rules_on,
    })
    .expect("scan succeeds");
    outcome
        .findings
        .into_iter()
        .map(|f| (f.rule.to_string(), f.message))
        .collect()
}

fn check_exit_code(root: &Path, rule: &str) -> i32 {
    let output = Command::new(env!("CARGO_BIN_EXE_xcc-lint"))
        .args(["--check", "--rule", rule, "--root"])
        .arg(root)
        .output()
        .expect("binary runs");
    output.status.code().expect("exit code")
}

#[test]
fn hash_collections_fixture_fails() {
    let root = fixture("hash_collections");
    let findings = run_rules(&root, &["hash-collections"]);
    let d1 = findings
        .iter()
        .filter(|(r, _)| r == "hash-collections")
        .count();
    // The iterated map, the unsuppressed use-line names, and the set whose
    // suppression is rejected for lacking a reason; the string literal and
    // the comment must not fire.
    assert!(
        d1 >= 3,
        "expected at least 3 D1 findings, got: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|(r, m)| r == "suppression" && m.contains("without a reason")),
        "missing-reason suppression must be flagged: {findings:?}"
    );
    assert_eq!(check_exit_code(&root, "hash-collections"), 2);
}

#[test]
fn wall_clock_fixture_fails() {
    let root = fixture("wall_clock");
    let findings = run_rules(&root, &["wall-clock"]);
    assert!(
        findings.iter().any(|(_, m)| m.contains("`Instant`"))
            && findings.iter().any(|(_, m)| m.contains("`SystemTime`")),
        "both time sources must be flagged: {findings:?}"
    );
    assert_eq!(check_exit_code(&root, "wall-clock"), 2);
}

/// The D2 exemption is scoped to the bench timing shim and nowhere else:
/// the fixture's `crates/bench/src/timing.rs` uses `Instant` with no
/// suppression comment and must stay silent, while the identical use in
/// `crates/sim/src/bad.rs` still fails.
#[test]
fn wall_clock_exemption_covers_only_the_bench_timing_shim() {
    let root = fixture("wall_clock");
    let outcome = rules::run(&Config {
        root: root.clone(),
        rules: vec![RuleId::WallClock, RuleId::Suppression],
    })
    .expect("scan succeeds");
    assert!(
        !outcome
            .findings
            .iter()
            .any(|f| f.path == "crates/bench/src/timing.rs"),
        "the timing shim must be exempt: {:?}",
        outcome.findings
    );
    assert!(
        outcome
            .findings
            .iter()
            .any(|f| f.path == "crates/sim/src/bad.rs" && f.message.contains("`Instant`")),
        "`Instant` outside the shim must still fail: {:?}",
        outcome.findings
    );
}

#[test]
fn ambient_entropy_fixture_fails() {
    let root = fixture("ambient_entropy");
    let findings = run_rules(&root, &["ambient-entropy"]);
    assert!(
        findings.iter().any(|(_, m)| m.contains("`thread_rng`"))
            && findings.iter().any(|(_, m)| m.contains("`from_entropy`")),
        "both entropy sources must be flagged: {findings:?}"
    );
    assert_eq!(check_exit_code(&root, "ambient-entropy"), 2);
}

#[test]
fn uncosted_rpc_fixture_fails() {
    let root = fixture("uncosted_rpc");
    let findings = run_rules(&root, &["uncosted-rpc"]);
    assert!(
        findings.iter().any(|(_, m)| m.contains("Unpriced")),
        "unpriced variant must be flagged: {findings:?}"
    );
    assert!(
        findings.iter().any(|(_, m)| m.contains("wildcard")),
        "wildcard arm must be flagged: {findings:?}"
    );
    assert!(
        findings.iter().any(|(_, m)| m.contains("free_rider")),
        "RPC method naming no RequestKind must be flagged: {findings:?}"
    );
    assert!(
        findings.iter().any(|(_, m)| m.contains("DeadButPriced")),
        "dead costing arm must be flagged: {findings:?}"
    );
    assert_eq!(check_exit_code(&root, "uncosted-rpc"), 2);
}

#[test]
fn panic_in_library_fixture_fails() {
    let root = fixture("panic_in_library");
    let findings = run_rules(&root, &["panic-in-library"]);
    assert!(
        findings
            .iter()
            .any(|(r, m)| r == "panic-in-library" && m.contains("3 panic site(s)")),
        "the three library sites must be counted (test code exempt): {findings:?}"
    );
    assert_eq!(check_exit_code(&root, "panic-in-library"), 2);
}

#[test]
fn registry_docs_fixture_fails() {
    let root = fixture("registry_docs");
    let findings = run_rules(&root, &["registry-docs"]);
    let has = |needle: &str| findings.iter().any(|(_, m)| m.contains(needle));
    assert!(has("`benchless` has no bench target"), "{findings:?}");
    assert!(has("`undocumented` is not documented"), "{findings:?}");
    assert!(
        has("`phantom`"),
        "phantom doc row must be flagged: {findings:?}"
    );
    assert!(has("`ghost` has no source file"), "{findings:?}");
    assert!(has("no matching [[bench]] target `orphan`"), "{findings:?}");
    assert!(
        has("runs no registered scenario"),
        "orphan bench references nothing: {findings:?}"
    );
    assert!(
        !findings.iter().any(|(_, m)| m.contains("`covered`")),
        "the fully-consistent scenario must stay silent: {findings:?}"
    );
    assert_eq!(check_exit_code(&root, "registry-docs"), 2);
}

#[test]
fn serde_field_coverage_fixture_fails() {
    let root = fixture("serde_field_coverage");
    // wall-clock rides along so the wrong-rule suppression is judged unused.
    let findings = run_rules(&root, &["serde-field-coverage", "wall-clock"]);
    let s1: Vec<_> = findings
        .iter()
        .filter(|(r, _)| r == "serde-field-coverage")
        .collect();
    // `delta` is missing from both hand-written impls: one finding each.
    assert_eq!(
        s1.iter().filter(|(_, m)| m.contains("`delta`")).count(),
        2,
        "{findings:?}"
    );
    assert!(
        s1.iter()
            .any(|(_, m)| m.contains("\"epsilon\"") && m.contains("stale key")),
        "stale key must be flagged: {findings:?}"
    );
    // The suppressed field stays silent.
    assert!(
        !findings.iter().any(|(_, m)| m.contains("hidden")),
        "suppressed field must not fire: {findings:?}"
    );
    let s0 = |needle: &str| {
        findings
            .iter()
            .any(|(r, m)| r == "suppression" && m.contains(needle))
    };
    assert!(s0("malformed xcc-lint comment"), "{findings:?}");
    assert!(
        s0("unused suppression: no `serde-field-coverage` finding"),
        "{findings:?}"
    );
    assert!(
        s0("unused suppression: no `wall-clock` finding"),
        "wrong-rule suppression must read as unused: {findings:?}"
    );
    assert_eq!(check_exit_code(&root, "serde-field-coverage"), 2);
}

#[test]
fn dead_knob_fixture_fails() {
    let root = fixture("dead_knob");
    let findings = run_rules(&root, &["dead-knob"]);
    let has = |needle: &str| findings.iter().any(|(_, m)| m.contains(needle));
    assert!(has("`DeploymentConfig.orphan_knob`"), "{findings:?}");
    assert!(has("axis `orphan_axis`"), "{findings:?}");
    // Alive, suppressed, non-pub, and non-knob-type names stay silent.
    for quiet in [
        "used_knob",
        "parked_knob",
        "internal_counter",
        "unread_scratch",
        "used_axis",
        "expand",
    ] {
        assert!(!has(quiet), "`{quiet}` must not be flagged: {findings:?}");
    }
    assert_eq!(check_exit_code(&root, "dead-knob"), 2);
}

#[test]
fn float_determinism_fixture_fails() {
    let root = fixture("float_determinism");
    // panic-in-library rides along so the wrong-rule suppression is judged.
    let findings = run_rules(&root, &["float-determinism", "panic-in-library"]);
    assert!(
        findings.iter().any(|(r, m)| r == "float-determinism"
            && m.contains("3 f32/f64 site(s) but the float baseline allows 0")),
        "the annotated site must be absorbed and tests exempted, leaving 3: {findings:?}"
    );
    assert!(
        findings.iter().any(|(r, m)| r == "float-determinism"
            && m.contains("ghost.rs")
            && m.contains("no longer exists")),
        "the stale baseline entry must be flagged: {findings:?}"
    );
    let unused = findings
        .iter()
        .filter(|(r, m)| r == "suppression" && m.contains("unused suppression"))
        .count();
    assert_eq!(
        unused, 2,
        "the no-op float annotation and the wrong-rule annotation: {findings:?}"
    );
    assert_eq!(check_exit_code(&root, "float-determinism"), 2);
}

#[test]
fn lane_bypass_fixture_fails() {
    let root = fixture("lane_bypass");
    let findings = run_rules(&root, &["lane-bypass"]);
    let c2: Vec<_> = findings
        .iter()
        .filter(|(r, _)| r == "lane-bypass")
        .collect();
    assert!(
        c2.iter()
            .any(|(_, m)| m.contains("`RpcResponse { .. }` construction")),
        "hand-built response must be flagged: {findings:?}"
    );
    assert!(
        c2.iter().any(|(_, m)| m.contains("`service_time`")),
        "direct cost-table access must be flagged: {findings:?}"
    );
    // The suppressed shim, the type position, and the test harness are the
    // only other sites — exactly two findings.
    assert_eq!(c2.len(), 2, "{findings:?}");
    assert!(
        !findings.iter().any(|(r, _)| r == "suppression"),
        "both shim suppressions are used: {findings:?}"
    );
    assert_eq!(check_exit_code(&root, "lane-bypass"), 2);
}

/// The ISSUE's seeded mutation: start from an S1-clean mini-workspace,
/// comment out one field key in the hand-written `Deserialize`, and the rule
/// must catch the drift.
#[test]
fn serde_mutation_commenting_out_a_key_is_caught() {
    let clean = r#"pub struct Knobs {
    pub alpha: u64,
    pub beta: u64,
}

impl Serialize for Knobs {
    fn serialize(&self, out: &mut Writer) {
        out.field("alpha", self.alpha);
        out.field("beta", self.beta);
    }
}

impl Deserialize for Knobs {
    fn deserialize(map: &Map) -> Self {
        Knobs {
            alpha: get(map, "alpha"),
            beta: get(map, "beta"),
        }
    }
}
"#;
    let root = std::env::temp_dir().join(format!("xcc-lint-s1-mutation-{}", std::process::id()));
    let src = root.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("temp workspace");
    let file = src.join("knobs.rs");

    std::fs::write(&file, clean).expect("write clean");
    assert!(
        run_rules(&root, &["serde-field-coverage"]).is_empty(),
        "the unmutated workspace must be S1-clean"
    );

    let mutated = clean.replace(
        "            beta: get(map, \"beta\"),",
        "            // beta: get(map, \"beta\"),",
    );
    assert_ne!(mutated, clean, "mutation must apply");
    std::fs::write(&file, mutated).expect("write mutant");
    let findings = run_rules(&root, &["serde-field-coverage"]);
    assert!(
        findings.iter().any(|(r, m)| r == "serde-field-coverage"
            && m.contains("`beta`")
            && m.contains("Deserialize")),
        "S1 must catch the commented-out key: {findings:?}"
    );

    let _ = std::fs::remove_dir_all(&root);
}

/// Satellite guarantee: findings come out sorted by (path, line, col, rule)
/// and paths stay workspace-relative even under an absolute `--root`.
#[test]
fn findings_are_sorted_and_paths_stay_workspace_relative() {
    let root = fixture("serde_field_coverage")
        .canonicalize()
        .expect("fixture resolves");
    assert!(root.is_absolute());

    let outcome = rules::run(&Config {
        root: root.clone(),
        rules: vec![
            RuleId::SerdeFieldCoverage,
            RuleId::WallClock,
            RuleId::Suppression,
        ],
    })
    .expect("scan succeeds");
    assert!(outcome.findings.len() > 3, "fixture must produce findings");
    for f in &outcome.findings {
        assert!(
            f.path.starts_with("crates/"),
            "path must be workspace-relative, got `{}`",
            f.path
        );
    }
    let keys: Vec<_> = outcome
        .findings
        .iter()
        .map(|f| (f.path.clone(), f.line, f.col, f.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings must come out pre-sorted");

    // And the binary's GitHub mode renders one annotation per finding.
    let gh = Command::new(env!("CARGO_BIN_EXE_xcc-lint"))
        .args(["--github", "--rule", "serde-field-coverage", "--root"])
        .arg(&root)
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&gh.stdout);
    assert!(
        stdout
            .lines()
            .any(|l| l.starts_with("::error file=crates/") && l.contains("title=xcc-lint")),
        "github annotations must use relative paths: {stdout}"
    );
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let outcome = rules::run(&Config::all_rules(&root)).expect("scan succeeds");
    assert!(
        outcome.findings.is_empty(),
        "the workspace must be lint-clean:\n{}",
        outcome
            .findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.files_scanned > 50,
        "sanity: the walker found only {} files",
        outcome.files_scanned
    );
}

#[test]
fn cli_json_and_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_xcc-lint");

    // Clean tree in check mode: exit 0.
    let clean = Command::new(bin)
        .args(["--check", "--root"])
        .arg(workspace_root())
        .output()
        .expect("binary runs");
    assert_eq!(clean.status.code(), Some(0), "workspace check must pass");

    // JSON output on a bad fixture parses the expected shape.
    let json_out = Command::new(bin)
        .args(["--json", "--rule", "wall-clock", "--root"])
        .arg(fixture("wall_clock"))
        .output()
        .expect("binary runs");
    let json = String::from_utf8_lossy(&json_out.stdout);
    assert!(json.contains("\"rule\": \"wall-clock\""), "{json}");
    assert!(json.contains("\"finding_count\""), "{json}");
    // Without --check, findings do not change the exit code.
    assert_eq!(json_out.status.code(), Some(0));

    // Unknown rule: usage error.
    let bad = Command::new(bin)
        .args(["--rule", "no-such-rule"])
        .output()
        .expect("binary runs");
    assert_eq!(bad.status.code(), Some(1));
}
