//! End-to-end tests: each rule's bad fixture must fail `--check` with
//! exit code 2 and report the expected findings, and the real workspace
//! must be lint-clean.

use std::path::{Path, PathBuf};
use std::process::Command;

use xcc_lint::{rules, Config, RuleId};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn run_rules(root: &Path, rule_names: &[&str]) -> Vec<(String, String)> {
    let mut rules_on: Vec<RuleId> = rule_names
        .iter()
        .map(|n| RuleId::parse(n).expect("known rule"))
        .collect();
    rules_on.push(RuleId::Suppression);
    let outcome = rules::run(&Config {
        root: root.to_path_buf(),
        rules: rules_on,
    })
    .expect("scan succeeds");
    outcome
        .findings
        .into_iter()
        .map(|f| (f.rule.to_string(), f.message))
        .collect()
}

fn check_exit_code(root: &Path, rule: &str) -> i32 {
    let output = Command::new(env!("CARGO_BIN_EXE_xcc-lint"))
        .args(["--check", "--rule", rule, "--root"])
        .arg(root)
        .output()
        .expect("binary runs");
    output.status.code().expect("exit code")
}

#[test]
fn hash_collections_fixture_fails() {
    let root = fixture("hash_collections");
    let findings = run_rules(&root, &["hash-collections"]);
    let d1 = findings
        .iter()
        .filter(|(r, _)| r == "hash-collections")
        .count();
    // The iterated map, the unsuppressed use-line names, and the set whose
    // suppression is rejected for lacking a reason; the string literal and
    // the comment must not fire.
    assert!(
        d1 >= 3,
        "expected at least 3 D1 findings, got: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|(r, m)| r == "suppression" && m.contains("without a reason")),
        "missing-reason suppression must be flagged: {findings:?}"
    );
    assert_eq!(check_exit_code(&root, "hash-collections"), 2);
}

#[test]
fn wall_clock_fixture_fails() {
    let root = fixture("wall_clock");
    let findings = run_rules(&root, &["wall-clock"]);
    assert!(
        findings.iter().any(|(_, m)| m.contains("`Instant`"))
            && findings.iter().any(|(_, m)| m.contains("`SystemTime`")),
        "both time sources must be flagged: {findings:?}"
    );
    assert_eq!(check_exit_code(&root, "wall-clock"), 2);
}

#[test]
fn ambient_entropy_fixture_fails() {
    let root = fixture("ambient_entropy");
    let findings = run_rules(&root, &["ambient-entropy"]);
    assert!(
        findings.iter().any(|(_, m)| m.contains("`thread_rng`"))
            && findings.iter().any(|(_, m)| m.contains("`from_entropy`")),
        "both entropy sources must be flagged: {findings:?}"
    );
    assert_eq!(check_exit_code(&root, "ambient-entropy"), 2);
}

#[test]
fn uncosted_rpc_fixture_fails() {
    let root = fixture("uncosted_rpc");
    let findings = run_rules(&root, &["uncosted-rpc"]);
    assert!(
        findings.iter().any(|(_, m)| m.contains("Unpriced")),
        "unpriced variant must be flagged: {findings:?}"
    );
    assert!(
        findings.iter().any(|(_, m)| m.contains("wildcard")),
        "wildcard arm must be flagged: {findings:?}"
    );
    assert!(
        findings.iter().any(|(_, m)| m.contains("free_rider")),
        "RPC method naming no RequestKind must be flagged: {findings:?}"
    );
    assert!(
        findings.iter().any(|(_, m)| m.contains("DeadButPriced")),
        "dead costing arm must be flagged: {findings:?}"
    );
    assert_eq!(check_exit_code(&root, "uncosted-rpc"), 2);
}

#[test]
fn panic_in_library_fixture_fails() {
    let root = fixture("panic_in_library");
    let findings = run_rules(&root, &["panic-in-library"]);
    assert!(
        findings
            .iter()
            .any(|(r, m)| r == "panic-in-library" && m.contains("3 panic site(s)")),
        "the three library sites must be counted (test code exempt): {findings:?}"
    );
    assert_eq!(check_exit_code(&root, "panic-in-library"), 2);
}

#[test]
fn registry_docs_fixture_fails() {
    let root = fixture("registry_docs");
    let findings = run_rules(&root, &["registry-docs"]);
    let has = |needle: &str| findings.iter().any(|(_, m)| m.contains(needle));
    assert!(has("`benchless` has no bench target"), "{findings:?}");
    assert!(has("`undocumented` is not documented"), "{findings:?}");
    assert!(
        has("`phantom`"),
        "phantom doc row must be flagged: {findings:?}"
    );
    assert!(has("`ghost` has no source file"), "{findings:?}");
    assert!(has("no matching [[bench]] target `orphan`"), "{findings:?}");
    assert!(
        has("runs no registered scenario"),
        "orphan bench references nothing: {findings:?}"
    );
    assert!(
        !findings.iter().any(|(_, m)| m.contains("`covered`")),
        "the fully-consistent scenario must stay silent: {findings:?}"
    );
    assert_eq!(check_exit_code(&root, "registry-docs"), 2);
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let outcome = rules::run(&Config::all_rules(&root)).expect("scan succeeds");
    assert!(
        outcome.findings.is_empty(),
        "the workspace must be lint-clean:\n{}",
        outcome
            .findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.files_scanned > 50,
        "sanity: the walker found only {} files",
        outcome.files_scanned
    );
}

#[test]
fn cli_json_and_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_xcc-lint");

    // Clean tree in check mode: exit 0.
    let clean = Command::new(bin)
        .args(["--check", "--root"])
        .arg(workspace_root())
        .output()
        .expect("binary runs");
    assert_eq!(clean.status.code(), Some(0), "workspace check must pass");

    // JSON output on a bad fixture parses the expected shape.
    let json_out = Command::new(bin)
        .args(["--json", "--rule", "wall-clock", "--root"])
        .arg(fixture("wall_clock"))
        .output()
        .expect("binary runs");
    let json = String::from_utf8_lossy(&json_out.stdout);
    assert!(json.contains("\"rule\": \"wall-clock\""), "{json}");
    assert!(json.contains("\"finding_count\""), "{json}");
    // Without --check, findings do not change the exit code.
    assert_eq!(json_out.status.code(), Some(0));

    // Unknown rule: usage error.
    let bad = Command::new(bin)
        .args(["--rule", "no-such-rule"])
        .output()
        .expect("binary runs");
    assert_eq!(bad.status.code(), Some(1));
}
