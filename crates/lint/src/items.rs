//! The workspace item graph: a structural view of every scanned source file,
//! parsed from the scrubbed token stream (no `syn`, no `rustc` — the same
//! dependency-free discipline as [`crate::lexer`]).
//!
//! Where the lexer answers "is this word real code?", the item graph answers
//! "what item does this word belong to?": structs with their named fields,
//! enums with their variants, `impl` blocks with their method signatures and
//! bodies, and the match arms inside a body. The cross-crate rules (S1
//! serde-field-coverage, K1 dead-knob, C1 uncosted-rpc) are written against
//! this graph instead of raw token positions, so they survive reformatting
//! and follow items when they move between files.
//!
//! The parser is deliberately shallow: it tracks brace/bracket/paren depth
//! and word boundaries, not the full grammar. That is enough to recover
//! item extents and names exactly for the workspace's (rustfmt-formatted)
//! style, and degrades to *missing items* — never wrong ones — on exotic
//! code, which the rules treat as "nothing to check".

use crate::lexer::Scrubbed;

/// Scrubbed code joined into one string with line-start offsets, so byte
/// positions map back to 1-based lines.
pub struct Flat {
    /// The flattened scrubbed code, newline-separated.
    pub text: String,
    /// Byte offset of the start of each line.
    pub starts: Vec<usize>,
}

impl Flat {
    /// Flattens per-line scrubbed code.
    pub fn new(code: &[String]) -> Flat {
        let mut text = String::new();
        let mut starts = Vec::with_capacity(code.len());
        for line in code {
            starts.push(text.len());
            text.push_str(line);
            text.push('\n');
        }
        Flat { text, starts }
    }

    /// The 1-based line containing byte position `pos`.
    pub fn line_of(&self, pos: usize) -> usize {
        match self.starts.binary_search(&pos) {
            Ok(idx) => idx + 1,
            Err(idx) => idx,
        }
    }
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whole-word occurrences of `word` in `text` (byte positions).
pub fn word_positions(text: &str, word: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(word) {
        let at = from + pos;
        let end = at + word.len();
        let before_ok = at == 0 || !is_word_byte(bytes[at - 1]);
        let after_ok = end >= bytes.len() || !is_word_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = end;
    }
    out
}

/// The next identifier at or after `from`, with its start position.
pub fn next_word(text: &str, from: usize) -> Option<(String, usize)> {
    let bytes = text.as_bytes();
    let mut i = from;
    while i < bytes.len() && !is_word_byte(bytes[i]) {
        i += 1;
    }
    let start = i;
    while i < bytes.len() && is_word_byte(bytes[i]) {
        i += 1;
    }
    (i > start).then(|| (text[start..i].to_string(), start))
}

/// The previous identifier strictly before `pos`.
pub fn prev_word(text: &str, pos: usize) -> Option<String> {
    let bytes = text.as_bytes();
    let mut end = pos;
    while end > 0 && !is_word_byte(bytes[end - 1]) {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_word_byte(bytes[start - 1]) {
        start -= 1;
    }
    (end > start).then(|| text[start..end].to_string())
}

/// Byte position just past the matching `}` for the `{` at `open`.
pub fn matching_brace(text: &str, open: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    for (off, &b) in bytes[open..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// One named field of a struct.
#[derive(Debug, Clone)]
pub struct Field {
    /// The field name.
    pub name: String,
    /// 1-based line of the field declaration.
    pub line: usize,
    /// Whether the field carries a `pub` (incl. `pub(crate)`) visibility.
    pub is_pub: bool,
}

/// A struct with named fields. Tuple and unit structs are not recorded —
/// no rule needs them, and their "fields" have no names to check.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// The struct name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// The named fields, in declaration order.
    pub fields: Vec<Field>,
}

/// One variant of an enum (payloads are not recorded).
#[derive(Debug, Clone)]
pub struct Variant {
    /// The variant name.
    pub name: String,
    /// 1-based line of the variant.
    pub line: usize,
}

/// An enum with its variants.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// The enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// The variants, in declaration order.
    pub variants: Vec<Variant>,
}

/// One function or method with a braced body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the function is `pub` (incl. `pub(crate)`).
    pub is_pub: bool,
    /// The signature text from the name to the opening brace.
    pub signature: String,
    /// The body text including the outer braces.
    pub body: String,
}

impl FnItem {
    /// The 1-based file line of byte `offset` within [`FnItem::body`].
    /// Exact whenever the name sits on the same line as the `fn` keyword
    /// (always true for rustfmt output).
    pub fn body_line(&self, offset: usize) -> usize {
        let newlines = |s: &str| s.bytes().filter(|&b| b == b'\n').count();
        self.line + newlines(&self.signature) + newlines(&self.body[..offset.min(self.body.len())])
    }
}

/// An `impl` block: inherent (`impl Type`) or trait (`impl Trait for Type`).
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// The trait being implemented, if any (last path segment only).
    pub trait_name: Option<String>,
    /// The implementing type (last path segment, generics stripped).
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// 1-based line of the closing brace.
    pub end_line: usize,
    /// The methods declared in the block.
    pub methods: Vec<FnItem>,
}

/// One `pattern => ...` arm of a `match` expression.
#[derive(Debug, Clone)]
pub struct MatchArm {
    /// The pattern text, whitespace-trimmed.
    pub pattern: String,
    /// Byte offset of the pattern within the searched text.
    pub offset: usize,
}

/// Everything the item parser recovered from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// The crate the file belongs to (`crates/<name>/…` → `<name>`;
    /// the umbrella `src`/`tests`/`examples` trees map to `workspace`).
    pub crate_name: String,
    /// The module path within the crate (`src/a/b.rs` → `a::b`).
    pub module_path: String,
    /// Structs with named fields.
    pub structs: Vec<StructItem>,
    /// Enums.
    pub enums: Vec<EnumItem>,
    /// Impl blocks with their methods.
    pub impls: Vec<ImplItem>,
    /// Free functions (not inside any impl block).
    pub free_fns: Vec<FnItem>,
}

impl FileItems {
    /// Parses the items of one scrubbed file. `rel` is the
    /// workspace-relative path used to derive crate and module names.
    pub fn parse(rel: &str, scrub: &Scrubbed) -> FileItems {
        let flat = Flat::new(&scrub.code);
        let (crate_name, module_path) = crate_and_module(rel);
        let impls = parse_impls(&flat);
        FileItems {
            crate_name,
            module_path,
            structs: parse_structs(&flat),
            enums: parse_enums(&flat),
            free_fns: parse_fns(&flat, &impls),
            impls,
        }
    }

    /// The struct named `name`, if the file declares one with named fields.
    pub fn struct_named(&self, name: &str) -> Option<&StructItem> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// The enum named `name`, if the file declares one.
    pub fn enum_named(&self, name: &str) -> Option<&EnumItem> {
        self.enums.iter().find(|e| e.name == name)
    }

    /// All impl blocks for `type_name` (inherent and trait impls).
    pub fn impls_of<'a>(&'a self, type_name: &str) -> Vec<&'a ImplItem> {
        self.impls
            .iter()
            .filter(|i| i.type_name == type_name)
            .collect()
    }

    /// Every function in the file: free functions and impl methods.
    pub fn all_fns(&self) -> impl Iterator<Item = &FnItem> {
        self.free_fns
            .iter()
            .chain(self.impls.iter().flat_map(|i| i.methods.iter()))
    }
}

/// Derives `(crate, module)` from a workspace-relative path.
fn crate_and_module(rel: &str) -> (String, String) {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, module_parts): (String, &[&str]) = match parts.as_slice() {
        ["crates", krate, "src", rest @ ..] => ((*krate).to_string(), rest),
        ["crates", krate, rest @ ..] => ((*krate).to_string(), rest),
        [tree @ ("src" | "tests" | "examples"), rest @ ..] => (format!("workspace-{tree}"), rest),
        _ => ("workspace".to_string(), &[]),
    };
    let module = module_parts
        .join("::")
        .trim_end_matches(".rs")
        .trim_end_matches("::mod")
        .trim_end_matches("::lib")
        .to_string();
    (crate_name, module)
}

/// Whether the identifier ending right before `pos` (skipping whitespace and
/// a closing `)` from `pub(crate)`) is `pub`.
fn preceded_by_pub(text: &str, pos: usize) -> bool {
    let bytes = text.as_bytes();
    let mut end = pos;
    while end > 0 && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    if end > 0 && bytes[end - 1] == b')' {
        // `pub(crate)` / `pub(super)`: rewind past the parenthesized scope.
        let mut open = end - 1;
        while open > 0 && bytes[open] != b'(' {
            open -= 1;
        }
        end = open;
    }
    prev_word(text, end).as_deref() == Some("pub")
}

/// Parses `struct Name { fields }` declarations. Tuple and unit structs
/// (`struct X(...)`, `struct X;`) are skipped.
fn parse_structs(flat: &Flat) -> Vec<StructItem> {
    let text = &flat.text;
    let mut out = Vec::new();
    for pos in word_positions(text, "struct") {
        let Some((name, name_pos)) = next_word(text, pos + "struct".len()) else {
            continue;
        };
        // The body opens at the first `{` before any `;` or `(` at depth 0
        // (a `;` first means a unit struct, a `(` first a tuple struct).
        let tail = &text[name_pos + name.len()..];
        let Some(brace_off) = tail.find(['{', ';', '(']) else {
            continue;
        };
        if !tail[brace_off..].starts_with('{') {
            continue;
        }
        let open = name_pos + name.len() + brace_off;
        let Some(end) = matching_brace(text, open) else {
            continue;
        };
        let body_start = open + 1;
        let body = &text[body_start..end - 1];
        out.push(StructItem {
            name,
            line: flat.line_of(pos),
            fields: parse_fields(body, body_start, flat),
        });
    }
    out
}

/// Splits a struct body into fields at depth-0 commas and extracts each
/// field's name and visibility. Attributes (`#[...]`) are skipped.
fn parse_fields(body: &str, body_start: usize, flat: &Flat) -> Vec<Field> {
    let mut fields = Vec::new();
    let bytes = body.as_bytes();
    let mut depth = 0isize;
    let mut angle = 0isize;
    let mut chunk_start = 0usize;
    let mut i = 0usize;
    let flush = |start: usize, end: usize, fields: &mut Vec<Field>| {
        let chunk = &body[start..end];
        // Drop attribute lines, then read `pub? name :`.
        let mut at = 0usize;
        let cb = chunk.as_bytes();
        loop {
            while at < cb.len() && cb[at].is_ascii_whitespace() {
                at += 1;
            }
            if chunk[at..].starts_with("#[") {
                let mut d = 0usize;
                while at < cb.len() {
                    match cb[at] {
                        b'[' => d += 1,
                        b']' => {
                            d -= 1;
                            if d == 0 {
                                at += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    at += 1;
                }
            } else {
                break;
            }
        }
        let Some(colon) = chunk[at..].find(':').map(|n| at + n) else {
            return;
        };
        let Some(name) = prev_word(chunk, colon) else {
            return;
        };
        if name.is_empty() || name.as_bytes()[0].is_ascii_digit() {
            return;
        }
        let name_pos = chunk[..colon].rfind(&name).unwrap_or(at);
        let is_pub = preceded_by_pub(chunk, name_pos);
        fields.push(Field {
            line: flat.line_of(body_start + start + name_pos),
            name,
            is_pub,
        });
    };
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'<' => angle += 1,
            b'>' if angle > 0 && i > 0 && bytes[i - 1] != b'-' => angle -= 1,
            b',' if depth == 0 && angle <= 0 => {
                flush(chunk_start, i, &mut fields);
                chunk_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    flush(chunk_start, bytes.len(), &mut fields);
    fields
}

/// Parses `enum Name { Variant, ... }` declarations. Identifiers nested in
/// variant payloads or attribute arguments are ignored.
fn parse_enums(flat: &Flat) -> Vec<EnumItem> {
    let text = &flat.text;
    let mut out = Vec::new();
    for pos in word_positions(text, "enum") {
        let Some((name, name_pos)) = next_word(text, pos + "enum".len()) else {
            continue;
        };
        let Some(open) = text[name_pos..].find('{').map(|n| name_pos + n) else {
            continue;
        };
        let Some(end) = matching_brace(text, open) else {
            continue;
        };
        let body = &text[open + 1..end - 1];
        let bytes = body.as_bytes();
        let mut variants = Vec::new();
        let mut depth = 0usize;
        let mut i = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'(' | b'[' | b'{' => {
                    depth += 1;
                    i += 1;
                }
                b')' | b']' | b'}' => {
                    depth = depth.saturating_sub(1);
                    i += 1;
                }
                b'#' if depth == 0 => {
                    // Attribute on a variant: skip to the matching `]`.
                    let mut d = 0usize;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'[' => d += 1,
                            b']' => {
                                d -= 1;
                                if d == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                        if d == 0 && i < bytes.len() && bytes[i] != b'[' {
                            break;
                        }
                    }
                }
                b if depth == 0 && is_word_byte(b) => {
                    let start = i;
                    while i < bytes.len() && is_word_byte(bytes[i]) {
                        i += 1;
                    }
                    variants.push(Variant {
                        name: body[start..i].to_string(),
                        line: flat.line_of(open + 1 + start),
                    });
                }
                _ => i += 1,
            }
        }
        out.push(EnumItem {
            name,
            line: flat.line_of(pos),
            variants,
        });
    }
    out
}

/// Parses every `impl` block: `impl Type { ... }` and
/// `impl Trait for Type { ... }`, with the methods inside.
fn parse_impls(flat: &Flat) -> Vec<ImplItem> {
    let text = &flat.text;
    let mut out = Vec::new();
    for pos in word_positions(text, "impl") {
        // Skip a leading generic parameter list: `impl<T: Clone> Wrapper<T>`.
        let mut hdr_start = pos + "impl".len();
        let bytes = text.as_bytes();
        while hdr_start < bytes.len() && bytes[hdr_start].is_ascii_whitespace() {
            hdr_start += 1;
        }
        if hdr_start < bytes.len() && bytes[hdr_start] == b'<' {
            let mut depth = 0isize;
            while hdr_start < bytes.len() {
                match bytes[hdr_start] {
                    b'<' => depth += 1,
                    b'>' if bytes[hdr_start - 1] != b'-' => {
                        depth -= 1;
                        if depth == 0 {
                            hdr_start += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                hdr_start += 1;
            }
        }
        let Some(open) = text[hdr_start..].find('{').map(|n| hdr_start + n) else {
            continue;
        };
        let header = &text[hdr_start..open];
        let Some(end) = matching_brace(text, open) else {
            continue;
        };
        // Split the header on ` for `: `Trait for Type` vs `Type`.
        let (trait_part, type_part) = match split_on_for(header) {
            Some((t, ty)) => (Some(t), ty),
            None => (None, header.to_string()),
        };
        let trait_name = trait_part.as_deref().map(last_path_segment);
        let type_name = last_path_segment(&type_part);
        if type_name.is_empty() {
            continue;
        }
        out.push(ImplItem {
            trait_name,
            type_name,
            line: flat.line_of(pos),
            end_line: flat.line_of(end.saturating_sub(1)),
            methods: fns_in(text, open + 1, end - 1, flat),
        });
    }
    out
}

/// Splits an impl header at the ` for ` keyword (whole word, depth 0).
fn split_on_for(header: &str) -> Option<(String, String)> {
    word_positions(header, "for").first().map(|&pos| {
        (
            header[..pos].trim().to_string(),
            header[pos + 3..].trim().to_string(),
        )
    })
}

/// The last `::`-separated path segment, with generics and leading
/// qualifiers stripped: `xcc_rpc::endpoint::RpcEndpoint<T>` → `RpcEndpoint`.
fn last_path_segment(path: &str) -> String {
    let path = path.trim();
    let no_generics = match path.find('<') {
        Some(lt) => &path[..lt],
        None => path,
    };
    no_generics
        .rsplit("::")
        .next()
        .unwrap_or("")
        .trim()
        .trim_start_matches("dyn ")
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect()
}

/// Parses the `fn` items between byte positions `from` and `to`.
fn fns_in(text: &str, from: usize, to: usize, flat: &Flat) -> Vec<FnItem> {
    let mut out = Vec::new();
    for pos in word_positions(&text[from..to], "fn") {
        let pos = from + pos;
        let Some((name, name_pos)) = next_word(text, pos + 2) else {
            continue;
        };
        let Some(sig_end) = text[name_pos..].find(['{', ';']).map(|n| name_pos + n) else {
            continue;
        };
        if !text[sig_end..].starts_with('{') || sig_end > to {
            continue;
        }
        let Some(body_end) = matching_brace(text, sig_end) else {
            continue;
        };
        out.push(FnItem {
            is_pub: preceded_by_pub(text, pos),
            line: flat.line_of(pos),
            signature: text[name_pos..sig_end].to_string(),
            body: text[sig_end..body_end].to_string(),
            name,
        });
    }
    out
}

/// Free functions: every `fn` in the file minus those inside impl blocks.
fn parse_fns(flat: &Flat, impls: &[ImplItem]) -> Vec<FnItem> {
    fns_in(&flat.text, 0, flat.text.len(), flat)
        .into_iter()
        .filter(|f| {
            !impls
                .iter()
                .any(|i| f.line >= i.line && f.line <= i.end_line)
        })
        .collect()
}

/// The `pattern => ...` arms of every `match` expression in `text`
/// (byte offsets relative to `text`). Nested matches are included; `=>`
/// inside closures resembles nothing (closures use `|args|`), and match
/// guards stay part of the pattern text.
pub fn match_arms(text: &str) -> Vec<MatchArm> {
    let mut out = Vec::new();
    for pos in word_positions(text, "match") {
        // The match body is the next `{` at the same paren depth.
        let Some(open) = text[pos..].find('{').map(|n| pos + n) else {
            continue;
        };
        let Some(end) = matching_brace(text, open) else {
            continue;
        };
        // Arms: split the body at depth-0 `=>` boundaries; the pattern is
        // the text from the previous arm's end (body start, the previous
        // depth-0 `,`, or a brace body's close) to the `=>`. A `{` at
        // depth 0 only opens an arm *body* after a `=>` — before one it is
        // part of a struct pattern (`Kind::Pull { n }`).
        let body = &text[open + 1..end - 1];
        let base = open + 1;
        let mut depth = 0isize;
        let mut arm_start = 0usize;
        let mut in_body = false;
        let mut i = 0usize;
        let bb = body.as_bytes();
        while i < bb.len() {
            match bb[i] {
                b'{' if depth == 0 && in_body => {
                    // Brace-bodied arm: skip it; the next arm starts after
                    // the close (trailing comma optional).
                    let Some(close) = matching_brace(body, i) else {
                        break;
                    };
                    i = close;
                    arm_start = i;
                    in_body = false;
                    continue;
                }
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b',' if depth == 0 => {
                    arm_start = i + 1;
                    in_body = false;
                }
                b'=' if depth == 0 && !in_body && i + 1 < bb.len() && bb[i + 1] == b'>' => {
                    let pattern = body[arm_start..i].trim();
                    if !pattern.is_empty() {
                        let pat_off = arm_start
                            + (body[arm_start..i].len() - body[arm_start..i].trim_start().len());
                        out.push(MatchArm {
                            pattern: pattern.to_string(),
                            offset: base + pat_off,
                        });
                    }
                    in_body = true;
                    i += 2;
                    continue;
                }
                _ => {}
            }
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::Scrubbed;

    fn items(src: &str) -> FileItems {
        FileItems::parse("crates/demo/src/thing.rs", &Scrubbed::scan(src))
    }

    #[test]
    fn crate_and_module_paths() {
        let (k, m) = crate_and_module("crates/relayer/src/strategy.rs");
        assert_eq!((k.as_str(), m.as_str()), ("relayer", "strategy"));
        let (k, m) = crate_and_module("crates/bench/benches/fig6.rs");
        assert_eq!((k.as_str(), m.as_str()), ("bench", "benches::fig6"));
        let (k, m) = crate_and_module("tests/multi_channel.rs");
        assert_eq!(
            (k.as_str(), m.as_str()),
            ("workspace-tests", "multi_channel")
        );
        let (k, _) = crate_and_module("src/lib.rs");
        assert_eq!(k, "workspace-src");
    }

    #[test]
    fn structs_with_fields_and_visibility() {
        let f = items(
            "pub struct Config {\n    /// doc\n    pub name: String,\n    #[allow(dead_code)]\n    \
             pub(crate) count: usize,\n    secret: u64,\n    pub map: BTreeMap<String, usize>,\n}\n\
             struct Unit;\nstruct Tuple(u32);\n",
        );
        assert_eq!(f.structs.len(), 1, "unit/tuple structs are skipped");
        let s = &f.structs[0];
        assert_eq!(s.name, "Config");
        let names: Vec<(&str, bool)> = s
            .fields
            .iter()
            .map(|fld| (fld.name.as_str(), fld.is_pub))
            .collect();
        assert_eq!(
            names,
            [
                ("name", true),
                ("count", true),
                ("secret", false),
                ("map", true)
            ]
        );
        assert_eq!(s.fields[0].line, 3);
    }

    #[test]
    fn generic_field_types_do_not_split_fields() {
        let f =
            items("struct S {\n    pub a: BTreeMap<String, Vec<(u64, u64)>>,\n    pub b: u8,\n}\n");
        let names: Vec<&str> = f.structs[0]
            .fields
            .iter()
            .map(|x| x.name.as_str())
            .collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn enums_with_variants() {
        let f = items(
            "pub enum Kind {\n    #[default]\n    Alpha,\n    Beta(usize),\n    Gamma { x: u8 },\n}\n",
        );
        let e = f.enum_named("Kind").expect("enum parsed");
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["Alpha", "Beta", "Gamma"]);
        assert_eq!(e.variants[0].line, 3);
    }

    #[test]
    fn impls_inherent_and_trait() {
        let f = items(
            "impl Config {\n    pub fn get(&self) -> u64 { self.x }\n    fn helper() {}\n}\n\
             impl Serialize for Config {\n    fn to_value(&self) -> Value {\n        \
             Value::Map(vec![])\n    }\n}\n",
        );
        assert_eq!(f.impls.len(), 2);
        let inherent = &f.impls[0];
        assert_eq!(inherent.type_name, "Config");
        assert!(inherent.trait_name.is_none());
        assert_eq!(inherent.methods.len(), 2);
        assert!(inherent.methods[0].is_pub);
        assert!(!inherent.methods[1].is_pub);
        let trait_impl = &f.impls[1];
        assert_eq!(trait_impl.trait_name.as_deref(), Some("Serialize"));
        assert_eq!(trait_impl.type_name, "Config");
        assert_eq!(trait_impl.methods[0].name, "to_value");
        assert!(trait_impl.line < trait_impl.end_line);
    }

    #[test]
    fn impl_with_generics_and_paths() {
        let f = items(
            "impl<T: Clone> Wrapper<T> {\n    fn w(&self) {}\n}\n\
             impl serde::Deserialize for config::Deep {\n    fn from_value() {}\n}\n",
        );
        assert_eq!(f.impls[0].type_name, "Wrapper");
        assert_eq!(f.impls[1].trait_name.as_deref(), Some("Deserialize"));
        assert_eq!(f.impls[1].type_name, "Deep");
    }

    #[test]
    fn free_fns_exclude_methods() {
        let f = items("pub fn free() -> u64 { 1 }\nimpl X {\n    pub fn method(&self) {}\n}\n");
        let free: Vec<&str> = f.free_fns.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(free, ["free"]);
        let all: Vec<&str> = f.all_fns().map(|x| x.name.as_str()).collect();
        assert_eq!(all, ["free", "method"]);
    }

    #[test]
    fn match_arms_patterns() {
        let arms = match_arms(
            "{ match kind { RequestKind::Status => 1, RequestKind::Pull { n } => n, _ => 0, } }",
        );
        let pats: Vec<&str> = arms.iter().map(|a| a.pattern.as_str()).collect();
        assert_eq!(
            pats,
            ["RequestKind::Status", "RequestKind::Pull { n }", "_"]
        );
    }

    #[test]
    fn match_arms_with_block_bodies() {
        let arms = match_arms("{ match x { A => { f(); g(); } B(y) => y, } }");
        let pats: Vec<&str> = arms.iter().map(|a| a.pattern.as_str()).collect();
        assert_eq!(pats, ["A", "B(y)"]);
    }

    #[test]
    fn fn_signature_and_body_are_captured() {
        let f = items(
            "impl E {\n    pub fn status(&mut self) -> RpcResponse<u64> {\n        \
             self.respond(RequestKind::Status)\n    }\n}\n",
        );
        let m = &f.impls[0].methods[0];
        assert_eq!(m.name, "status");
        assert!(m.signature.contains("RpcResponse"));
        assert!(m.body.contains("RequestKind"));
    }
}
