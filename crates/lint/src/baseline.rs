//! The grandfathering baselines (ratchets).
//!
//! The workspace predates the P1 rule by five PRs and the D4 rule by six,
//! so the existing `unwrap()`/`expect()`/`panic!` sites — and the existing
//! `f32`/`f64` sites in simulated code — are recorded per file and allowed;
//! only *new* sites (a file's count rising above its baseline) fail the
//! lint. Counts that *fall below* the baseline — or files that disappear —
//! are flagged as stale so the file is regenerated (`xcc-lint --baseline`)
//! and each ratchet only ever tightens. Both files share the same
//! `<count> <path>` line format.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Workspace-relative location of the checked-in P1 baseline file.
pub const BASELINE_REL: &str = "crates/lint/panic-baseline.txt";

/// Workspace-relative location of the checked-in D4 baseline file.
pub const FLOAT_BASELINE_REL: &str = "crates/lint/float-baseline.txt";

/// Parses baseline text into `path -> allowed count`, ignoring blank lines
/// and `#` comments. Lines are `<count> <path>`.
pub fn parse(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut out = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (count, path) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("baseline line {}: expected `<count> <path>`", idx + 1))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count {count:?}", idx + 1))?;
        out.insert(path.trim().to_string(), count);
    }
    Ok(out)
}

/// Renders per-file counts as baseline text, sorted by path.
pub fn render(counts: &BTreeMap<String, usize>) -> String {
    render_titled(
        "# xcc-lint panic-in-library baseline: grandfathered unwrap()/expect()/panic! sites\n\
         # per non-test library file. Regenerate with: cargo run -p xcc-lint -- --baseline\n",
        counts,
    )
}

/// Renders the D4 float baseline, sorted by path.
pub fn render_float(counts: &BTreeMap<String, usize>) -> String {
    render_titled(
        "# xcc-lint float-determinism baseline: grandfathered f32/f64 sites per non-test\n\
         # sim/chain/tendermint/relayer file. Regenerate with: cargo run -p xcc-lint -- --baseline\n",
        counts,
    )
}

fn render_titled(header: &str, counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(header);
    for (path, count) in counts {
        if *count > 0 {
            let _ = writeln!(out, "{count} {path}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut counts = BTreeMap::new();
        counts.insert("crates/a/src/lib.rs".to_string(), 3);
        counts.insert("crates/b/src/x.rs".to_string(), 11);
        counts.insert("crates/zero/src/clean.rs".to_string(), 0);
        let text = render(&counts);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.get("crates/a/src/lib.rs"), Some(&3));
        assert_eq!(parsed.get("crates/b/src/x.rs"), Some(&11));
        // Zero-count entries are not written.
        assert!(!parsed.contains_key("crates/zero/src/clean.rs"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("nonsense").is_err());
        assert!(parse("x crates/a.rs").is_err());
        assert!(parse("# comment\n\n2 crates/a.rs\n").is_ok());
    }
}
