//! The rule set.
//!
//! | Id | Rule | Contract it guards |
//! |----|------|--------------------|
//! | D1 | `hash-collections` | no `HashMap`/`HashSet` — iteration order would break schedule equivalence |
//! | D2 | `wall-clock` | no `std::time::{SystemTime, Instant}` — all time is `xcc_sim::SimTime` |
//! | D3 | `ambient-entropy` | no `thread_rng`/OS-seeded RNG — seeds derive from `ExperimentSpec` |
//! | C1 | `uncosted-rpc` | every `RpcEndpoint` RPC method names a `RequestKind`, and every kind has an explicit costing arm |
//! | P1 | `panic-in-library` | no new `unwrap()`/`expect()`/`panic!` in non-test library code beyond the baseline |
//! | R1 | `registry-docs` | scenario ↔ bench-target ↔ README/PAPER-row consistency |
//!
//! D-rules accept per-site suppressions: `// xcc-lint: allow(<rule>,
//! reason = "...")` on the offending line or the line above. The reason is
//! mandatory, and suppressions that stop matching anything are themselves
//! findings, so the escape hatch cannot rot.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::baseline;
use crate::lexer::{word_occurrences, Scrubbed};
use crate::report::Finding;

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// D1: no `HashMap`/`HashSet` without a justified suppression.
    HashCollections,
    /// D2: no `SystemTime`/`Instant`.
    WallClock,
    /// D3: no ambient entropy sources.
    AmbientEntropy,
    /// C1: every RPC method cross-checked against `RequestKind` costing.
    UncostedRpc,
    /// P1: panic sites in library code ratcheted by the baseline.
    PanicInLibrary,
    /// R1: scenario registry ↔ bench targets ↔ scenario docs.
    RegistryDocs,
    /// Meta-rule: `xcc-lint: allow(...)` comments must be well-formed,
    /// carry a reason, name a known rule and still match a finding.
    Suppression,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 7] = [
        RuleId::HashCollections,
        RuleId::WallClock,
        RuleId::AmbientEntropy,
        RuleId::UncostedRpc,
        RuleId::PanicInLibrary,
        RuleId::RegistryDocs,
        RuleId::Suppression,
    ];

    /// The rule's kebab-case name (as used by `--rule` and suppressions).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::HashCollections => "hash-collections",
            RuleId::WallClock => "wall-clock",
            RuleId::AmbientEntropy => "ambient-entropy",
            RuleId::UncostedRpc => "uncosted-rpc",
            RuleId::PanicInLibrary => "panic-in-library",
            RuleId::RegistryDocs => "registry-docs",
            RuleId::Suppression => "suppression",
        }
    }

    /// The rule's short catalogue code (`D1`…`R1`).
    pub fn code(self) -> &'static str {
        match self {
            RuleId::HashCollections => "D1",
            RuleId::WallClock => "D2",
            RuleId::AmbientEntropy => "D3",
            RuleId::UncostedRpc => "C1",
            RuleId::PanicInLibrary => "P1",
            RuleId::RegistryDocs => "R1",
            RuleId::Suppression => "S0",
        }
    }

    /// Parses a rule name (accepts the catalogue code too).
    pub fn parse(name: &str) -> Option<RuleId> {
        RuleId::ALL
            .into_iter()
            .find(|r| r.name() == name || r.code().eq_ignore_ascii_case(name))
    }
}

/// What to lint and which rules to run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (the directory holding `Cargo.toml` and `crates/`).
    pub root: PathBuf,
    /// The rules to run.
    pub rules: Vec<RuleId>,
}

impl Config {
    /// All rules over `root`.
    pub fn all_rules(root: impl Into<PathBuf>) -> Config {
        Config {
            root: root.into(),
            rules: RuleId::ALL.to_vec(),
        }
    }

    fn enabled(&self, rule: RuleId) -> bool {
        self.rules.contains(&rule)
    }
}

/// The result of a lint run.
#[derive(Debug)]
pub struct Outcome {
    /// Findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of Rust files scanned.
    pub files_scanned: usize,
}

/// One scanned Rust source file.
struct SourceFile {
    rel: String,
    scrub: Scrubbed,
}

/// Runs the configured rules over the workspace.
pub fn run(config: &Config) -> io::Result<Outcome> {
    let files = scan_workspace(&config.root)?;
    let mut findings = Vec::new();

    if config.enabled(RuleId::HashCollections) {
        word_ban(
            &files,
            RuleId::HashCollections,
            &["HashMap", "HashSet"],
            "unordered hash collection; iterating one breaks schedule equivalence — use \
             BTreeMap/BTreeSet/Vec, or suppress with a reason if provably never iterated",
            &mut findings,
        );
    }
    if config.enabled(RuleId::WallClock) {
        word_ban(
            &files,
            RuleId::WallClock,
            &["SystemTime", "Instant"],
            "wall-clock time source; simulated code must use xcc_sim::SimTime only",
            &mut findings,
        );
    }
    if config.enabled(RuleId::AmbientEntropy) {
        word_ban(
            &files,
            RuleId::AmbientEntropy,
            &["thread_rng", "OsRng", "from_entropy", "getrandom"],
            "ambient entropy source; all randomness must derive from the ExperimentSpec seed \
             via xcc_sim::DetRng",
            &mut findings,
        );
    }
    if config.enabled(RuleId::UncostedRpc) {
        uncosted_rpc(&files, &mut findings);
    }
    if config.enabled(RuleId::PanicInLibrary) {
        panic_in_library(&config.root, &files, &mut findings);
    }
    if config.enabled(RuleId::RegistryDocs) {
        registry_docs(&config.root, &files, &mut findings);
    }
    if config.enabled(RuleId::Suppression) {
        suppression_hygiene(config, &files, &mut findings);
    }

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(Outcome {
        findings,
        files_scanned: files.len(),
    })
}

/// Recomputes the P1 per-file counts for `--baseline` regeneration.
pub fn current_panic_counts(root: &Path) -> io::Result<BTreeMap<String, usize>> {
    let files = scan_workspace(root)?;
    Ok(files
        .iter()
        .filter(|f| in_panic_scope(&f.rel))
        .map(|f| (f.rel.clone(), panic_sites(&f.scrub).len()))
        .filter(|(_, count)| *count > 0)
        .collect())
}

// ---------------------------------------------------------------------------
// File discovery
// ---------------------------------------------------------------------------

/// Collects the Rust files the rules walk: `crates/*/src` (recursively),
/// `crates/bench/benches`, and the umbrella `src/`, `tests/`, `examples/`.
/// `vendor/` and `target/` are never scanned.
fn scan_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let dir = entry?.path();
            collect_rs(&dir.join("src"), &mut paths)?;
            collect_rs(&dir.join("benches"), &mut paths)?;
        }
    }
    for top in ["src", "tests", "examples"] {
        collect_rs(&root.join(top), &mut paths)?;
    }
    paths.sort();

    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = fs::read_to_string(&path)?;
        files.push(SourceFile {
            rel,
            scrub: Scrubbed::scan(&source),
        });
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// D1 / D2 / D3: banned-word rules
// ---------------------------------------------------------------------------

fn word_ban(
    files: &[SourceFile],
    rule: RuleId,
    words: &[&str],
    why: &str,
    findings: &mut Vec<Finding>,
) {
    for file in files {
        for word in words {
            for (line, _col) in word_occurrences(&file.scrub.code, word) {
                if let Some(supp) = file.scrub.suppression_for(rule.name(), line) {
                    supp.used.set(true);
                    continue;
                }
                findings.push(Finding {
                    rule: rule.name(),
                    path: file.rel.clone(),
                    line,
                    message: format!("`{word}`: {why}"),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// C1: uncosted-rpc
// ---------------------------------------------------------------------------

const COST_RS: &str = "crates/rpc/src/cost.rs";
const ENDPOINT_RS: &str = "crates/rpc/src/endpoint.rs";

fn uncosted_rpc(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let cost = files.iter().find(|f| f.rel == COST_RS);
    let endpoint = files.iter().find(|f| f.rel == ENDPOINT_RS);
    let (Some(cost), Some(endpoint)) = (cost, endpoint) else {
        // Not an rpc-bearing tree (e.g. a fixture workspace for another
        // rule); flag a half-present pair, otherwise stay silent.
        if let Some(present) = cost.or(endpoint) {
            findings.push(Finding {
                rule: RuleId::UncostedRpc.name(),
                path: present.rel.clone(),
                line: 0,
                message: format!(
                    "found {} without its counterpart ({COST_RS} + {ENDPOINT_RS} must move \
                     together for the costing cross-check)",
                    present.rel
                ),
            });
        }
        return;
    };

    let cost_flat = Flat::new(&cost.scrub.code);
    let endpoint_flat = Flat::new(&endpoint.scrub.code);

    // 1. The RequestKind variants declared in cost.rs.
    let variants = enum_variants(&cost_flat, "RequestKind");
    if variants.is_empty() {
        findings.push(Finding {
            rule: RuleId::UncostedRpc.name(),
            path: cost.rel.clone(),
            line: 0,
            message: "could not find `enum RequestKind` (did the costing enum move?)".into(),
        });
        return;
    }

    // 2. The variants service_time prices explicitly, and whether a
    //    wildcard arm hides unpriced ones.
    let Some((body_start, body)) = fn_body(&cost_flat, "service_time") else {
        findings.push(Finding {
            rule: RuleId::UncostedRpc.name(),
            path: cost.rel.clone(),
            line: 0,
            message: "could not find `fn service_time` in the cost model".into(),
        });
        return;
    };
    let priced: BTreeSet<String> = path_refs(body, "RequestKind")
        .into_iter()
        .map(|(_, name)| name)
        .collect();
    if let Some(pos) = wildcard_arm(body) {
        findings.push(Finding {
            rule: RuleId::UncostedRpc.name(),
            path: cost.rel.clone(),
            line: cost_flat.line_of(body_start + pos),
            message: "wildcard `_ =>` arm in service_time defeats the costing cross-check; \
                      price every RequestKind variant explicitly"
                .into(),
        });
    }
    for (variant, line) in &variants {
        if !priced.contains(variant) {
            findings.push(Finding {
                rule: RuleId::UncostedRpc.name(),
                path: cost.rel.clone(),
                line: *line,
                message: format!(
                    "RequestKind::{variant} has no explicit costing arm in \
                     RpcCostModel::service_time — a request of this kind would ship free"
                ),
            });
        }
    }

    // 3. Every variant must be exercised by some endpoint method…
    let used: BTreeSet<String> = path_refs(&endpoint_flat.text, "RequestKind")
        .into_iter()
        .map(|(_, name)| name)
        .collect();
    for (variant, line) in &variants {
        if !used.contains(variant) {
            findings.push(Finding {
                rule: RuleId::UncostedRpc.name(),
                path: cost.rel.clone(),
                line: *line,
                message: format!(
                    "RequestKind::{variant} is priced but never issued by any RpcEndpoint \
                     method — dead costing arm"
                ),
            });
        }
    }

    // 4. …and every public RPC method must name the kind it is billed as.
    for method in public_fns(&endpoint_flat) {
        if endpoint.scrub.is_test_line(method.line) {
            continue;
        }
        if !method.signature.contains("RpcResponse") {
            continue;
        }
        if !method.body.contains("RequestKind") {
            findings.push(Finding {
                rule: RuleId::UncostedRpc.name(),
                path: endpoint.rel.clone(),
                line: method.line,
                message: format!(
                    "pub fn {} returns an RpcResponse but names no RequestKind — every RPC \
                     call must pass a RequestProfile so it pays a costing arm",
                    method.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// P1: panic-in-library
// ---------------------------------------------------------------------------

/// P1 covers non-test library code: crate sources outside `src/bin/` (bench
/// drivers, the umbrella tests/ and examples/ trees are exempt).
fn in_panic_scope(rel: &str) -> bool {
    rel.starts_with("crates/") && rel.contains("/src/") && !rel.contains("/src/bin/")
}

/// Unsuppressed, non-test `unwrap()` / `expect()` / `panic!` lines.
fn panic_sites(scrub: &Scrubbed) -> Vec<usize> {
    let mut lines = Vec::new();
    for (word, tail) in [("unwrap", "("), ("expect", "("), ("panic", "!")] {
        for (line, col) in word_occurrences(&scrub.code, word) {
            let code_line = &scrub.code[line - 1];
            if !code_line[col + word.len()..].starts_with(tail) {
                continue;
            }
            if scrub.is_test_line(line) {
                continue;
            }
            if let Some(supp) = scrub.suppression_for(RuleId::PanicInLibrary.name(), line) {
                supp.used.set(true);
                continue;
            }
            lines.push(line);
        }
    }
    lines.sort_unstable();
    lines
}

fn panic_in_library(root: &Path, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let baseline_path = root.join(baseline::BASELINE_REL);
    let allowed = match fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(map) => map,
            Err(err) => {
                findings.push(Finding {
                    rule: RuleId::PanicInLibrary.name(),
                    path: baseline::BASELINE_REL.into(),
                    line: 0,
                    message: format!("unreadable baseline: {err}"),
                });
                return;
            }
        },
        // No baseline checked in: everything counts as new.
        Err(_) => BTreeMap::new(),
    };

    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for file in files.iter().filter(|f| in_panic_scope(&f.rel)) {
        seen.insert(&file.rel);
        let sites = panic_sites(&file.scrub);
        let budget = allowed.get(&file.rel).copied().unwrap_or(0);
        if sites.len() > budget {
            findings.push(Finding {
                rule: RuleId::PanicInLibrary.name(),
                path: file.rel.clone(),
                line: sites.last().copied().unwrap_or(0),
                message: format!(
                    "{} panic site(s) (unwrap/expect/panic!) but the baseline allows {budget}: \
                     return an error, annotate the new site with `// xcc-lint: \
                     allow(panic-in-library, reason = \"...\")`, or regenerate with --baseline",
                    sites.len()
                ),
            });
        } else if sites.len() < budget {
            findings.push(Finding {
                rule: RuleId::PanicInLibrary.name(),
                path: file.rel.clone(),
                line: 0,
                message: format!(
                    "stale baseline: allows {budget} panic site(s) but only {} remain — \
                     regenerate with --baseline so the ratchet tightens",
                    sites.len()
                ),
            });
        }
    }
    for (path, budget) in &allowed {
        if !seen.contains(path.as_str()) {
            findings.push(Finding {
                rule: RuleId::PanicInLibrary.name(),
                path: baseline::BASELINE_REL.into(),
                line: 0,
                message: format!(
                    "stale baseline: lists {path} ({budget} site(s)) but the file no longer \
                     exists — regenerate with --baseline"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// R1: registry-docs
// ---------------------------------------------------------------------------

const REGISTRY_RS: &str = "crates/core/src/registry.rs";
const BENCH_MANIFEST: &str = "crates/bench/Cargo.toml";
const DOC_FILES: [&str; 2] = ["README.md", "PAPER.md"];

fn registry_docs(root: &Path, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let Some(registry) = files.iter().find(|f| f.rel == REGISTRY_RS) else {
        return; // not a registry-bearing tree (fixture workspaces)
    };
    let r1 = RuleId::RegistryDocs.name();

    // Scenario names: `name: "<lit>"` struct fields in the registry source.
    let mut scenarios: BTreeMap<String, usize> = BTreeMap::new();
    for lit in &registry.scrub.strings {
        let code_line = &registry.scrub.code[lit.line - 1];
        let before = code_line[..lit.col].trim_end();
        let field = before.strip_suffix(':').map(str::trim_end);
        if field.is_some_and(|f| f.ends_with("name") && !f.ends_with("_name")) {
            scenarios.entry(lit.value.clone()).or_insert(lit.line);
        }
    }
    if scenarios.is_empty() {
        findings.push(Finding {
            rule: r1,
            path: registry.rel.clone(),
            line: 0,
            message: "no `name: \"...\"` scenario entries found — did the registry move?".into(),
        });
        return;
    }

    // Bench targets from the manifest, and the scenario names each
    // bench source actually references.
    let manifest = fs::read_to_string(root.join(BENCH_MANIFEST)).unwrap_or_default();
    let bench_targets = manifest_targets(&manifest, "bench");
    let bench_files: Vec<&SourceFile> = files
        .iter()
        .filter(|f| f.rel.starts_with("crates/bench/benches/"))
        .collect();

    let mut covered: BTreeSet<&str> = BTreeSet::new();
    for bench in &bench_files {
        let stem = bench
            .rel
            .trim_start_matches("crates/bench/benches/")
            .trim_end_matches(".rs");
        if !bench_targets.iter().any(|(name, _)| name == stem) {
            findings.push(Finding {
                rule: r1,
                path: bench.rel.clone(),
                line: 0,
                message: format!(
                    "bench source has no matching [[bench]] target `{stem}` in {BENCH_MANIFEST}"
                ),
            });
        }
        let mut refs = 0;
        for lit in &bench.scrub.strings {
            if let Some(name) = scenarios.keys().find(|n| n.as_str() == lit.value) {
                covered.insert(name);
                refs += 1;
            }
        }
        if refs == 0 {
            findings.push(Finding {
                rule: r1,
                path: bench.rel.clone(),
                line: 0,
                message: "bench target runs no registered scenario (no string literal matches \
                          a registry name)"
                    .into(),
            });
        }
    }
    for (target, line) in &bench_targets {
        let src = format!("crates/bench/benches/{target}.rs");
        if !bench_files.iter().any(|f| f.rel == src) {
            findings.push(Finding {
                rule: r1,
                path: BENCH_MANIFEST.into(),
                line: *line,
                message: format!("[[bench]] target `{target}` has no source file at {src}"),
            });
        }
    }
    for (name, line) in &scenarios {
        if !covered.contains(name.as_str()) {
            findings.push(Finding {
                rule: r1,
                path: registry.rel.clone(),
                line: *line,
                message: format!(
                    "scenario `{name}` has no bench target under crates/bench/benches/ \
                     referencing it"
                ),
            });
        }
    }

    // Doc rows: every documented scenario is registered, every registered
    // scenario is documented.
    let mut doc_text = String::new();
    for doc in DOC_FILES {
        let text = fs::read_to_string(root.join(doc)).unwrap_or_default();
        for (idx, row_name) in doc_row_names(&text) {
            if !scenarios.contains_key(&row_name) {
                findings.push(Finding {
                    rule: r1,
                    path: doc.into(),
                    line: idx,
                    message: format!(
                        "table row names scenario `{row_name}` but the registry does not \
                         know it"
                    ),
                });
            }
        }
        doc_text.push_str(&text);
    }
    for (name, line) in &scenarios {
        if !doc_text.contains(&format!("`{name}`")) {
            findings.push(Finding {
                rule: r1,
                path: registry.rel.clone(),
                line: *line,
                message: format!("scenario `{name}` is not documented in README.md or PAPER.md"),
            });
        }
    }
}

/// `[[kind]]` target names (with their line numbers) from a Cargo manifest.
fn manifest_targets(manifest: &str, kind: &str) -> Vec<(String, usize)> {
    let header = format!("[[{kind}]]");
    let mut out = Vec::new();
    let mut in_section = false;
    for (idx, line) in manifest.lines().enumerate() {
        let line = line.trim();
        if line.starts_with('[') {
            in_section = line == header;
            continue;
        }
        if in_section {
            if let Some(value) = line.strip_prefix("name") {
                let name = value.trim_start().trim_start_matches('=').trim();
                let name = name.trim_matches('"');
                if !name.is_empty() {
                    out.push((name.to_string(), idx + 1));
                }
            }
        }
    }
    out
}

/// Markdown table rows whose first column is a single backticked
/// `[a-z0-9_]+` name, as `(line, name)`.
fn doc_row_names(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let Some(rest) = line.trim_start().strip_prefix('|') else {
            continue;
        };
        let Some(cell) = rest.split('|').next() else {
            continue;
        };
        let cell = cell.trim();
        let Some(name) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) else {
            continue;
        };
        if !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            out.push((idx + 1, name.to_string()));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// S0: suppression hygiene
// ---------------------------------------------------------------------------

fn suppression_hygiene(config: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let s0 = RuleId::Suppression.name();
    for file in files {
        for supp in &file.scrub.suppressions {
            if supp.malformed {
                findings.push(Finding {
                    rule: s0,
                    path: file.rel.clone(),
                    line: supp.line,
                    message: format!(
                        "malformed xcc-lint comment ({}); expected `xcc-lint: allow(rule, \
                         reason = \"...\")`",
                        supp.rule
                    ),
                });
                continue;
            }
            let Some(rule) = RuleId::parse(&supp.rule) else {
                findings.push(Finding {
                    rule: s0,
                    path: file.rel.clone(),
                    line: supp.line,
                    message: format!("suppression names unknown rule `{}`", supp.rule),
                });
                continue;
            };
            if supp.reason.is_none() {
                findings.push(Finding {
                    rule: s0,
                    path: file.rel.clone(),
                    line: supp.line,
                    message: format!(
                        "suppression of `{}` without a reason — the reason is mandatory: \
                         allow({}, reason = \"...\")",
                        supp.rule, supp.rule
                    ),
                });
            }
            // Only judge usefulness when the suppressed rule actually ran.
            if config.enabled(rule) && !supp.used.get() {
                findings.push(Finding {
                    rule: s0,
                    path: file.rel.clone(),
                    line: supp.line,
                    message: format!(
                        "unused suppression: no `{}` finding on this or the next line — \
                         delete it",
                        supp.rule
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Flattened-code helpers for the structural rules
// ---------------------------------------------------------------------------

/// Scrubbed code joined into one string with line-start offsets, so byte
/// positions map back to 1-based lines.
struct Flat {
    text: String,
    starts: Vec<usize>,
}

impl Flat {
    fn new(code: &[String]) -> Flat {
        let mut text = String::new();
        let mut starts = Vec::with_capacity(code.len());
        for line in code {
            starts.push(text.len());
            text.push_str(line);
            text.push('\n');
        }
        Flat { text, starts }
    }

    fn line_of(&self, pos: usize) -> usize {
        match self.starts.binary_search(&pos) {
            Ok(idx) => idx + 1,
            Err(idx) => idx,
        }
    }
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whole-word occurrences of `word` in `text` (byte positions).
fn word_positions(text: &str, word: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(word) {
        let at = from + pos;
        let end = at + word.len();
        let before_ok = at == 0 || !is_word_byte(bytes[at - 1]);
        let after_ok = end >= bytes.len() || !is_word_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = end;
    }
    out
}

/// The next identifier at or after `from`, with its start position.
fn next_word(text: &str, from: usize) -> Option<(String, usize)> {
    let bytes = text.as_bytes();
    let mut i = from;
    while i < bytes.len() && !is_word_byte(bytes[i]) {
        i += 1;
    }
    let start = i;
    while i < bytes.len() && is_word_byte(bytes[i]) {
        i += 1;
    }
    (i > start).then(|| (text[start..i].to_string(), start))
}

/// The previous identifier strictly before `pos`.
fn prev_word(text: &str, pos: usize) -> Option<String> {
    let bytes = text.as_bytes();
    let mut end = pos;
    while end > 0 && !is_word_byte(bytes[end - 1]) {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_word_byte(bytes[start - 1]) {
        start -= 1;
    }
    (end > start).then(|| text[start..end].to_string())
}

/// Byte position just past the matching `}` for the `{` at `open`.
fn matching_brace(text: &str, open: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    for (off, &b) in bytes[open..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Variant names (with lines) of `enum <name> { ... }` in flattened code.
/// Identifiers nested inside `()`/`[]`/`{}` within the body (payloads,
/// attribute arguments) are ignored.
fn enum_variants(flat: &Flat, name: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for pos in word_positions(&flat.text, "enum") {
        let Some((word, word_pos)) = next_word(&flat.text, pos + 4) else {
            continue;
        };
        if word != name {
            continue;
        }
        let Some(open) = flat.text[word_pos..].find('{').map(|n| word_pos + n) else {
            continue;
        };
        let Some(end) = matching_brace(&flat.text, open) else {
            continue;
        };
        let body = &flat.text[open + 1..end - 1];
        let bytes = body.as_bytes();
        let mut depth = 0usize;
        let mut i = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'(' | b'[' | b'{' => {
                    depth += 1;
                    i += 1;
                }
                b')' | b']' | b'}' => {
                    depth = depth.saturating_sub(1);
                    i += 1;
                }
                b if depth == 0 && is_word_byte(b) => {
                    let start = i;
                    while i < bytes.len() && is_word_byte(bytes[i]) {
                        i += 1;
                    }
                    let ident = &body[start..i];
                    out.push((ident.to_string(), flat.line_of(open + 1 + start)));
                }
                _ => i += 1,
            }
        }
        break;
    }
    out
}

/// The body of `fn <name>` (position of `{` + the text inside it).
fn fn_body<'a>(flat: &'a Flat, name: &str) -> Option<(usize, &'a str)> {
    for pos in word_positions(&flat.text, name) {
        if prev_word(&flat.text, pos).as_deref() != Some("fn") {
            continue;
        }
        let open = flat.text[pos..].find('{').map(|n| pos + n)?;
        let end = matching_brace(&flat.text, open)?;
        return Some((open, &flat.text[open..end]));
    }
    None
}

/// `Prefix::Ident` references in `text`, as (position, ident).
fn path_refs(text: &str, prefix: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for pos in word_positions(text, prefix) {
        let after = &text[pos + prefix.len()..];
        let trimmed = after.trim_start();
        if let Some(path_rest) = trimmed.strip_prefix("::") {
            if let Some((ident, _)) = next_word(path_rest, 0) {
                out.push((pos, ident));
            }
        }
    }
    out
}

/// Position of a `_ =>` wildcard match arm in `text`, if any.
fn wildcard_arm(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    for pos in word_positions(text, "_") {
        let mut j = pos + 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if text[j..].starts_with("=>") {
            return Some(pos);
        }
    }
    None
}

/// A `pub fn` found in flattened code.
struct PublicFn {
    name: String,
    line: usize,
    signature: String,
    body: String,
}

/// Every `pub fn` with a braced body (methods included).
fn public_fns(flat: &Flat) -> Vec<PublicFn> {
    let mut out = Vec::new();
    for pos in word_positions(&flat.text, "fn") {
        if prev_word(&flat.text, pos).as_deref() != Some("pub") {
            continue;
        }
        let Some((name, name_pos)) = next_word(&flat.text, pos + 2) else {
            continue;
        };
        let sig_end = flat.text[name_pos..]
            .find(['{', ';'])
            .map(|n| name_pos + n)
            .unwrap_or(flat.text.len());
        if !flat.text[sig_end..].starts_with('{') {
            continue;
        }
        let Some(end) = matching_brace(&flat.text, sig_end) else {
            continue;
        };
        out.push(PublicFn {
            name,
            line: flat.line_of(pos),
            signature: flat.text[name_pos..sig_end].to_string(),
            body: flat.text[sig_end..end].to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(src: &str) -> Flat {
        Flat::new(&Scrubbed::scan(src).code)
    }

    #[test]
    fn enum_variants_skip_payloads_and_attrs() {
        let f = flat(
            "pub enum RequestKind {\n    /// doc\n    Alpha,\n    #[cfg(feature = \"x\")]\n    \
             Beta(usize),\n    Gamma { inner: u8 },\n}\n",
        );
        let names: Vec<String> = enum_variants(&f, "RequestKind")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, ["Alpha", "Beta", "Gamma"]);
    }

    #[test]
    fn fn_body_and_path_refs() {
        let f = flat(
            "impl M {\n    pub fn service_time(&self) -> u64 {\n        match k {\n            \
             RequestKind::Alpha => 1,\n            _ => 0,\n        }\n    }\n}\n",
        );
        let (_, body) = fn_body(&f, "service_time").unwrap();
        let refs: Vec<String> = path_refs(body, "RequestKind")
            .into_iter()
            .map(|(_, n)| n)
            .collect();
        assert_eq!(refs, ["Alpha"]);
        assert!(wildcard_arm(body).is_some());
    }

    #[test]
    fn public_fns_capture_signature_and_body() {
        let f = flat(
            "impl E {\n    pub fn status(&mut self) -> RpcResponse<u64> {\n        \
             self.respond(RequestKind::Status)\n    }\n    fn private_helper(&self) {}\n}\n",
        );
        let fns = public_fns(&f);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "status");
        assert!(fns[0].signature.contains("RpcResponse"));
        assert!(fns[0].body.contains("RequestKind"));
    }

    #[test]
    fn manifest_targets_and_doc_rows() {
        let manifest = "[package]\nname = \"xcc-bench\"\n\n[[bench]]\nname = \"fig6\"\n\
                        harness = false\n\n[[bin]]\nname = \"figure\"\n";
        assert_eq!(
            manifest_targets(manifest, "bench"),
            vec![("fig6".into(), 5)]
        );
        assert_eq!(
            manifest_targets(manifest, "bin"),
            vec![("figure".into(), 9)]
        );

        let md = "| Scenario | What |\n|---|---|\n| `fig6` | throughput |\n| plain | no |\n";
        assert_eq!(doc_row_names(md), vec![(3, "fig6".into())]);
    }

    #[test]
    fn wildcard_arm_ignores_underscore_bindings() {
        assert!(wildcard_arm("let _x = 1; match y { _ => 2 }").is_some());
        assert!(wildcard_arm("let _ignored = 1; f(_a);").is_none());
    }
}
