//! The rule set.
//!
//! | Id | Rule | Contract it guards |
//! |----|------|--------------------|
//! | D1 | `hash-collections` | no `HashMap`/`HashSet` — iteration order would break schedule equivalence |
//! | D2 | `wall-clock` | no `std::time::{SystemTime, Instant}` — all time is `xcc_sim::SimTime` |
//! | D3 | `ambient-entropy` | no `thread_rng`/OS-seeded RNG — seeds derive from `ExperimentSpec` |
//! | D4 | `float-determinism` | `f32`/`f64` in sim/chain/tendermint/relayer code is annotated or baselined |
//! | C1 | `uncosted-rpc` | every `RpcEndpoint` RPC method names a `RequestKind`, and every kind has an explicit costing arm |
//! | C2 | `lane-bypass` | outside `crates/rpc`, no direct `RpcResponse` construction or cost-table access |
//! | S1 | `serde-field-coverage` | hand-written `Serialize`/`Deserialize` impls name every struct field, and no stale keys |
//! | K1 | `dead-knob` | every pub config field / `SweepGrid` axis is read outside its defining file |
//! | P1 | `panic-in-library` | no new `unwrap()`/`expect()`/`panic!` in non-test library code beyond the baseline |
//! | R1 | `registry-docs` | scenario ↔ bench-target ↔ README/PAPER-row consistency |
//!
//! D-rules accept per-site suppressions: `// xcc-lint: allow(<rule>,
//! reason = "...")` on the offending line or the line above. The reason is
//! mandatory, and suppressions that stop matching anything are themselves
//! findings, so the escape hatch cannot rot.
//!
//! The token-level rules (D1–D3, D4, C2, P1) work straight off the scrubbed
//! lines; the structural rules (C1, S1, K1) consume the
//! [workspace item graph](crate::items) so they survive reformatting and
//! follow items when they move.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::baseline;
use crate::items::{self, FileItems, Flat};
use crate::lexer::{word_occurrences, Scrubbed};
use crate::report::Finding;

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// D1: no `HashMap`/`HashSet` without a justified suppression.
    HashCollections,
    /// D2: no `SystemTime`/`Instant`.
    WallClock,
    /// D3: no ambient entropy sources.
    AmbientEntropy,
    /// D4: `f32`/`f64` in simulated code ratcheted by the float baseline.
    FloatDeterminism,
    /// C1: every RPC method cross-checked against `RequestKind` costing.
    UncostedRpc,
    /// C2: no `RpcResponse` construction or cost-table access outside `crates/rpc`.
    LaneBypass,
    /// S1: hand-written serde impls cover every field, with no stale keys.
    SerdeFieldCoverage,
    /// K1: pub config knobs and sweep axes must be read somewhere.
    DeadKnob,
    /// P1: panic sites in library code ratcheted by the baseline.
    PanicInLibrary,
    /// R1: scenario registry ↔ bench targets ↔ scenario docs.
    RegistryDocs,
    /// Meta-rule: `xcc-lint: allow(...)` comments must be well-formed,
    /// carry a reason, name a known rule and still match a finding.
    Suppression,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 11] = [
        RuleId::HashCollections,
        RuleId::WallClock,
        RuleId::AmbientEntropy,
        RuleId::FloatDeterminism,
        RuleId::UncostedRpc,
        RuleId::LaneBypass,
        RuleId::SerdeFieldCoverage,
        RuleId::DeadKnob,
        RuleId::PanicInLibrary,
        RuleId::RegistryDocs,
        RuleId::Suppression,
    ];

    /// The rule's kebab-case name (as used by `--rule` and suppressions).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::HashCollections => "hash-collections",
            RuleId::WallClock => "wall-clock",
            RuleId::AmbientEntropy => "ambient-entropy",
            RuleId::FloatDeterminism => "float-determinism",
            RuleId::UncostedRpc => "uncosted-rpc",
            RuleId::LaneBypass => "lane-bypass",
            RuleId::SerdeFieldCoverage => "serde-field-coverage",
            RuleId::DeadKnob => "dead-knob",
            RuleId::PanicInLibrary => "panic-in-library",
            RuleId::RegistryDocs => "registry-docs",
            RuleId::Suppression => "suppression",
        }
    }

    /// The rule's short catalogue code (`D1`…`R1`).
    pub fn code(self) -> &'static str {
        match self {
            RuleId::HashCollections => "D1",
            RuleId::WallClock => "D2",
            RuleId::AmbientEntropy => "D3",
            RuleId::FloatDeterminism => "D4",
            RuleId::UncostedRpc => "C1",
            RuleId::LaneBypass => "C2",
            RuleId::SerdeFieldCoverage => "S1",
            RuleId::DeadKnob => "K1",
            RuleId::PanicInLibrary => "P1",
            RuleId::RegistryDocs => "R1",
            RuleId::Suppression => "S0",
        }
    }

    /// Parses a rule name (accepts the catalogue code too).
    pub fn parse(name: &str) -> Option<RuleId> {
        RuleId::ALL
            .into_iter()
            .find(|r| r.name() == name || r.code().eq_ignore_ascii_case(name))
    }
}

/// What to lint and which rules to run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (the directory holding `Cargo.toml` and `crates/`).
    pub root: PathBuf,
    /// The rules to run.
    pub rules: Vec<RuleId>,
}

impl Config {
    /// All rules over `root`.
    pub fn all_rules(root: impl Into<PathBuf>) -> Config {
        Config {
            root: root.into(),
            rules: RuleId::ALL.to_vec(),
        }
    }

    fn enabled(&self, rule: RuleId) -> bool {
        self.rules.contains(&rule)
    }
}

/// The result of a lint run.
#[derive(Debug)]
pub struct Outcome {
    /// Findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of Rust files scanned.
    pub files_scanned: usize,
}

/// One scanned Rust source file.
struct SourceFile {
    rel: String,
    scrub: Scrubbed,
    items: FileItems,
}

/// Runs the configured rules over the workspace.
pub fn run(config: &Config) -> io::Result<Outcome> {
    let files = scan_workspace(&config.root)?;
    let mut findings = Vec::new();

    if config.enabled(RuleId::HashCollections) {
        word_ban(
            &files,
            RuleId::HashCollections,
            &["HashMap", "HashSet"],
            "unordered hash collection; iterating one breaks schedule equivalence — use \
             BTreeMap/BTreeSet/Vec, or suppress with a reason if provably never iterated",
            &[],
            &mut findings,
        );
    }
    if config.enabled(RuleId::WallClock) {
        word_ban(
            &files,
            RuleId::WallClock,
            &["SystemTime", "Instant"],
            "wall-clock time source; simulated code must use xcc_sim::SimTime only",
            WALL_CLOCK_EXEMPT,
            &mut findings,
        );
    }
    if config.enabled(RuleId::AmbientEntropy) {
        word_ban(
            &files,
            RuleId::AmbientEntropy,
            &["thread_rng", "OsRng", "from_entropy", "getrandom"],
            "ambient entropy source; all randomness must derive from the ExperimentSpec seed \
             via xcc_sim::DetRng",
            &[],
            &mut findings,
        );
    }
    if config.enabled(RuleId::FloatDeterminism) {
        float_determinism(&config.root, &files, &mut findings);
    }
    if config.enabled(RuleId::UncostedRpc) {
        uncosted_rpc(&files, &mut findings);
    }
    if config.enabled(RuleId::LaneBypass) {
        lane_bypass(&files, &mut findings);
    }
    if config.enabled(RuleId::SerdeFieldCoverage) {
        serde_field_coverage(&files, &mut findings);
    }
    if config.enabled(RuleId::DeadKnob) {
        dead_knob(&files, &mut findings);
    }
    if config.enabled(RuleId::PanicInLibrary) {
        panic_in_library(&config.root, &files, &mut findings);
    }
    if config.enabled(RuleId::RegistryDocs) {
        registry_docs(&config.root, &files, &mut findings);
    }
    if config.enabled(RuleId::Suppression) {
        suppression_hygiene(config, &files, &mut findings);
    }

    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(Outcome {
        findings,
        files_scanned: files.len(),
    })
}

/// Recomputes the P1 per-file counts for `--baseline` regeneration.
pub fn current_panic_counts(root: &Path) -> io::Result<BTreeMap<String, usize>> {
    let files = scan_workspace(root)?;
    Ok(files
        .iter()
        .filter(|f| in_panic_scope(&f.rel))
        .map(|f| (f.rel.clone(), panic_sites(&f.scrub).len()))
        .filter(|(_, count)| *count > 0)
        .collect())
}

/// Recomputes the D4 per-file counts for `--baseline` regeneration.
pub fn current_float_counts(root: &Path) -> io::Result<BTreeMap<String, usize>> {
    let files = scan_workspace(root)?;
    Ok(files
        .iter()
        .filter(|f| in_float_scope(&f.rel))
        .map(|f| (f.rel.clone(), float_sites(&f.scrub).len()))
        .filter(|(_, count)| *count > 0)
        .collect())
}

// ---------------------------------------------------------------------------
// File discovery
// ---------------------------------------------------------------------------

/// Collects the Rust files the rules walk: `crates/*/src` (recursively),
/// `crates/bench/benches`, and the umbrella `src/`, `tests/`, `examples/`.
/// `vendor/` and `target/` are never scanned.
fn scan_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let dir = entry?.path();
            collect_rs(&dir.join("src"), &mut paths)?;
            collect_rs(&dir.join("benches"), &mut paths)?;
        }
    }
    for top in ["src", "tests", "examples"] {
        collect_rs(&root.join(top), &mut paths)?;
    }
    paths.sort();

    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = fs::read_to_string(&path)?;
        let scrub = Scrubbed::scan(&source);
        let items = FileItems::parse(&rel, &scrub);
        files.push(SourceFile { rel, scrub, items });
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// D1 / D2 / D3: banned-word rules
// ---------------------------------------------------------------------------

/// D2's scoped exemption: the bench harness's timing shim is the single file
/// where `Instant` is legal. Wall-clock there measures the *host* replaying
/// fixtures for the human-facing `BENCH_golden.json` numbers and never feeds
/// simulated state; every other wall-clock site — including elsewhere in the
/// bench crate — still needs a per-line suppression or, better, removal.
const WALL_CLOCK_EXEMPT: &[&str] = &["crates/bench/src/timing.rs"];

fn word_ban(
    files: &[SourceFile],
    rule: RuleId,
    words: &[&str],
    why: &str,
    exempt_files: &[&str],
    findings: &mut Vec<Finding>,
) {
    for file in files {
        if exempt_files.contains(&file.rel.as_str()) {
            continue;
        }
        for word in words {
            for (line, col) in word_occurrences(&file.scrub.code, word) {
                if let Some(supp) = file.scrub.suppression_for(rule.name(), line) {
                    supp.used.set(true);
                    continue;
                }
                findings.push(Finding {
                    rule: rule.name(),
                    path: file.rel.clone(),
                    line,
                    col: col + 1,
                    message: format!("`{word}`: {why}"),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// D4: float-determinism
// ---------------------------------------------------------------------------

/// D4 covers the crates whose code feeds simulated state or metrics.
fn in_float_scope(rel: &str) -> bool {
    [
        "crates/sim/src/",
        "crates/chain/src/",
        "crates/tendermint/src/",
        "crates/relayer/src/",
    ]
    .iter()
    .any(|prefix| rel.starts_with(prefix))
}

/// Unsuppressed, non-test `f32`/`f64` token lines.
fn float_sites(scrub: &Scrubbed) -> Vec<usize> {
    let mut lines = Vec::new();
    for word in ["f32", "f64"] {
        for (line, _col) in word_occurrences(&scrub.code, word) {
            if scrub.is_test_line(line) {
                continue;
            }
            if let Some(supp) = scrub.suppression_for(RuleId::FloatDeterminism.name(), line) {
                supp.used.set(true);
                continue;
            }
            lines.push(line);
        }
    }
    lines.sort_unstable();
    lines.dedup();
    lines
}

fn float_determinism(root: &Path, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let d4 = RuleId::FloatDeterminism.name();
    let baseline_path = root.join(baseline::FLOAT_BASELINE_REL);
    let allowed = match fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(map) => map,
            Err(err) => {
                findings.push(Finding {
                    rule: d4,
                    path: baseline::FLOAT_BASELINE_REL.into(),
                    line: 0,
                    col: 0,
                    message: format!("unreadable baseline: {err}"),
                });
                return;
            }
        },
        // No baseline checked in: everything counts as new.
        Err(_) => BTreeMap::new(),
    };

    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for file in files.iter().filter(|f| in_float_scope(&f.rel)) {
        seen.insert(&file.rel);
        let sites = float_sites(&file.scrub);
        let budget = allowed.get(&file.rel).copied().unwrap_or(0);
        if sites.len() > budget {
            findings.push(Finding {
                rule: d4,
                path: file.rel.clone(),
                line: sites.last().copied().unwrap_or(0),
                col: 0,
                message: format!(
                    "{} f32/f64 site(s) but the float baseline allows {budget}: float \
                     arithmetic feeding simulated state is a cross-platform determinism \
                     hazard — use integer micro-units, annotate the site with `// xcc-lint: \
                     allow(float-determinism, reason = \"...\")`, or regenerate with --baseline",
                    sites.len()
                ),
            });
        } else if sites.len() < budget {
            findings.push(Finding {
                rule: d4,
                path: file.rel.clone(),
                line: 0,
                col: 0,
                message: format!(
                    "stale float baseline: allows {budget} f32/f64 site(s) but only {} remain — \
                     regenerate with --baseline so the ratchet tightens",
                    sites.len()
                ),
            });
        }
    }
    for (path, budget) in &allowed {
        if !seen.contains(path.as_str()) {
            findings.push(Finding {
                rule: d4,
                path: baseline::FLOAT_BASELINE_REL.into(),
                line: 0,
                col: 0,
                message: format!(
                    "stale float baseline: lists {path} ({budget} site(s)) but the file no \
                     longer exists — regenerate with --baseline"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// C1: uncosted-rpc
// ---------------------------------------------------------------------------

const COST_RS: &str = "crates/rpc/src/cost.rs";
const ENDPOINT_RS: &str = "crates/rpc/src/endpoint.rs";

fn uncosted_rpc(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let cost = files.iter().find(|f| f.rel == COST_RS);
    let endpoint = files.iter().find(|f| f.rel == ENDPOINT_RS);
    let (Some(cost), Some(endpoint)) = (cost, endpoint) else {
        // Not an rpc-bearing tree (e.g. a fixture workspace for another
        // rule); flag a half-present pair, otherwise stay silent.
        if let Some(present) = cost.or(endpoint) {
            findings.push(Finding {
                rule: RuleId::UncostedRpc.name(),
                path: present.rel.clone(),
                line: 0,
                col: 0,
                message: format!(
                    "found {} without its counterpart ({COST_RS} + {ENDPOINT_RS} must move \
                     together for the costing cross-check)",
                    present.rel
                ),
            });
        }
        return;
    };

    // 1. The RequestKind variants declared in cost.rs.
    let Some(kinds) = cost.items.enum_named("RequestKind") else {
        findings.push(Finding {
            rule: RuleId::UncostedRpc.name(),
            path: cost.rel.clone(),
            line: 0,
            col: 0,
            message: "could not find `enum RequestKind` (did the costing enum move?)".into(),
        });
        return;
    };

    // 2. The variants service_time prices explicitly, and whether a
    //    wildcard arm hides unpriced ones.
    let Some(cost_fn) = cost.items.all_fns().find(|f| f.name == "service_time") else {
        findings.push(Finding {
            rule: RuleId::UncostedRpc.name(),
            path: cost.rel.clone(),
            line: 0,
            col: 0,
            message: "could not find `fn service_time` in the cost model".into(),
        });
        return;
    };
    let priced: BTreeSet<String> = path_refs(&cost_fn.body, "RequestKind")
        .into_iter()
        .map(|(_, name)| name)
        .collect();
    for arm in items::match_arms(&cost_fn.body) {
        if arm.pattern == "_" || arm.pattern.starts_with("_ if") {
            findings.push(Finding {
                rule: RuleId::UncostedRpc.name(),
                path: cost.rel.clone(),
                line: cost_fn.body_line(arm.offset),
                col: 0,
                message: "wildcard `_ =>` arm in service_time defeats the costing cross-check; \
                          price every RequestKind variant explicitly"
                    .into(),
            });
        }
    }
    for variant in &kinds.variants {
        if !priced.contains(&variant.name) {
            findings.push(Finding {
                rule: RuleId::UncostedRpc.name(),
                path: cost.rel.clone(),
                line: variant.line,
                col: 0,
                message: format!(
                    "RequestKind::{} has no explicit costing arm in \
                     RpcCostModel::service_time — a request of this kind would ship free",
                    variant.name
                ),
            });
        }
    }

    // 3. Every variant must be exercised by some endpoint method…
    let endpoint_flat = Flat::new(&endpoint.scrub.code);
    let used: BTreeSet<String> = path_refs(&endpoint_flat.text, "RequestKind")
        .into_iter()
        .map(|(_, name)| name)
        .collect();
    for variant in &kinds.variants {
        if !used.contains(&variant.name) {
            findings.push(Finding {
                rule: RuleId::UncostedRpc.name(),
                path: cost.rel.clone(),
                line: variant.line,
                col: 0,
                message: format!(
                    "RequestKind::{} is priced but never issued by any RpcEndpoint \
                     method — dead costing arm",
                    variant.name
                ),
            });
        }
    }

    // 4. …and every public RPC method must name the kind it is billed as.
    for method in endpoint.items.all_fns() {
        if !method.is_pub || endpoint.scrub.is_test_line(method.line) {
            continue;
        }
        if !method.signature.contains("RpcResponse") {
            continue;
        }
        if !method.body.contains("RequestKind") {
            findings.push(Finding {
                rule: RuleId::UncostedRpc.name(),
                path: endpoint.rel.clone(),
                line: method.line,
                col: 0,
                message: format!(
                    "pub fn {} returns an RpcResponse but names no RequestKind — every RPC \
                     call must pass a RequestProfile so it pays a costing arm",
                    method.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// C2: lane-bypass
// ---------------------------------------------------------------------------

/// C2 covers library code outside the rpc crate itself.
fn in_lane_scope(rel: &str) -> bool {
    rel.starts_with("crates/") && rel.contains("/src/") && !rel.starts_with("crates/rpc/")
}

fn lane_bypass(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let c2 = RuleId::LaneBypass.name();
    for file in files.iter().filter(|f| in_lane_scope(&f.rel)) {
        // Direct response construction: `RpcResponse {` (a struct literal).
        // Type positions (`-> RpcResponse<u64>`) have `<` or `)` after the
        // word and stay silent.
        for (line, col) in word_occurrences(&file.scrub.code, "RpcResponse") {
            let rest = file.scrub.code[line - 1][col + "RpcResponse".len()..].trim_start();
            if !rest.starts_with('{') {
                continue;
            }
            if file.scrub.is_test_line(line) {
                continue;
            }
            if let Some(supp) = file.scrub.suppression_for(c2, line) {
                supp.used.set(true);
                continue;
            }
            findings.push(Finding {
                rule: c2,
                path: file.rel.clone(),
                line,
                col: col + 1,
                message: "direct `RpcResponse { .. }` construction outside crates/rpc — a \
                          hand-built response bypasses lane costing; issue the request through \
                          an RpcEndpoint lane method"
                    .into(),
            });
        }
        // Direct cost-table access: calling service_time outside the lane
        // scheduler re-prices a request without occupying a lane slot.
        for (line, col) in word_occurrences(&file.scrub.code, "service_time") {
            if file.scrub.is_test_line(line) {
                continue;
            }
            if let Some(supp) = file.scrub.suppression_for(c2, line) {
                supp.used.set(true);
                continue;
            }
            findings.push(Finding {
                rule: c2,
                path: file.rel.clone(),
                line,
                col: col + 1,
                message: "direct cost-table access (`service_time`) outside crates/rpc — \
                          request pricing belongs to the lane scheduler; issue the request \
                          through an RpcEndpoint lane method"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// S1: serde-field-coverage
// ---------------------------------------------------------------------------

/// Whether a string literal looks like a field key (`snake_case` ident).
fn is_ident_like(s: &str) -> bool {
    let mut chars = s.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_lowercase() || first == '_')
        && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

fn serde_field_coverage(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let s1 = RuleId::SerdeFieldCoverage.name();
    for (fi, file) in files.iter().enumerate() {
        for imp in &file.items.impls {
            let Some(trait_name) = imp.trait_name.as_deref() else {
                continue;
            };
            if trait_name != "Serialize" && trait_name != "Deserialize" {
                continue;
            }
            if file.scrub.is_test_line(imp.line) {
                continue;
            }
            // Locate the struct being (de)serialized: same file first, then
            // anywhere in the workspace. Enums and remote types have no
            // named fields to cross-check.
            let target =
                file.items
                    .struct_named(&imp.type_name)
                    .map(|s| (fi, s))
                    .or_else(|| {
                        files.iter().enumerate().find_map(|(oi, of)| {
                            of.items.struct_named(&imp.type_name).map(|s| (oi, s))
                        })
                    });
            let Some((si, strukt)) = target else {
                continue;
            };
            if strukt.fields.is_empty() {
                continue;
            }
            let struct_file = &files[si];

            // The field keys the impl names: ident-like string literals
            // within its extent.
            let keys: Vec<_> = file
                .scrub
                .strings
                .iter()
                .filter(|lit| lit.line >= imp.line && lit.line <= imp.end_line)
                .filter(|lit| is_ident_like(&lit.value))
                .collect();

            for field in &strukt.fields {
                if keys.iter().any(|k| k.value == field.name) {
                    continue;
                }
                if let Some(supp) = struct_file.scrub.suppression_for(s1, field.line) {
                    supp.used.set(true);
                    continue;
                }
                findings.push(Finding {
                    rule: s1,
                    path: struct_file.rel.clone(),
                    line: field.line,
                    col: 0,
                    message: format!(
                        "field `{}` of `{}` is never named as a key in the hand-written \
                         `impl {trait_name}` ({}:{}) — the knob would silently drop out of \
                         the JSON round-trip",
                        field.name, imp.type_name, file.rel, imp.line
                    ),
                });
            }
            for key in &keys {
                if strukt.fields.iter().any(|f| f.name == key.value) {
                    continue;
                }
                if let Some(supp) = file.scrub.suppression_for(s1, key.line) {
                    supp.used.set(true);
                    continue;
                }
                findings.push(Finding {
                    rule: s1,
                    path: file.rel.clone(),
                    line: key.line,
                    col: key.col + 1,
                    message: format!(
                        "`impl {trait_name} for {}` names key \"{}\" but the struct has no \
                         such field — stale key",
                        imp.type_name, key.value
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// K1: dead-knob
// ---------------------------------------------------------------------------

/// The config types whose pub fields are experiment knobs.
const KNOB_TYPES: [&str; 3] = ["DeploymentConfig", "RelayerStrategy", "WorkloadConfig"];

fn dead_knob(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let k1 = RuleId::DeadKnob.name();
    let read_outside = |fi: usize, word: &str| {
        files
            .iter()
            .enumerate()
            .any(|(oi, of)| oi != fi && !word_occurrences(&of.scrub.code, word).is_empty())
    };
    for (fi, file) in files.iter().enumerate() {
        for strukt in &file.items.structs {
            if !KNOB_TYPES.contains(&strukt.name.as_str()) {
                continue;
            }
            for field in strukt.fields.iter().filter(|f| f.is_pub) {
                if read_outside(fi, &field.name) {
                    continue;
                }
                if let Some(supp) = file.scrub.suppression_for(k1, field.line) {
                    supp.used.set(true);
                    continue;
                }
                findings.push(Finding {
                    rule: k1,
                    path: file.rel.clone(),
                    line: field.line,
                    col: 0,
                    message: format!(
                        "pub knob `{}.{}` is never read outside its defining file — config \
                         plumbed nowhere silently no-ops in every sweep",
                        strukt.name, field.name
                    ),
                });
            }
        }
        // SweepGrid axis methods: each pub axis must be exercised somewhere
        // (a bench, a test, the env-var front end of another file).
        for imp in &file.items.impls {
            if imp.type_name != "SweepGrid" || imp.trait_name.is_some() {
                continue;
            }
            for method in imp.methods.iter().filter(|m| m.is_pub) {
                if file.scrub.is_test_line(method.line) {
                    continue;
                }
                if read_outside(fi, &method.name) {
                    continue;
                }
                if let Some(supp) = file.scrub.suppression_for(k1, method.line) {
                    supp.used.set(true);
                    continue;
                }
                findings.push(Finding {
                    rule: k1,
                    path: file.rel.clone(),
                    line: method.line,
                    col: 0,
                    message: format!(
                        "SweepGrid axis `{}` is never called outside its defining file — a \
                         sweep axis nothing drives is dead config surface",
                        method.name
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// P1: panic-in-library
// ---------------------------------------------------------------------------

/// P1 covers non-test library code: crate sources outside `src/bin/` (bench
/// drivers, the umbrella tests/ and examples/ trees are exempt).
fn in_panic_scope(rel: &str) -> bool {
    rel.starts_with("crates/") && rel.contains("/src/") && !rel.contains("/src/bin/")
}

/// Unsuppressed, non-test `unwrap()` / `expect()` / `panic!` lines.
fn panic_sites(scrub: &Scrubbed) -> Vec<usize> {
    let mut lines = Vec::new();
    for (word, tail) in [("unwrap", "("), ("expect", "("), ("panic", "!")] {
        for (line, col) in word_occurrences(&scrub.code, word) {
            let code_line = &scrub.code[line - 1];
            if !code_line[col + word.len()..].starts_with(tail) {
                continue;
            }
            if scrub.is_test_line(line) {
                continue;
            }
            if let Some(supp) = scrub.suppression_for(RuleId::PanicInLibrary.name(), line) {
                supp.used.set(true);
                continue;
            }
            lines.push(line);
        }
    }
    lines.sort_unstable();
    lines
}

fn panic_in_library(root: &Path, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let baseline_path = root.join(baseline::BASELINE_REL);
    let allowed = match fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(map) => map,
            Err(err) => {
                findings.push(Finding {
                    rule: RuleId::PanicInLibrary.name(),
                    path: baseline::BASELINE_REL.into(),
                    line: 0,
                    col: 0,
                    message: format!("unreadable baseline: {err}"),
                });
                return;
            }
        },
        // No baseline checked in: everything counts as new.
        Err(_) => BTreeMap::new(),
    };

    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for file in files.iter().filter(|f| in_panic_scope(&f.rel)) {
        seen.insert(&file.rel);
        let sites = panic_sites(&file.scrub);
        let budget = allowed.get(&file.rel).copied().unwrap_or(0);
        if sites.len() > budget {
            findings.push(Finding {
                rule: RuleId::PanicInLibrary.name(),
                path: file.rel.clone(),
                line: sites.last().copied().unwrap_or(0),
                col: 0,
                message: format!(
                    "{} panic site(s) (unwrap/expect/panic!) but the baseline allows {budget}: \
                     return an error, annotate the new site with `// xcc-lint: \
                     allow(panic-in-library, reason = \"...\")`, or regenerate with --baseline",
                    sites.len()
                ),
            });
        } else if sites.len() < budget {
            findings.push(Finding {
                rule: RuleId::PanicInLibrary.name(),
                path: file.rel.clone(),
                line: 0,
                col: 0,
                message: format!(
                    "stale baseline: allows {budget} panic site(s) but only {} remain — \
                     regenerate with --baseline so the ratchet tightens",
                    sites.len()
                ),
            });
        }
    }
    for (path, budget) in &allowed {
        if !seen.contains(path.as_str()) {
            findings.push(Finding {
                rule: RuleId::PanicInLibrary.name(),
                path: baseline::BASELINE_REL.into(),
                line: 0,
                col: 0,
                message: format!(
                    "stale baseline: lists {path} ({budget} site(s)) but the file no longer \
                     exists — regenerate with --baseline"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// R1: registry-docs
// ---------------------------------------------------------------------------

const REGISTRY_RS: &str = "crates/core/src/registry.rs";
const BENCH_MANIFEST: &str = "crates/bench/Cargo.toml";
const DOC_FILES: [&str; 2] = ["README.md", "PAPER.md"];

fn registry_docs(root: &Path, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let Some(registry) = files.iter().find(|f| f.rel == REGISTRY_RS) else {
        return; // not a registry-bearing tree (fixture workspaces)
    };
    let r1 = RuleId::RegistryDocs.name();

    // Scenario names: `name: "<lit>"` struct fields in the registry source.
    let mut scenarios: BTreeMap<String, usize> = BTreeMap::new();
    for lit in &registry.scrub.strings {
        let code_line = &registry.scrub.code[lit.line - 1];
        let before = code_line[..lit.col].trim_end();
        let field = before.strip_suffix(':').map(str::trim_end);
        if field.is_some_and(|f| f.ends_with("name") && !f.ends_with("_name")) {
            scenarios.entry(lit.value.clone()).or_insert(lit.line);
        }
    }
    if scenarios.is_empty() {
        findings.push(Finding {
            rule: r1,
            path: registry.rel.clone(),
            line: 0,
            col: 0,
            message: "no `name: \"...\"` scenario entries found — did the registry move?".into(),
        });
        return;
    }

    // Bench targets from the manifest, and the scenario names each
    // bench source actually references.
    let manifest = fs::read_to_string(root.join(BENCH_MANIFEST)).unwrap_or_default();
    let bench_targets = manifest_targets(&manifest, "bench");
    let bench_files: Vec<&SourceFile> = files
        .iter()
        .filter(|f| f.rel.starts_with("crates/bench/benches/"))
        .collect();

    let mut covered: BTreeSet<&str> = BTreeSet::new();
    for bench in &bench_files {
        let stem = bench
            .rel
            .trim_start_matches("crates/bench/benches/")
            .trim_end_matches(".rs");
        if !bench_targets.iter().any(|(name, _)| name == stem) {
            findings.push(Finding {
                rule: r1,
                path: bench.rel.clone(),
                line: 0,
                col: 0,
                message: format!(
                    "bench source has no matching [[bench]] target `{stem}` in {BENCH_MANIFEST}"
                ),
            });
        }
        let mut refs = 0;
        for lit in &bench.scrub.strings {
            if let Some(name) = scenarios.keys().find(|n| n.as_str() == lit.value) {
                covered.insert(name);
                refs += 1;
            }
        }
        if refs == 0 {
            findings.push(Finding {
                rule: r1,
                path: bench.rel.clone(),
                line: 0,
                col: 0,
                message: "bench target runs no registered scenario (no string literal matches \
                          a registry name)"
                    .into(),
            });
        }
    }
    for (target, line) in &bench_targets {
        let src = format!("crates/bench/benches/{target}.rs");
        if !bench_files.iter().any(|f| f.rel == src) {
            findings.push(Finding {
                rule: r1,
                path: BENCH_MANIFEST.into(),
                line: *line,
                col: 0,
                message: format!("[[bench]] target `{target}` has no source file at {src}"),
            });
        }
    }
    for (name, line) in &scenarios {
        if !covered.contains(name.as_str()) {
            findings.push(Finding {
                rule: r1,
                path: registry.rel.clone(),
                line: *line,
                col: 0,
                message: format!(
                    "scenario `{name}` has no bench target under crates/bench/benches/ \
                     referencing it"
                ),
            });
        }
    }

    // Doc rows: every documented scenario is registered, every registered
    // scenario is documented.
    let mut doc_text = String::new();
    for doc in DOC_FILES {
        let text = fs::read_to_string(root.join(doc)).unwrap_or_default();
        for (idx, row_name) in doc_row_names(&text) {
            if !scenarios.contains_key(&row_name) {
                findings.push(Finding {
                    rule: r1,
                    path: doc.into(),
                    line: idx,
                    col: 0,
                    message: format!(
                        "table row names scenario `{row_name}` but the registry does not \
                         know it"
                    ),
                });
            }
        }
        doc_text.push_str(&text);
    }
    for (name, line) in &scenarios {
        if !doc_text.contains(&format!("`{name}`")) {
            findings.push(Finding {
                rule: r1,
                path: registry.rel.clone(),
                line: *line,
                col: 0,
                message: format!("scenario `{name}` is not documented in README.md or PAPER.md"),
            });
        }
    }
}

/// `[[kind]]` target names (with their line numbers) from a Cargo manifest.
fn manifest_targets(manifest: &str, kind: &str) -> Vec<(String, usize)> {
    let header = format!("[[{kind}]]");
    let mut out = Vec::new();
    let mut in_section = false;
    for (idx, line) in manifest.lines().enumerate() {
        let line = line.trim();
        if line.starts_with('[') {
            in_section = line == header;
            continue;
        }
        if in_section {
            if let Some(value) = line.strip_prefix("name") {
                let name = value.trim_start().trim_start_matches('=').trim();
                let name = name.trim_matches('"');
                if !name.is_empty() {
                    out.push((name.to_string(), idx + 1));
                }
            }
        }
    }
    out
}

/// Markdown table rows whose first column is a single backticked
/// `[a-z0-9_]+` name, as `(line, name)`.
fn doc_row_names(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let Some(rest) = line.trim_start().strip_prefix('|') else {
            continue;
        };
        let Some(cell) = rest.split('|').next() else {
            continue;
        };
        let cell = cell.trim();
        let Some(name) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) else {
            continue;
        };
        if !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            out.push((idx + 1, name.to_string()));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// S0: suppression hygiene
// ---------------------------------------------------------------------------

fn suppression_hygiene(config: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let s0 = RuleId::Suppression.name();
    for file in files {
        for supp in &file.scrub.suppressions {
            if supp.malformed {
                findings.push(Finding {
                    rule: s0,
                    path: file.rel.clone(),
                    line: supp.line,
                    col: 0,
                    message: format!(
                        "malformed xcc-lint comment ({}); expected `xcc-lint: allow(rule, \
                         reason = \"...\")`",
                        supp.rule
                    ),
                });
                continue;
            }
            let Some(rule) = RuleId::parse(&supp.rule) else {
                findings.push(Finding {
                    rule: s0,
                    path: file.rel.clone(),
                    line: supp.line,
                    col: 0,
                    message: format!("suppression names unknown rule `{}`", supp.rule),
                });
                continue;
            };
            if supp.reason.is_none() {
                findings.push(Finding {
                    rule: s0,
                    path: file.rel.clone(),
                    line: supp.line,
                    col: 0,
                    message: format!(
                        "suppression of `{}` without a reason — the reason is mandatory: \
                         allow({}, reason = \"...\")",
                        supp.rule, supp.rule
                    ),
                });
            }
            // Only judge usefulness when the suppressed rule actually ran.
            if config.enabled(rule) && !supp.used.get() {
                findings.push(Finding {
                    rule: s0,
                    path: file.rel.clone(),
                    line: supp.line,
                    col: 0,
                    message: format!(
                        "unused suppression: no `{}` finding on this or the next line — \
                         delete it",
                        supp.rule
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule-local text helpers
// ---------------------------------------------------------------------------

/// `Prefix::Ident` references in `text`, as (position, ident).
fn path_refs(text: &str, prefix: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for pos in items::word_positions(text, prefix) {
        let after = &text[pos + prefix.len()..];
        let trimmed = after.trim_start();
        if let Some(path_rest) = trimmed.strip_prefix("::") {
            if let Some((ident, _)) = items::next_word(path_rest, 0) {
                out.push((pos, ident));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_refs_extract_variant_names() {
        let refs: Vec<String> = path_refs(
            "match k { RequestKind::Alpha => 1, RequestKind :: Beta => 2, Other::X => 3 }",
            "RequestKind",
        )
        .into_iter()
        .map(|(_, n)| n)
        .collect();
        assert_eq!(refs, ["Alpha", "Beta"]);
    }

    #[test]
    fn ident_like_filters_field_keys() {
        assert!(is_ident_like("relayer_strategy"));
        assert!(is_ident_like("seed"));
        assert!(is_ident_like("_priv"));
        assert!(!is_ident_like("expected object for DeploymentConfig"));
        assert!(!is_ident_like("Fixed"));
        assert!(!is_ident_like(""));
        assert!(!is_ident_like("9lives"));
    }

    #[test]
    fn manifest_targets_and_doc_rows() {
        let manifest = "[package]\nname = \"xcc-bench\"\n\n[[bench]]\nname = \"fig6\"\n\
                        harness = false\n\n[[bin]]\nname = \"figure\"\n";
        assert_eq!(
            manifest_targets(manifest, "bench"),
            vec![("fig6".into(), 5)]
        );
        assert_eq!(
            manifest_targets(manifest, "bin"),
            vec![("figure".into(), 9)]
        );

        let md = "| Scenario | What |\n|---|---|\n| `fig6` | throughput |\n| plain | no |\n";
        assert_eq!(doc_row_names(md), vec![(3, "fig6".into())]);
    }

    #[test]
    fn rule_codes_round_trip_through_parse() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::parse(rule.name()), Some(rule));
            assert_eq!(RuleId::parse(rule.code()), Some(rule));
            assert_eq!(RuleId::parse(&rule.code().to_lowercase()), Some(rule));
        }
        assert_eq!(RuleId::parse("no-such-rule"), None);
    }
}
