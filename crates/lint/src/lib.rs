//! # xcc-lint — determinism & costing auditor for the workspace
//!
//! The simulator's headline guarantee is bit-identical replay: the same
//! `ExperimentSpec` must produce the same event trace and the same golden
//! fixtures on every machine, forever. That guarantee is easy to break with
//! one innocuous line — iterating a `HashMap`, reading `Instant::now()`,
//! seeding from `thread_rng()` — and such breaks surface only later, as a
//! flaky `goldens --check` failure that is miserable to bisect.
//!
//! `xcc-lint` moves that class of failure from replay time to lint time. It
//! is a dependency-free static auditor (no `rustc` internals, no `syn`;
//! crates.io is unreachable in this environment) built on a comment- and
//! string-aware scrubbing scanner ([`lexer::Scrubbed`]) and a shallow
//! [workspace item graph](items) parsed from the scrubbed token stream.
//! Ten rules run over `crates/*/src`, `tests/`, and friends:
//!
//! * **D1 `hash-collections`** — no `HashMap`/`HashSet` without a per-site
//!   justified suppression.
//! * **D2 `wall-clock`** — no `SystemTime`/`Instant`.
//! * **D3 `ambient-entropy`** — no `thread_rng`/`OsRng`/`from_entropy`/
//!   `getrandom`.
//! * **D4 `float-determinism`** — `f32`/`f64` in sim/chain/tendermint/
//!   relayer code is annotated or ratcheted by `float-baseline.txt`.
//! * **C1 `uncosted-rpc`** — every `RpcEndpoint` RPC method names a
//!   `RequestKind`, every kind has an explicit `service_time` arm (no
//!   wildcard), and no kind is dead.
//! * **C2 `lane-bypass`** — outside `crates/rpc`, no direct `RpcResponse`
//!   construction and no cost-table (`service_time`) access.
//! * **S1 `serde-field-coverage`** — hand-written `Serialize`/`Deserialize`
//!   impls name every field of their struct, and every key maps to a live
//!   field.
//! * **K1 `dead-knob`** — every pub config field and `SweepGrid` axis is
//!   read outside its defining file.
//! * **P1 `panic-in-library`** — `unwrap()`/`expect()`/`panic!` in non-test
//!   library code is ratcheted by `panic-baseline.txt`.
//! * **R1 `registry-docs`** — scenario registry ↔ bench targets ↔
//!   README/PAPER rows stay consistent.
//!
//! Plus a meta-rule, `suppression`, that keeps the escape hatch honest:
//! suppressions must be well-formed, carry a reason, name a known rule, and
//! actually match a finding.
//!
//! Run it as CI does:
//!
//! ```text
//! cargo run --release -p xcc-lint -- --check
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;

use std::fs;
use std::io;
use std::path::Path;

pub use report::{to_json, Finding};
pub use rules::{run, Config, Outcome, RuleId};

/// Recomputes and writes both ratchet baselines (`panic-baseline.txt` and
/// `float-baseline.txt`) under `root`. Returns the number of grandfathered
/// (panic, float) sites recorded.
pub fn regenerate_baseline(root: &Path) -> io::Result<(usize, usize)> {
    let panics = rules::current_panic_counts(root)?;
    let floats = rules::current_float_counts(root)?;
    let panic_total: usize = panics.values().sum();
    let float_total: usize = floats.values().sum();
    fs::write(root.join(baseline::BASELINE_REL), baseline::render(&panics))?;
    fs::write(
        root.join(baseline::FLOAT_BASELINE_REL),
        baseline::render_float(&floats),
    )?;
    Ok((panic_total, float_total))
}
