//! # xcc-lint — determinism & costing auditor for the workspace
//!
//! The simulator's headline guarantee is bit-identical replay: the same
//! `ExperimentSpec` must produce the same event trace and the same golden
//! fixtures on every machine, forever. That guarantee is easy to break with
//! one innocuous line — iterating a `HashMap`, reading `Instant::now()`,
//! seeding from `thread_rng()` — and such breaks surface only later, as a
//! flaky `goldens --check` failure that is miserable to bisect.
//!
//! `xcc-lint` moves that class of failure from replay time to lint time. It
//! is a dependency-free static auditor (no `rustc` internals, no `syn`;
//! crates.io is unreachable in this environment) built on a comment- and
//! string-aware scrubbing scanner ([`lexer::Scrubbed`]). Six rules run over
//! `crates/*/src`, `tests/`, and friends:
//!
//! * **D1 `hash-collections`** — no `HashMap`/`HashSet` without a per-site
//!   justified suppression.
//! * **D2 `wall-clock`** — no `SystemTime`/`Instant`.
//! * **D3 `ambient-entropy`** — no `thread_rng`/`OsRng`/`from_entropy`/
//!   `getrandom`.
//! * **C1 `uncosted-rpc`** — every `RpcEndpoint` RPC method names a
//!   `RequestKind`, every kind has an explicit `service_time` arm (no
//!   wildcard), and no kind is dead.
//! * **P1 `panic-in-library`** — `unwrap()`/`expect()`/`panic!` in non-test
//!   library code is ratcheted by `panic-baseline.txt`.
//! * **R1 `registry-docs`** — scenario registry ↔ bench targets ↔
//!   README/PAPER rows stay consistent.
//!
//! Plus a meta-rule, `suppression`, that keeps the escape hatch honest:
//! suppressions must be well-formed, carry a reason, name a known rule, and
//! actually match a finding.
//!
//! Run it as CI does:
//!
//! ```text
//! cargo run --release -p xcc-lint -- --check
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;

use std::fs;
use std::io;
use std::path::Path;

pub use report::{to_json, Finding};
pub use rules::{run, Config, Outcome, RuleId};

/// Recomputes and writes `panic-baseline.txt` under `root`. Returns the
/// number of grandfathered panic sites recorded.
pub fn regenerate_baseline(root: &Path) -> io::Result<usize> {
    let counts = rules::current_panic_counts(root)?;
    let total: usize = counts.values().sum();
    fs::write(root.join(baseline::BASELINE_REL), baseline::render(&counts))?;
    Ok(total)
}
