//! A hand-rolled, comment- and string-aware scanner for Rust source text.
//!
//! There is no `rustc` or `syn` available in this environment (crates.io is
//! unreachable), so the rules operate on a *scrubbed* view of each file:
//! every comment and every string/char literal is replaced by spaces of the
//! same length, preserving line and column positions exactly. Token words
//! found in the scrubbed text are therefore real code tokens, never prose in
//! a doc comment or a name inside a format string.
//!
//! The scanner also collects the pieces the rules need from the non-code
//! channels: comment text (for `xcc-lint: allow(...)` suppressions) and
//! string-literal values (for the registry/docs cross-checks).

use std::cell::Cell;

/// One string literal found in the source: where its opening quote sits in
/// the scrubbed text, and its raw (unescaped) contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringLit {
    /// 1-based line of the opening quote.
    pub line: usize,
    /// 0-based byte column of the opening quote on that line.
    pub col: usize,
    /// The raw text between the quotes (escape sequences left as written).
    pub value: String,
}

/// An `xcc-lint: allow(rule, reason = "...")` suppression comment.
#[derive(Debug)]
pub struct Suppression {
    /// 1-based line the comment starts on. The suppression covers findings
    /// on this line and on the immediately following line.
    pub line: usize,
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// The mandatory `reason = "..."` text, if present and non-empty.
    pub reason: Option<String>,
    /// Set when the comment matched the `xcc-lint:` marker but could not be
    /// parsed as a well-formed `allow(rule, reason = "...")`.
    pub malformed: bool,
    /// Marked by the rule engine when the suppression absorbed a finding.
    pub used: Cell<bool>,
}

/// The scrubbed view of one source file.
#[derive(Debug)]
pub struct Scrubbed {
    /// One entry per source line: code with comments and literal contents
    /// blanked to spaces (quote characters are kept, so literals remain
    /// visible as `""`).
    pub code: Vec<String>,
    /// Every comment, with the 1-based line it starts on.
    pub comments: Vec<(usize, String)>,
    /// Every string literal (normal and raw), in source order.
    pub strings: Vec<StringLit>,
    /// Parsed `xcc-lint:` suppression comments.
    pub suppressions: Vec<Suppression>,
    /// Per-line flag: true when the line sits inside a `#[cfg(test)]` or
    /// `#[test]` item (the line numbering is 1-based; index 0 is unused).
    pub test_lines: Vec<bool>,
}

impl Scrubbed {
    /// Scans `source` into its scrubbed representation.
    pub fn scan(source: &str) -> Scrubbed {
        let bytes = source.as_bytes();
        let mut code_lines: Vec<String> = Vec::new();
        let mut comments: Vec<(usize, String)> = Vec::new();
        let mut strings: Vec<StringLit> = Vec::new();
        let mut line_buf = String::new();
        let mut line_no = 1usize;
        let mut i = 0usize;

        // Appends one source character to the current scrubbed line, blanked
        // or verbatim, tracking line breaks.
        macro_rules! emit {
            ($ch:expr, $blank:expr) => {{
                let ch: char = $ch;
                if ch == '\n' {
                    code_lines.push(std::mem::take(&mut line_buf));
                    line_no += 1;
                } else if $blank {
                    line_buf.push(' ');
                } else {
                    line_buf.push(ch);
                }
            }};
        }

        let char_at = |idx: usize| -> Option<char> { source[idx..].chars().next() };

        while i < bytes.len() {
            let rest = &source[i..];
            // A literal prefix (`r`, `b`, `br`) only starts a literal when it
            // is not the tail of a longer identifier (e.g. `attr"` or `var"`).
            let at_word_start = i == 0 || !is_word_byte(bytes[i - 1]);
            if rest.starts_with("//") {
                // Line comment (incl. doc comments): runs to end of line.
                let end = rest.find('\n').map(|n| i + n).unwrap_or(bytes.len());
                comments.push((line_no, source[i..end].to_string()));
                for ch in source[i..end].chars() {
                    emit!(ch, true);
                }
                i = end;
            } else if rest.starts_with("/*") {
                // Block comment; Rust block comments nest.
                let start_line = line_no;
                let mut depth = 0usize;
                let mut j = i;
                while j < bytes.len() {
                    let r = &source[j..];
                    if r.starts_with("/*") {
                        depth += 1;
                        j += 2;
                    } else if r.starts_with("*/") {
                        depth -= 1;
                        j += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        j += r.chars().next().map(char::len_utf8).unwrap_or(1);
                    }
                }
                comments.push((start_line, source[i..j.min(bytes.len())].to_string()));
                for ch in source[i..j.min(bytes.len())].chars() {
                    emit!(ch, true);
                }
                i = j.min(bytes.len());
            } else if let Some(hashes) = raw_string_start(rest).filter(|_| at_word_start) {
                // Raw string: r"..." / r#"..."# / br#"..."# — no escapes.
                let prefix_len = rest.find('"').unwrap_or(0) + 1;
                let start_line = line_no;
                let start_col = line_buf.len() + prefix_len - 1;
                let closer = format!("\"{}", "#".repeat(hashes));
                let body_start = i + prefix_len;
                let end = source[body_start..]
                    .find(&closer)
                    .map(|n| body_start + n)
                    .unwrap_or(bytes.len());
                strings.push(StringLit {
                    line: start_line,
                    col: start_col,
                    value: source[body_start..end].to_string(),
                });
                for ch in source[i..body_start].chars() {
                    emit!(ch, false);
                }
                for ch in source[body_start..end].chars() {
                    emit!(ch, true);
                }
                let close_end = (end + closer.len()).min(bytes.len());
                for ch in source[end..close_end].chars() {
                    emit!(ch, false);
                }
                i = close_end;
            } else if rest.starts_with('"') || (rest.starts_with("b\"") && at_word_start) {
                // Normal (possibly byte) string with escapes.
                let quote_off = if rest.starts_with('"') { 0 } else { 1 };
                let start_line = line_no;
                let start_col = line_buf.len() + quote_off;
                for ch in source[i..i + quote_off + 1].chars() {
                    emit!(ch, false);
                }
                let mut j = i + quote_off + 1;
                let body_start = j;
                while j < bytes.len() {
                    match char_at(j) {
                        Some('\\') => {
                            // Skip the escape and the escaped char.
                            emit!('\\', true);
                            j += 1;
                            if let Some(c) = char_at(j) {
                                emit!(c, true);
                                j += c.len_utf8();
                            }
                        }
                        Some('"') => break,
                        Some(c) => {
                            emit!(c, true);
                            j += c.len_utf8();
                        }
                        None => break,
                    }
                }
                strings.push(StringLit {
                    line: start_line,
                    col: start_col,
                    value: source[body_start..j.min(bytes.len())].to_string(),
                });
                if j < bytes.len() {
                    emit!('"', false);
                    j += 1;
                }
                i = j;
            } else if rest.starts_with('\'') && is_char_literal(rest) {
                // Char literal (as opposed to a lifetime).
                emit!('\'', false);
                let mut j = i + 1;
                while j < bytes.len() {
                    match char_at(j) {
                        Some('\\') => {
                            emit!('\\', true);
                            j += 1;
                            if let Some(c) = char_at(j) {
                                emit!(c, true);
                                j += c.len_utf8();
                            }
                        }
                        Some('\'') => {
                            emit!('\'', false);
                            j += 1;
                            break;
                        }
                        Some(c) => {
                            emit!(c, true);
                            j += c.len_utf8();
                        }
                        None => break,
                    }
                }
                i = j;
            } else {
                let ch = char_at(i).unwrap_or(' ');
                emit!(ch, false);
                i += ch.len_utf8();
            }
        }
        code_lines.push(line_buf);

        let suppressions = comments
            .iter()
            .filter_map(|(line, text)| parse_suppression(*line, text))
            .collect();
        let test_lines = mark_test_lines(&code_lines);
        Scrubbed {
            code: code_lines,
            comments,
            strings,
            suppressions,
            test_lines,
        }
    }

    /// Whether 1-based `line` lies inside a `#[cfg(test)]` / `#[test]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }

    /// The suppression covering 1-based `line` for `rule`, if any: either a
    /// trailing comment on the line itself or a comment on the line above.
    pub fn suppression_for(&self, rule: &str, line: usize) -> Option<&Suppression> {
        self.suppressions
            .iter()
            .find(|s| s.rule == rule && (s.line == line || s.line + 1 == line))
    }
}

/// Detects `r"`, `r#"`, `br##"`, … at the start of `rest`; returns the hash
/// count of the delimiter.
fn raw_string_start(rest: &str) -> Option<usize> {
    let after_prefix = rest.strip_prefix("br").or_else(|| rest.strip_prefix('r'))?;
    let hashes = after_prefix.len() - after_prefix.trim_start_matches('#').len();
    after_prefix[hashes..].starts_with('"').then_some(hashes)
}

/// Distinguishes `'a'` / `'\n'` (char literals) from `'a` (lifetimes).
fn is_char_literal(rest: &str) -> bool {
    let mut chars = rest.chars();
    let _quote = chars.next();
    match chars.next() {
        Some('\\') => true,
        Some(_) => chars.next() == Some('\''),
        None => false,
    }
}

/// Parses one comment in the suppression form: the `xcc-lint:` marker,
/// followed by `allow(rule, reason = "...")`. The marker must open the
/// comment (directly after `//`, `///`, `//!`, `/*` and whitespace) so that
/// prose *describing* the syntax, like this doc comment, is not parsed.
fn parse_suppression(line: usize, text: &str) -> Option<Suppression> {
    let mut lead = text.trim_start();
    for prefix in ["//!", "///", "//", "/*", "*"] {
        if let Some(stripped) = lead.strip_prefix(prefix) {
            lead = stripped;
            break;
        }
    }
    let body = lead.trim_start().strip_prefix("xcc-lint:")?.trim_start();
    let malformed = |why: &str| {
        Suppression {
            line,
            rule: String::new(),
            reason: None,
            malformed: true,
            used: Cell::new(false),
            // `why` is folded into the rule field so the report can show it.
        }
        .with_rule(why)
    };
    let Some(args) = body.strip_prefix("allow(") else {
        return Some(malformed("expected `allow(rule, reason = \"...\")`"));
    };
    // Find the closing paren, ignoring any inside the quoted reason text
    // (reasons like "O(1) lookup" are legitimate).
    let mut close = None;
    let mut in_string = false;
    for (pos, ch) in args.char_indices() {
        match ch {
            '"' => in_string = !in_string,
            ')' if !in_string => {
                close = Some(pos);
                break;
            }
            _ => {}
        }
    }
    let Some(close) = close else {
        return Some(malformed("unclosed `allow(`"));
    };
    let args = &args[..close];
    let (rule, rest) = match args.split_once(',') {
        Some((rule, rest)) => (rule.trim(), rest.trim()),
        None => (args.trim(), ""),
    };
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return Some(malformed("missing or malformed rule name"));
    }
    let reason = rest
        .strip_prefix("reason")
        .map(|r| r.trim_start())
        .and_then(|r| r.strip_prefix('='))
        .map(|r| r.trim())
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.rfind('"').map(|end| r[..end].trim().to_string()))
        .filter(|r| !r.is_empty());
    Some(Suppression {
        line,
        rule: rule.to_string(),
        reason,
        malformed: false,
        used: Cell::new(false),
    })
}

impl Suppression {
    fn with_rule(mut self, note: &str) -> Suppression {
        self.rule = note.to_string();
        self
    }
}

/// Marks every line belonging to a `#[cfg(test)]` or `#[test]` item. The
/// item an attribute covers runs to the matching `}` of its first `{`, or to
/// the first `;` when no brace opens first (e.g. `#[cfg(test)] use …;`).
fn mark_test_lines(code: &[String]) -> Vec<bool> {
    // Work on a flattened copy with line starts recorded.
    let mut flat = String::new();
    let mut line_starts = Vec::with_capacity(code.len());
    for line in code {
        line_starts.push(flat.len());
        flat.push_str(line);
        flat.push('\n');
    }
    let line_of = |pos: usize| -> usize {
        match line_starts.binary_search(&pos) {
            Ok(idx) => idx + 1,
            Err(idx) => idx, // idx is 1-based line because starts are sorted
        }
    };

    let mut test = vec![false; code.len() + 1];
    let bytes = flat.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'#' {
            i += 1;
            continue;
        }
        // Capture the attribute `#[...]` (brackets may nest).
        let mut j = i + 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] != b'[' {
            i += 1;
            continue;
        }
        let attr_start = j;
        let mut depth = 0usize;
        while j < bytes.len() {
            match bytes[j] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let attr: String = flat[attr_start..j.min(flat.len())]
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        let is_test_attr = attr == "[test]"
            || attr.starts_with("[cfg(test")
            || (attr.starts_with("[cfg(")
                && (attr.contains("(test,") || attr.contains(",test)") || attr.contains(",test,")));
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip trailing attributes, then extend to the end of the item.
        let item_start = i;
        let mut k = j;
        let mut brace_depth = 0usize;
        let mut end = flat.len();
        while k < bytes.len() {
            match bytes[k] {
                b'{' => brace_depth += 1,
                b'}' => {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        end = k + 1;
                        break;
                    }
                }
                b';' if brace_depth == 0 => {
                    end = k + 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let (first, last) = (line_of(item_start), line_of(end.saturating_sub(1)));
        for line in test.iter_mut().take(last + 1).skip(first) {
            *line = true;
        }
        i = end;
    }
    test
}

/// Positions (1-based line, 0-based col) of `word` as a whole word in the
/// scrubbed code.
pub fn word_occurrences(code: &[String], word: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (idx, line) in code.iter().enumerate() {
        let mut from = 0usize;
        while let Some(pos) = line[from..].find(word) {
            let at = from + pos;
            let before_ok = at == 0 || !is_word_byte(line.as_bytes()[at - 1]);
            let end = at + word.len();
            let after_ok = end >= line.len() || !is_word_byte(line.as_bytes()[end]);
            if before_ok && after_ok {
                out.push((idx + 1, at));
            }
            from = end;
        }
    }
    out
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_string_contents_but_keeps_positions() {
        let s = Scrubbed::scan("let x = \"HashMap inside\";\nlet y = HashMap::new();\n");
        assert!(
            !s.code[0].contains("HashMap"),
            "literal contents must be blanked"
        );
        assert_eq!(s.code[0].len(), "let x = \"HashMap inside\";".len());
        assert_eq!(word_occurrences(&s.code, "HashMap"), vec![(2, 8)]);
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].value, "HashMap inside");
        assert_eq!(s.strings[0].line, 1);
    }

    #[test]
    fn handles_escapes_inside_strings() {
        let s = Scrubbed::scan(r#"let x = "quote \" then HashMap"; Instant"#);
        assert_eq!(s.strings[0].value, r#"quote \" then HashMap"#);
        assert_eq!(word_occurrences(&s.code, "HashMap"), vec![]);
        assert_eq!(word_occurrences(&s.code, "Instant").len(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let x = r#\"no \"escape\" HashSet\"#;\nHashSet::new();\n";
        let s = Scrubbed::scan(src);
        assert_eq!(s.strings[0].value, "no \"escape\" HashSet");
        assert_eq!(word_occurrences(&s.code, "HashSet"), vec![(2, 0)]);
    }

    #[test]
    fn identifier_ending_in_r_or_b_is_not_a_literal_prefix() {
        let s = Scrubbed::scan("let var = attr; let sub = 1; \"lit\"");
        assert_eq!(word_occurrences(&s.code, "attr").len(), 1);
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].value, "lit");
    }

    #[test]
    fn line_and_nested_block_comments_are_blanked() {
        let src =
            "// HashMap in a line comment\n/* outer /* nested SystemTime */ still */\nInstant\n";
        let s = Scrubbed::scan(src);
        assert!(word_occurrences(&s.code, "HashMap").is_empty());
        assert!(word_occurrences(&s.code, "SystemTime").is_empty());
        assert_eq!(word_occurrences(&s.code, "Instant"), vec![(3, 0)]);
        assert_eq!(s.comments.len(), 2);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let s = Scrubbed::scan("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        // The lifetime must survive as code; the char contents are blanked.
        assert!(s.code[0].contains("<'a>"));
        assert!(!s.code[0].contains("'x'"));
    }

    #[test]
    fn suppression_parses_rule_and_reason() {
        let src = "// xcc-lint: allow(hash-collections, reason = \"lookup only\")\nuse std::collections::HashMap;\n";
        let s = Scrubbed::scan(src);
        assert_eq!(s.suppressions.len(), 1);
        let supp = &s.suppressions[0];
        assert_eq!(supp.rule, "hash-collections");
        assert_eq!(supp.reason.as_deref(), Some("lookup only"));
        assert!(!supp.malformed);
        assert!(s.suppression_for("hash-collections", 2).is_some());
        assert!(s.suppression_for("hash-collections", 3).is_none());
        assert!(s.suppression_for("wall-clock", 2).is_none());
    }

    #[test]
    fn suppression_reason_may_contain_parens() {
        let s = Scrubbed::scan(
            "// xcc-lint: allow(hash-collections, reason = \"O(1) lookups (never iterated)\")\n",
        );
        assert_eq!(s.suppressions.len(), 1);
        assert_eq!(
            s.suppressions[0].reason.as_deref(),
            Some("O(1) lookups (never iterated)")
        );
    }

    #[test]
    fn suppression_without_reason_and_malformed() {
        let s = Scrubbed::scan("// xcc-lint: allow(wall-clock)\n// xcc-lint: deny(everything)\n");
        assert_eq!(s.suppressions.len(), 2);
        assert_eq!(s.suppressions[0].rule, "wall-clock");
        assert!(s.suppressions[0].reason.is_none());
        assert!(!s.suppressions[0].malformed);
        assert!(s.suppressions[1].malformed);
    }

    #[test]
    fn test_regions_cover_cfg_test_modules_and_test_fns() {
        let src = "pub fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}\n\
                   pub fn lib2() {}\n";
        let s = Scrubbed::scan(src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(2));
        assert!(s.is_test_line(5));
        assert!(s.is_test_line(6));
        assert!(!s.is_test_line(7));
    }

    #[test]
    fn cfg_any_test_is_a_test_region() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nfn helper() { a.unwrap(); }\nfn lib() {}\n";
        let s = Scrubbed::scan(src);
        assert!(s.is_test_line(2));
        assert!(!s.is_test_line(3));
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let s = Scrubbed::scan("let x = \"never closed...");
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].value, "never closed...");
    }
}
