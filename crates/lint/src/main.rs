//! Command-line driver for the workspace determinism & costing auditor.
//!
//! Exit codes: `0` clean (or non-`--check` report run), `1` usage or I/O
//! error, `2` findings under `--check`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use xcc_lint::{regenerate_baseline, rules, to_json, Config, RuleId};

const USAGE: &str = "\
xcc-lint: determinism & costing auditor for the workspace

USAGE:
    xcc-lint [OPTIONS]

OPTIONS:
    --check            exit 2 when any finding is reported (CI mode)
    --json             emit findings as JSON instead of text lines
    --github           emit findings as GitHub Actions ::error annotations
    --baseline         regenerate crates/lint/{panic,float}-baseline.txt and exit
    --rule <name>      run only this rule (repeatable); names or codes (D1..R1)
    --skip-rule <name> run all rules except this one (repeatable)
    --root <path>      workspace root to lint (default: current directory)
    --list-rules       print the rule catalogue and exit
    --help             print this help
";

struct Args {
    check: bool,
    json: bool,
    github: bool,
    baseline: bool,
    list_rules: bool,
    root: PathBuf,
    only: Vec<RuleId>,
    skip: Vec<RuleId>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        check: false,
        json: false,
        github: false,
        baseline: false,
        list_rules: false,
        root: PathBuf::from("."),
        only: Vec::new(),
        skip: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--check" => args.check = true,
            "--json" => args.json = true,
            "--github" => args.github = true,
            "--baseline" => args.baseline = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            "--root" => {
                let value = argv.next().ok_or("--root needs a path")?;
                args.root = PathBuf::from(value);
            }
            "--rule" => {
                let value = argv.next().ok_or("--rule needs a rule name")?;
                args.only.push(parse_rule(&value)?);
            }
            "--skip-rule" => {
                let value = argv.next().ok_or("--skip-rule needs a rule name")?;
                args.skip.push(parse_rule(&value)?);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(args)
}

fn parse_rule(name: &str) -> Result<RuleId, String> {
    RuleId::parse(name).ok_or_else(|| {
        let known: Vec<&str> = RuleId::ALL.iter().map(|r| r.name()).collect();
        format!("unknown rule {name:?}; known rules: {}", known.join(", "))
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("xcc-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if args.list_rules {
        for rule in RuleId::ALL {
            println!("{:4} {}", rule.code(), rule.name());
        }
        return ExitCode::SUCCESS;
    }

    if args.baseline {
        return match regenerate_baseline(&args.root) {
            Ok((panics, floats)) => {
                println!(
                    "xcc-lint: wrote {} ({panics} grandfathered panic site(s)) and {} \
                     ({floats} grandfathered float site(s))",
                    xcc_lint::baseline::BASELINE_REL,
                    xcc_lint::baseline::FLOAT_BASELINE_REL
                );
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("xcc-lint: baseline regeneration failed: {err}");
                ExitCode::FAILURE
            }
        };
    }

    let mut selected: Vec<RuleId> = if args.only.is_empty() {
        RuleId::ALL.to_vec()
    } else {
        let mut only = args.only.clone();
        // Suppression hygiene always accompanies the rules it guards.
        if !only.contains(&RuleId::Suppression) {
            only.push(RuleId::Suppression);
        }
        only
    };
    selected.retain(|rule| !args.skip.contains(rule));

    let config = Config {
        root: args.root,
        rules: selected,
    };
    let outcome = match rules::run(&config) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("xcc-lint: scan failed: {err}");
            return ExitCode::FAILURE;
        }
    };

    if args.json {
        print!("{}", to_json(&outcome.findings, outcome.files_scanned));
    } else if args.github {
        for finding in &outcome.findings {
            println!("{}", finding.render_github());
        }
        println!(
            "xcc-lint: {} finding(s) across {} file(s)",
            outcome.findings.len(),
            outcome.files_scanned
        );
    } else {
        for finding in &outcome.findings {
            println!("{}", finding.render());
        }
        println!(
            "xcc-lint: {} finding(s) across {} file(s)",
            outcome.findings.len(),
            outcome.files_scanned
        );
    }

    if args.check && !outcome.findings.is_empty() {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
