//! Finding representation and the text / JSON / GitHub-annotation reporters.
//!
//! The `--json` schema (stable; hand-rolled because the auditor is
//! dependency-free by design):
//!
//! ```json
//! {
//!   "findings": [
//!     {"rule": "...", "path": "...", "line": 0, "col": 0, "message": "..."}
//!   ],
//!   "files_scanned": 0,
//!   "finding_count": 0
//! }
//! ```
//!
//! `line`/`col` are 1-based; `0` means "file-level" / "unknown column".
//! Findings are always sorted by `(path, line, col, rule)` and paths are
//! always workspace-relative, regardless of `--root`, so output is
//! byte-identical across machines and invocation directories.

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (e.g. `hash-collections`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the finding (0 when the finding is file-level).
    pub line: usize,
    /// 1-based column of the finding (0 when only the line is known).
    pub col: usize,
    /// Human-readable description of the violation and how to fix it.
    pub message: String,
}

impl Finding {
    /// The conventional one-line text rendering
    /// (`path:line:col: [rule] msg`, dropping unknown positions).
    pub fn render(&self) -> String {
        match (self.line, self.col) {
            (0, _) => format!("{}: [{}] {}", self.path, self.rule, self.message),
            (line, 0) => format!("{}:{}: [{}] {}", self.path, line, self.rule, self.message),
            (line, col) => format!(
                "{}:{}:{}: [{}] {}",
                self.path, line, col, self.rule, self.message
            ),
        }
    }

    /// The GitHub Actions workflow-command rendering, so CI findings
    /// surface as inline annotations on the PR diff.
    pub fn render_github(&self) -> String {
        let mut out = format!("::error file={},line={}", self.path, self.line.max(1));
        if self.col > 0 {
            out.push_str(&format!(",col={}", self.col));
        }
        out.push_str(&format!(
            ",title=xcc-lint {}::{}",
            self.rule,
            github_escape(&self.message)
        ));
        out
    }
}

/// Escapes a workflow-command message (data after `::`): `%`, `\r`, `\n`.
fn github_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Renders findings as a JSON document (hand-rolled: the auditor is
/// dependency-free by design, including the vendored serde shims).
pub fn to_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (idx, f) in findings.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
        out.push_str(&format!("\"path\": {}, ", json_str(&f.path)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"col\": {}, ", f.col));
        out.push_str(&format!("\"message\": {}", json_str(&f.message)));
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"finding_count\": {}\n", findings.len()));
    out.push_str("}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let findings = vec![Finding {
            rule: "wall-clock",
            path: "crates/sim/src/time.rs".into(),
            line: 3,
            col: 9,
            message: "say \"no\" to\nwall clocks".into(),
        }];
        let json = to_json(&findings, 7);
        assert!(json.contains("\"rule\": \"wall-clock\""));
        assert!(json.contains("\"col\": 9"));
        assert!(json.contains("\\\"no\\\" to\\nwall"));
        assert!(json.contains("\"files_scanned\": 7"));
        assert!(json.contains("\"finding_count\": 1"));
    }

    #[test]
    fn render_includes_positions_only_when_known() {
        let full = Finding {
            rule: "panic-in-library",
            path: "a.rs".into(),
            line: 9,
            col: 4,
            message: "m".into(),
        };
        assert_eq!(full.render(), "a.rs:9:4: [panic-in-library] m");
        let line_only = Finding {
            col: 0,
            ..full.clone()
        };
        assert_eq!(line_only.render(), "a.rs:9: [panic-in-library] m");
        let file_level = Finding {
            line: 0,
            col: 0,
            ..full
        };
        assert_eq!(file_level.render(), "a.rs: [panic-in-library] m");
    }

    #[test]
    fn github_rendering_escapes_newlines_and_pins_line() {
        let f = Finding {
            rule: "dead-knob",
            path: "crates/core/src/config.rs".into(),
            line: 0,
            col: 0,
            message: "100% dead\nknob".into(),
        };
        assert_eq!(
            f.render_github(),
            "::error file=crates/core/src/config.rs,line=1,title=xcc-lint \
             dead-knob::100%25 dead%0Aknob"
        );
        let with_col = Finding {
            line: 12,
            col: 5,
            message: "m".into(),
            ..f
        };
        assert_eq!(
            with_col.render_github(),
            "::error file=crates/core/src/config.rs,line=12,col=5,title=xcc-lint dead-knob::m"
        );
    }
}
