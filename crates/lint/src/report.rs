//! Finding representation and the text / JSON reporters.

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (e.g. `hash-collections`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the finding (0 when the finding is file-level).
    pub line: usize,
    /// Human-readable description of the violation and how to fix it.
    pub message: String,
}

impl Finding {
    /// The conventional one-line text rendering (`path:line: [rule] msg`).
    pub fn render(&self) -> String {
        if self.line > 0 {
            format!(
                "{}:{}: [{}] {}",
                self.path, self.line, self.rule, self.message
            )
        } else {
            format!("{}: [{}] {}", self.path, self.rule, self.message)
        }
    }
}

/// Renders findings as a JSON document (hand-rolled: the auditor is
/// dependency-free by design, including the vendored serde shims).
pub fn to_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (idx, f) in findings.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
        out.push_str(&format!("\"path\": {}, ", json_str(&f.path)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"message\": {}", json_str(&f.message)));
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"finding_count\": {}\n", findings.len()));
    out.push_str("}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let findings = vec![Finding {
            rule: "wall-clock",
            path: "crates/sim/src/time.rs".into(),
            line: 3,
            message: "say \"no\" to\nwall clocks".into(),
        }];
        let json = to_json(&findings, 7);
        assert!(json.contains("\"rule\": \"wall-clock\""));
        assert!(json.contains("\\\"no\\\" to\\nwall"));
        assert!(json.contains("\"files_scanned\": 7"));
        assert!(json.contains("\"finding_count\": 1"));
    }

    #[test]
    fn render_includes_line_only_when_known() {
        let with_line = Finding {
            rule: "panic-in-library",
            path: "a.rs".into(),
            line: 9,
            message: "m".into(),
        };
        assert_eq!(with_line.render(), "a.rs:9: [panic-in-library] m");
        let file_level = Finding {
            line: 0,
            ..with_line
        };
        assert_eq!(file_level.render(), "a.rs: [panic-in-library] m");
    }
}
