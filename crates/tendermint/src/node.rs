//! A full node: consensus state machine, mempool and block store driving an
//! ABCI application.
//!
//! The node is a pure state machine — it never blocks or sleeps. The caller
//! (the chain driver in `xcc-chain`, itself driven by the experiment
//! scheduler) asks it to produce blocks at the appropriate simulated times,
//! and the node reports how long consensus and block processing took so the
//! driver can schedule the next block.

// xcc-lint: allow(hash-collections, reason = "tx_index is a point-lookup index; iteration never observes it")
use std::collections::HashMap;
use std::rc::Rc;

use crate::abci::{Application, DeliverTxResult, Event};
use crate::block::{evidence_hash, Block, BlockId, Data, Header, RawTx, Version};
use crate::hash::{hash_fields, Hash};
use crate::mempool::{Mempool, MempoolConfig, MempoolError, PendingTx};
use crate::params::{ConsensusParams, ConsensusTimingModel};
use crate::validator::ValidatorSet;
use crate::vote::{Commit, CommitSig};
use xcc_sim::{SimDuration, SimTime};

/// Why a transaction submission was rejected by the node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The application's `CheckTx` rejected the transaction.
    CheckTxFailed {
        /// Application error code.
        code: u32,
        /// Application error log.
        log: String,
    },
    /// The mempool refused the transaction.
    Mempool(MempoolError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::CheckTxFailed { code, log } => {
                write!(f, "check_tx failed with code {code}: {log}")
            }
            SubmitError::Mempool(e) => write!(f, "mempool rejected tx: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<MempoolError> for SubmitError {
    fn from(e: MempoolError) -> Self {
        SubmitError::Mempool(e)
    }
}

/// Per-transaction `(hash, result code, events)` tuples of one block — the
/// payload a block-event subscription delivers, precomputed at commit time.
pub type BlockTxEvents = Vec<(Hash, u32, Vec<Event>)>;

/// The stored outcome of executing one block.
#[derive(Debug, Clone)]
pub struct CommittedBlock {
    /// The block itself.
    pub block: Block,
    /// Per-transaction execution results, in block order.
    pub results: Vec<DeliverTxResult>,
    /// When the block was committed (consensus finished).
    pub committed_at: SimTime,
    /// The block's event payload, computed once at commit. Shared (`Rc`) so
    /// every relayer process subscribed to the block receives the same
    /// allocation instead of re-hashing and re-cloning per subscriber —
    /// before this cache, `block_events` was the hottest allocation site in
    /// fleet experiments.
    pub tx_events: Rc<BlockTxEvents>,
    /// Encoded size of the event payload plus raw transactions, as carried
    /// by a WebSocket frame (the §V frame-size accounting).
    pub events_payload_bytes: usize,
}

/// Summary of a freshly produced block, returned to the driver.
#[derive(Debug, Clone)]
pub struct BlockOutcome {
    /// Height of the new block.
    pub height: u64,
    /// Identifier of the new block.
    pub block_id: BlockId,
    /// Number of transactions included.
    pub tx_count: usize,
    /// Number of application messages included (as reported by the app
    /// through gas accounting; here: sum over txs of their event count).
    pub included_messages: u64,
    /// When consensus on this block completed.
    pub committed_at: SimTime,
    /// Consensus plus processing time spent on this block.
    pub work: SimDuration,
    /// Number of transactions still pending in the mempool afterwards.
    pub mempool_remaining: usize,
}

/// A Tendermint full node wrapping an ABCI application.
pub struct Node<A: Application> {
    chain_id: String,
    params: ConsensusParams,
    timing: ConsensusTimingModel,
    validators: ValidatorSet,
    app: A,
    mempool: Mempool,
    blocks: Vec<CommittedBlock>,
    // xcc-lint: allow(hash-collections, reason = "hash -> (height, index) point lookups only; never iterated")
    tx_index: HashMap<Hash, (u64, usize)>,
    last_app_hash: Hash,
    last_results_hash: Hash,
    last_commit: Option<Commit>,
    last_block_time: SimTime,
}

impl<A: Application> Node<A> {
    /// Creates a node at genesis (height 0, no blocks yet).
    pub fn new(
        chain_id: impl Into<String>,
        validators: ValidatorSet,
        params: ConsensusParams,
        timing: ConsensusTimingModel,
        mempool_config: MempoolConfig,
        app: A,
    ) -> Self {
        Node {
            chain_id: chain_id.into(),
            params,
            timing,
            validators,
            app,
            mempool: Mempool::new(mempool_config),
            blocks: Vec::new(),
            // xcc-lint: allow(hash-collections, reason = "point-lookup index, see field declaration")
            tx_index: HashMap::new(),
            last_app_hash: Hash::ZERO,
            last_results_hash: Hash::ZERO,
            last_commit: None,
            last_block_time: SimTime::ZERO,
        }
    }

    /// The chain identifier.
    pub fn chain_id(&self) -> &str {
        &self.chain_id
    }

    /// Current height (number of committed blocks).
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// The validator set.
    pub fn validators(&self) -> &ValidatorSet {
        &self.validators
    }

    /// The consensus parameters.
    pub fn params(&self) -> &ConsensusParams {
        &self.params
    }

    /// The consensus timing model.
    pub fn timing(&self) -> &ConsensusTimingModel {
        &self.timing
    }

    /// Immutable access to the application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutable access to the application (used by test fixtures and by the
    /// chain driver for state queries).
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// Number of transactions currently pending in the mempool.
    pub fn mempool_size(&self) -> usize {
        self.mempool.len()
    }

    /// Number of mempool transactions from one sender: the unconfirmed part
    /// of that account's sequence window, surfaced so the RPC layer can
    /// answer mempool-aware account-sequence queries (§V's sequence race).
    pub fn mempool_pending_from(&self, sender: &str) -> usize {
        self.mempool.pending_from(sender)
    }

    /// The committed block at `height`, if any (heights start at 1).
    pub fn block_at(&self, height: u64) -> Option<&CommittedBlock> {
        if height == 0 {
            return None;
        }
        self.blocks.get(height as usize - 1)
    }

    /// The most recently committed block, if any.
    pub fn latest_block(&self) -> Option<&CommittedBlock> {
        self.blocks.last()
    }

    /// When the latest block was committed ([`SimTime::ZERO`] before the
    /// first block).
    pub fn last_block_time(&self) -> SimTime {
        self.last_block_time
    }

    /// Finds a committed transaction by hash, returning its height, index in
    /// the block, and execution result.
    pub fn find_tx(&self, hash: &Hash) -> Option<(u64, usize, &DeliverTxResult)> {
        let (height, index) = *self.tx_index.get(hash)?;
        let block = self.block_at(height)?;
        block.results.get(index).map(|r| (height, index, r))
    }

    /// Whether a transaction is known, either committed or pending.
    pub fn tx_status(&self, hash: &Hash) -> TxStatus {
        if self.tx_index.contains_key(hash) {
            TxStatus::Committed
        } else if self.mempool.contains(hash) {
            TxStatus::Pending
        } else {
            TxStatus::Unknown
        }
    }

    /// Submits a transaction: runs `CheckTx` and, on success, adds it to the
    /// mempool.
    ///
    /// # Errors
    ///
    /// Fails when `CheckTx` rejects the transaction or the mempool is full.
    pub fn submit_tx(&mut self, tx: RawTx, now: SimTime) -> Result<Hash, SubmitError> {
        let check = self.app.check_tx(&tx);
        if !check.is_ok() {
            return Err(SubmitError::CheckTxFailed {
                code: check.code,
                log: check.log,
            });
        }
        let hash = tx.hash();
        self.mempool.add(PendingTx {
            hash,
            tx,
            gas_wanted: check.gas_wanted,
            sender: check.sender,
            sequence: check.sequence,
            received_at: now,
        })?;
        Ok(hash)
    }

    /// Produces, executes and commits the next block, reaping the mempool at
    /// `propose_time`.
    ///
    /// Returns a summary including the simulated commit time, which accounts
    /// for consensus latency and block processing per the timing model.
    pub fn produce_block(&mut self, propose_time: SimTime) -> BlockOutcome {
        let height = self.height() + 1;
        let reaped = self.mempool.reap_before(
            self.params.max_block_gas,
            self.params.max_block_bytes,
            self.params.max_block_txs,
            propose_time,
        );
        let txs: Vec<RawTx> = reaped.iter().map(|p| p.tx.clone()).collect();
        let tx_hashes: Vec<Hash> = reaped.iter().map(|p| p.hash).collect();
        let data = Data { txs: txs.clone() };
        let proposer = self.validators.proposer(height, 0).address;

        let header = Header {
            version: Version::default(),
            chain_id: self.chain_id.clone(),
            height,
            time: propose_time,
            last_block_id: self
                .blocks
                .last()
                .map(|b| b.block.block_id())
                .unwrap_or(BlockId { hash: Hash::ZERO }),
            last_commit_hash: self
                .last_commit
                .as_ref()
                .map(Commit::hash)
                .unwrap_or(Hash::ZERO),
            data_hash: data.hash(),
            validators_hash: self.validators.hash(),
            next_validators_hash: self.validators.hash(),
            consensus_hash: self.params.hash(),
            app_hash: self.last_app_hash,
            last_results_hash: self.last_results_hash,
            evidence_hash: evidence_hash(&[]),
            proposer_address: proposer,
        };

        // Execute the block against the application.
        self.app.begin_block(&header);
        let mut results = Vec::with_capacity(txs.len());
        let mut included_messages = 0u64;
        for tx in &txs {
            let result = self.app.deliver_tx(tx);
            included_messages += result.events.len() as u64;
            results.push(result);
        }
        self.app.end_block(height);
        let new_app_hash = self.app.commit();

        let block = Block {
            header: header.clone(),
            data,
            evidence: vec![],
            last_commit: self.last_commit.clone(),
        };
        debug_assert!(block.validate_basic().is_ok());
        let block_id = block.block_id();
        let block_bytes = block.byte_size();

        // All validators sign: the paper's testnet has no faults.
        let commit = Commit {
            height,
            round: 0,
            block_id,
            signatures: self
                .validators
                .validators()
                .iter()
                .map(|v| CommitSig::for_block(v.address, height, 0, &block_id, propose_time))
                .collect(),
        };

        // Remove included transactions, then account for rechecking whatever
        // is left against the new state.
        self.mempool.remove_committed(&tx_hashes);
        let mempool_remaining = self.mempool.len();

        let work = self.timing.consensus_latency(self.validators.len())
            + self
                .timing
                .block_processing_time(included_messages, block_bytes, mempool_remaining);
        let committed_at = propose_time + work;

        // Index transactions and store the block.
        for (i, hash) in tx_hashes.iter().enumerate() {
            self.tx_index.insert(*hash, (height, i));
        }
        self.last_results_hash = results_hash(&results);
        self.last_app_hash = new_app_hash;
        self.last_commit = Some(commit);
        self.last_block_time = committed_at;
        let tx_count = txs.len();
        // Precompute the event payload every subscriber will ask for, using
        // the hashes already computed at mempool admission.
        let mut tx_events = Vec::with_capacity(results.len());
        let mut events_payload_bytes = 0usize;
        for ((hash, tx), result) in tx_hashes.iter().zip(&txs).zip(&results) {
            events_payload_bytes += result.encoded_size() + 64 + tx.len();
            tx_events.push((*hash, result.code, result.events.clone()));
        }
        self.blocks.push(CommittedBlock {
            block,
            results,
            committed_at,
            tx_events: Rc::new(tx_events),
            events_payload_bytes,
        });

        BlockOutcome {
            height,
            block_id,
            tx_count,
            included_messages,
            committed_at,
            work,
            mempool_remaining,
        }
    }

    /// The commit certifying the block at `height`, if that block exists and
    /// a subsequent block has been produced (its `LastCommit`), or the
    /// node-held commit for the latest block.
    pub fn commit_for(&self, height: u64) -> Option<&Commit> {
        if height == self.height() {
            self.last_commit.as_ref()
        } else {
            self.block_at(height + 1)
                .and_then(|b| b.block.last_commit.as_ref())
        }
    }
}

impl<A: Application> std::fmt::Debug for Node<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("chain_id", &self.chain_id)
            .field("height", &self.height())
            .field("mempool", &self.mempool.len())
            .finish()
    }
}

/// Whether a transaction is committed, pending, or unknown to the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// The transaction is in a committed block.
    Committed,
    /// The transaction is waiting in the mempool.
    Pending,
    /// The node has never seen the transaction.
    Unknown,
}

fn results_hash(results: &[DeliverTxResult]) -> Hash {
    let encoded: Vec<Vec<u8>> = results
        .iter()
        .map(|r| {
            let mut bytes = r.code.to_be_bytes().to_vec();
            bytes.extend_from_slice(&r.gas_used.to_be_bytes());
            bytes
        })
        .collect();
    let refs: Vec<&[u8]> = encoded.iter().map(|e| e.as_slice()).collect();
    hash_fields(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abci::{CheckTxResult, Event};

    /// A minimal counter application for node tests: every transaction is
    /// accepted and emits one event.
    #[derive(Debug, Default)]
    struct CounterApp {
        delivered: u64,
        committed: u64,
    }

    impl Application for CounterApp {
        fn check_tx(&mut self, tx: &RawTx) -> CheckTxResult {
            if tx.as_bytes().first() == Some(&0xff) {
                CheckTxResult {
                    code: 1,
                    log: "rejected by app".into(),
                    gas_wanted: 0,
                    sender: String::new(),
                    sequence: 0,
                }
            } else {
                CheckTxResult {
                    code: 0,
                    log: String::new(),
                    gas_wanted: 1_000,
                    sender: format!("sender-{}", tx.as_bytes().first().copied().unwrap_or(0)),
                    sequence: 0,
                }
            }
        }

        fn begin_block(&mut self, _header: &Header) {}

        fn deliver_tx(&mut self, _tx: &RawTx) -> DeliverTxResult {
            self.delivered += 1;
            DeliverTxResult {
                code: 0,
                log: String::new(),
                gas_used: 900,
                gas_wanted: 1_000,
                events: vec![Event::new("counted")],
            }
        }

        fn end_block(&mut self, _height: u64) {}

        fn commit(&mut self) -> Hash {
            self.committed += 1;
            hash_fields(&[b"counter-app", &self.delivered.to_be_bytes()])
        }
    }

    fn test_node() -> Node<CounterApp> {
        Node::new(
            "test-chain",
            ValidatorSet::with_equal_power(5, 10),
            ConsensusParams::default(),
            ConsensusTimingModel::default(),
            MempoolConfig::default(),
            CounterApp::default(),
        )
    }

    #[test]
    fn empty_blocks_advance_height_and_chain_linkage() {
        let mut node = test_node();
        let b1 = node.produce_block(SimTime::from_secs(5));
        let b2 = node.produce_block(SimTime::from_secs(10));
        assert_eq!(b1.height, 1);
        assert_eq!(b2.height, 2);
        assert_eq!(node.height(), 2);
        let block2 = node.block_at(2).unwrap();
        assert_eq!(block2.block.header.last_block_id, b1.block_id);
        // Block 2 carries the commit for block 1.
        assert_eq!(block2.block.last_commit.as_ref().unwrap().height, 1);
        assert_eq!(
            block2.block.last_commit.as_ref().unwrap().block_id,
            b1.block_id
        );
    }

    #[test]
    fn submitted_txs_are_included_and_indexed() {
        let mut node = test_node();
        let tx = RawTx::new(vec![1, 2, 3]);
        let hash = node.submit_tx(tx.clone(), SimTime::ZERO).unwrap();
        assert_eq!(node.tx_status(&hash), TxStatus::Pending);
        let outcome = node.produce_block(SimTime::from_secs(5));
        assert_eq!(outcome.tx_count, 1);
        assert_eq!(node.tx_status(&hash), TxStatus::Committed);
        let (height, index, result) = node.find_tx(&hash).unwrap();
        assert_eq!((height, index), (1, 0));
        assert!(result.is_ok());
        assert_eq!(node.mempool_size(), 0);
    }

    #[test]
    fn check_tx_rejection_propagates() {
        let mut node = test_node();
        let err = node
            .submit_tx(RawTx::new(vec![0xff]), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, SubmitError::CheckTxFailed { code: 1, .. }));
        assert_eq!(node.mempool_size(), 0);
    }

    #[test]
    fn duplicate_submission_is_rejected_by_mempool() {
        let mut node = test_node();
        let tx = RawTx::new(vec![7]);
        node.submit_tx(tx.clone(), SimTime::ZERO).unwrap();
        let err = node.submit_tx(tx, SimTime::ZERO).unwrap_err();
        assert!(matches!(
            err,
            SubmitError::Mempool(MempoolError::AlreadyPending)
        ));
    }

    #[test]
    fn block_commit_time_includes_consensus_latency() {
        let mut node = test_node();
        let outcome = node.produce_block(SimTime::from_secs(5));
        assert!(outcome.committed_at > SimTime::from_secs(5));
        assert!(outcome.work >= node.timing().consensus_latency(5));
    }

    #[test]
    fn commit_for_latest_and_historic_heights() {
        let mut node = test_node();
        node.produce_block(SimTime::from_secs(5));
        node.produce_block(SimTime::from_secs(10));
        assert_eq!(node.commit_for(2).unwrap().height, 2);
        assert_eq!(node.commit_for(1).unwrap().height, 1);
        assert!(node.commit_for(5).is_none());
    }

    #[test]
    fn unknown_tx_status() {
        let node = test_node();
        assert_eq!(
            node.tx_status(&RawTx::new(vec![9]).hash()),
            TxStatus::Unknown
        );
        assert!(node.find_tx(&RawTx::new(vec![9]).hash()).is_none());
    }

    #[test]
    fn gas_limit_defers_excess_txs_to_next_block() {
        let mut node = Node::new(
            "test-chain",
            ValidatorSet::with_equal_power(5, 10),
            ConsensusParams {
                max_block_gas: 2_500, // fits 2 txs of 1,000 gas
                ..ConsensusParams::default()
            },
            ConsensusTimingModel::default(),
            MempoolConfig::default(),
            CounterApp::default(),
        );
        for i in 0..5u8 {
            node.submit_tx(RawTx::new(vec![i]), SimTime::ZERO).unwrap();
        }
        let b1 = node.produce_block(SimTime::from_secs(5));
        assert_eq!(b1.tx_count, 2);
        assert_eq!(b1.mempool_remaining, 3);
        let b2 = node.produce_block(SimTime::from_secs(10));
        assert_eq!(b2.tx_count, 2);
        let b3 = node.produce_block(SimTime::from_secs(15));
        assert_eq!(b3.tx_count, 1);
    }
}
