//! Application BlockChain Interface (ABCI).
//!
//! Tendermint treats transactions as opaque bytes and delegates their
//! validation and execution to the application through this interface, just
//! like the real ABCI described in §II-A of the paper.

use serde::{Deserialize, Serialize};

use crate::block::{Header, RawTx};
use crate::hash::Hash;

/// A key/value attribute attached to an [`Event`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventAttribute {
    /// Attribute key, e.g. `packet_src_channel`.
    pub key: String,
    /// Attribute value.
    pub value: String,
}

/// An ABCI event emitted during transaction execution.
///
/// Relayers discover pending IBC packets by scanning these events (e.g.
/// `send_packet`, `write_acknowledgement`).
///
/// # Example
///
/// ```rust
/// use xcc_tendermint::abci::Event;
///
/// let ev = Event::new("send_packet")
///     .with_attr("packet_sequence", "1")
///     .with_attr("packet_src_channel", "channel-0");
/// assert_eq!(ev.attr("packet_sequence"), Some("1"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// The event type, e.g. `send_packet`.
    pub kind: String,
    /// Event attributes.
    pub attributes: Vec<EventAttribute>,
}

impl Event {
    /// Creates an event with no attributes.
    pub fn new(kind: impl Into<String>) -> Self {
        Event {
            kind: kind.into(),
            attributes: Vec::new(),
        }
    }

    /// Builder-style attribute addition.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push(EventAttribute {
            key: key.into(),
            value: value.into(),
        });
        self
    }

    /// Looks up the first attribute with the given key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.key == key)
            .map(|a| a.value.as_str())
    }

    /// Approximate encoded size of the event in bytes, used for the
    /// WebSocket frame-size accounting of §V.
    pub fn encoded_size(&self) -> usize {
        self.kind.len()
            + self
                .attributes
                .iter()
                .map(|a| a.key.len() + a.value.len() + 8)
                .sum::<usize>()
            + 16
    }
}

/// Result of `CheckTx`: admission control for the mempool.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckTxResult {
    /// Zero for success, non-zero application error code otherwise.
    pub code: u32,
    /// Human-readable log (error message on failure).
    pub log: String,
    /// Gas the transaction requests.
    pub gas_wanted: u64,
    /// The fee-paying account, used for per-account mempool accounting.
    pub sender: String,
    /// The account sequence number carried by the transaction.
    pub sequence: u64,
}

impl CheckTxResult {
    /// `true` when the transaction was accepted.
    pub fn is_ok(&self) -> bool {
        self.code == 0
    }
}

/// Result of `DeliverTx`: the outcome of executing one transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliverTxResult {
    /// Zero for success, non-zero application error code otherwise.
    pub code: u32,
    /// Human-readable log (error message on failure).
    pub log: String,
    /// Gas consumed by execution.
    pub gas_used: u64,
    /// Gas requested by the transaction.
    pub gas_wanted: u64,
    /// Events emitted during execution.
    pub events: Vec<Event>,
}

impl DeliverTxResult {
    /// `true` when execution succeeded.
    pub fn is_ok(&self) -> bool {
        self.code == 0
    }

    /// Approximate encoded size of the result (log plus events), used by the
    /// RPC response-size cost model.
    pub fn encoded_size(&self) -> usize {
        self.log.len() + self.events.iter().map(Event::encoded_size).sum::<usize>() + 64
    }
}

/// The interface a blockchain application exposes to the consensus engine.
///
/// The flow per block is: `begin_block`, `deliver_tx` for every transaction,
/// `end_block`, `commit`. `check_tx` runs against the mempool outside block
/// execution.
pub trait Application {
    /// Validates a transaction for mempool admission.
    fn check_tx(&mut self, tx: &RawTx) -> CheckTxResult;

    /// Signals the start of a new block.
    fn begin_block(&mut self, header: &Header);

    /// Executes one transaction against the application state.
    fn deliver_tx(&mut self, tx: &RawTx) -> DeliverTxResult;

    /// Signals the end of the block, before the state is committed.
    fn end_block(&mut self, height: u64);

    /// Commits the application state and returns the new application hash.
    fn commit(&mut self) -> Hash;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_builder_and_lookup() {
        let ev = Event::new("recv_packet")
            .with_attr("packet_sequence", "42")
            .with_attr("packet_dst_channel", "channel-1");
        assert_eq!(ev.attr("packet_sequence"), Some("42"));
        assert_eq!(ev.attr("missing"), None);
        assert!(ev.encoded_size() > "recv_packet".len());
    }

    #[test]
    fn check_and_deliver_result_flags() {
        let ok = CheckTxResult {
            code: 0,
            log: String::new(),
            gas_wanted: 10,
            sender: "a".into(),
            sequence: 0,
        };
        let err = CheckTxResult {
            code: 4,
            log: "unauthorized".into(),
            gas_wanted: 0,
            sender: "a".into(),
            sequence: 0,
        };
        assert!(ok.is_ok());
        assert!(!err.is_ok());

        let d = DeliverTxResult {
            code: 0,
            log: String::new(),
            gas_used: 5,
            gas_wanted: 10,
            events: vec![Event::new("x")],
        };
        assert!(d.is_ok());
        assert!(d.encoded_size() > 0);
    }
}
