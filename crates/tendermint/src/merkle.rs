//! Merkle tree over byte strings, as used for the `DataHash` of a block and
//! for simple store commitment proofs.
//!
//! The construction follows the RFC 6962 style used by Tendermint: leaves are
//! prefixed with `0x00` and inner nodes with `0x01` before hashing, and an
//! unbalanced tree splits at the largest power of two smaller than the number
//! of leaves.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::hash::{sha256, Hash, Sha256};

const LEAF_PREFIX: u8 = 0x00;
const INNER_PREFIX: u8 = 0x01;

fn leaf_hash(data: &[u8]) -> Hash {
    let mut h = Sha256::new();
    h.update(&[LEAF_PREFIX]);
    h.update(data);
    h.finalize()
}

fn inner_hash(left: &Hash, right: &Hash) -> Hash {
    let mut h = Sha256::new();
    h.update(&[INNER_PREFIX]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

/// The largest power of two strictly less than `n` (for `n >= 2`).
fn split_point(n: usize) -> usize {
    debug_assert!(n >= 2);
    let mut k = 1usize;
    while k * 2 < n {
        k *= 2;
    }
    k
}

/// Computes the Merkle root of a list of byte strings.
///
/// The root of an empty list is the hash of the empty string, matching
/// Tendermint's convention.
///
/// # Example
///
/// ```rust
/// use xcc_tendermint::merkle::simple_root;
///
/// let txs: Vec<Vec<u8>> = vec![b"tx1".to_vec(), b"tx2".to_vec()];
/// let root = simple_root(txs.iter().map(|t| t.as_slice()));
/// assert!(!root.is_zero());
/// ```
pub fn simple_root<'a, I>(leaves: I) -> Hash
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let hashed: Vec<Hash> = leaves.into_iter().map(leaf_hash).collect();
    root_of(&hashed)
}

fn root_of(leaves: &[Hash]) -> Hash {
    match leaves.len() {
        0 => sha256(b""),
        1 => leaves[0],
        n => {
            let k = split_point(n);
            let left = root_of(&leaves[..k]);
            let right = root_of(&leaves[k..]);
            inner_hash(&left, &right)
        }
    }
}

/// A Merkle inclusion proof for a single leaf.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Total number of leaves in the tree.
    pub total: usize,
    /// Sibling hashes from the leaf to the root.
    pub siblings: Vec<Hash>,
}

impl MerkleProof {
    /// Verifies that `leaf_data` at `self.index` is included in the tree with
    /// the given `root`.
    pub fn verify(&self, root: &Hash, leaf_data: &[u8]) -> bool {
        if self.index >= self.total {
            return false;
        }
        let computed = self.compute_root(leaf_hash(leaf_data), self.index, self.total, 0);
        match computed {
            Some((h, used)) if used == self.siblings.len() => &h == root,
            _ => false,
        }
    }

    /// Recomputes the root from the leaf, consuming siblings bottom-up.
    fn compute_root(
        &self,
        leaf: Hash,
        index: usize,
        total: usize,
        used: usize,
    ) -> Option<(Hash, usize)> {
        match total {
            0 => None,
            1 => Some((leaf, used)),
            _ => {
                let k = split_point(total);
                if index < k {
                    let (left, used) = self.compute_root(leaf, index, k, used)?;
                    let right = *self.siblings.get(used)?;
                    Some((inner_hash(&left, &right), used + 1))
                } else {
                    let (right, used) = self.compute_root(leaf, index - k, total - k, used)?;
                    let left = *self.siblings.get(used)?;
                    Some((inner_hash(&left, &right), used + 1))
                }
            }
        }
    }
}

/// Builds the root and an inclusion proof for the leaf at `index`.
///
/// Returns `None` if `index` is out of range.
pub fn prove<'a, I>(leaves: I, index: usize) -> Option<(Hash, MerkleProof)>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let hashed: Vec<Hash> = leaves.into_iter().map(leaf_hash).collect();
    if index >= hashed.len() {
        return None;
    }
    let mut siblings = Vec::new();
    let root = build_proof(&hashed, index, &mut siblings);
    Some((
        root,
        MerkleProof {
            index,
            total: hashed.len(),
            siblings,
        },
    ))
}

/// A fully materialised Merkle tree over a fixed leaf list.
///
/// Every subtree root is memoized at build time, so [`MerkleTree::root`] is
/// O(1) and each [`MerkleTree::prove`] is O(log n) lookups instead of the
/// O(n) re-hash that [`prove`] pays per call. The root and every proof are
/// bit-identical to [`simple_root`] / [`prove`] over the same leaves (pinned
/// by the equivalence test below) — callers that generate many proofs
/// against one snapshot of the leaves build the tree once and query it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    leaves: Vec<Hash>,
    /// Subtree root per `(lo, hi)` leaf range of the RFC 6962 recursion.
    subtrees: BTreeMap<(usize, usize), Hash>,
    root: Hash,
}

impl MerkleTree {
    /// Builds the tree, memoizing every subtree root.
    pub fn build<'a, I>(leaves: I) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let leaves: Vec<Hash> = leaves.into_iter().map(leaf_hash).collect();
        let mut subtrees = BTreeMap::new();
        let root = fill_subtrees(&leaves, 0, leaves.len(), &mut subtrees);
        MerkleTree {
            leaves,
            subtrees,
            root,
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// `true` when the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The Merkle root, equal to [`simple_root`] of the same leaves.
    pub fn root(&self) -> Hash {
        self.root
    }

    /// An inclusion proof for the leaf at `index`, equal to the proof
    /// [`prove`] builds. Returns `None` if `index` is out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaves.len() {
            return None;
        }
        let mut siblings = Vec::new();
        self.collect_siblings(0, self.leaves.len(), index, &mut siblings);
        Some(MerkleProof {
            index,
            total: self.leaves.len(),
            siblings,
        })
    }

    fn subtree(&self, lo: usize, hi: usize) -> Hash {
        self.subtrees
            .get(&(lo, hi))
            .copied()
            // Every range the proof recursion visits was filled at build
            // time; recompute defensively rather than panic if not.
            .unwrap_or_else(|| root_of(&self.leaves[lo..hi]))
    }

    /// Pushes the sibling hashes for `index` bottom-up, mirroring
    /// `build_proof`'s recursion with memoized subtree roots.
    fn collect_siblings(&self, lo: usize, hi: usize, index: usize, siblings: &mut Vec<Hash>) {
        if hi - lo <= 1 {
            return;
        }
        let k = split_point(hi - lo);
        if index < lo + k {
            self.collect_siblings(lo, lo + k, index, siblings);
            siblings.push(self.subtree(lo + k, hi));
        } else {
            self.collect_siblings(lo + k, hi, index, siblings);
            siblings.push(self.subtree(lo, lo + k));
        }
    }
}

/// Computes and memoizes the root of every subtree of `leaves[lo..hi]`.
fn fill_subtrees(
    leaves: &[Hash],
    lo: usize,
    hi: usize,
    out: &mut BTreeMap<(usize, usize), Hash>,
) -> Hash {
    let h = match hi - lo {
        0 => sha256(b""),
        1 => leaves[lo],
        n => {
            let k = split_point(n);
            let left = fill_subtrees(leaves, lo, lo + k, out);
            let right = fill_subtrees(leaves, lo + k, hi, out);
            inner_hash(&left, &right)
        }
    };
    out.insert((lo, hi), h);
    h
}

fn build_proof(leaves: &[Hash], index: usize, siblings: &mut Vec<Hash>) -> Hash {
    match leaves.len() {
        0 => sha256(b""),
        1 => leaves[0],
        n => {
            let k = split_point(n);
            if index < k {
                let left = build_proof(&leaves[..k], index, siblings);
                let right = root_of(&leaves[k..]);
                siblings.push(right);
                inner_hash(&left, &right)
            } else {
                let right = build_proof(&leaves[k..], index - k, siblings);
                let left = root_of(&leaves[..k]);
                siblings.push(left);
                inner_hash(&left, &right)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_root_is_empty_hash() {
        assert_eq!(simple_root(std::iter::empty()), sha256(b""));
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let root = simple_root([b"only".as_slice()]);
        assert_eq!(root, leaf_hash(b"only"));
    }

    #[test]
    fn root_changes_with_content_and_order() {
        let a = simple_root([b"x".as_slice(), b"y".as_slice()]);
        let b = simple_root([b"y".as_slice(), b"x".as_slice()]);
        let c = simple_root([b"x".as_slice(), b"z".as_slice()]);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn proofs_verify_for_all_indices_and_sizes() {
        for n in 1..=17 {
            let data = leaves(n);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let expected_root = simple_root(refs.iter().copied());
            for (i, leaf) in data.iter().enumerate() {
                let (root, proof) = prove(refs.iter().copied(), i).expect("valid index");
                assert_eq!(root, expected_root, "root mismatch for n={n}");
                assert!(proof.verify(&root, leaf), "proof failed for n={n}, i={i}");
            }
        }
    }

    #[test]
    fn proof_rejects_wrong_leaf_and_root() {
        let data = leaves(8);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let (root, proof) = prove(refs.iter().copied(), 3).unwrap();
        assert!(!proof.verify(&root, b"tampered"));
        assert!(!proof.verify(&sha256(b"other root"), &data[3]));
    }

    #[test]
    fn proof_with_out_of_range_index_is_none() {
        let data = leaves(4);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert!(prove(refs.iter().copied(), 4).is_none());
    }

    #[test]
    fn memoized_tree_matches_simple_root_and_prove_bit_for_bit() {
        for n in 0..=17 {
            let data = leaves(n);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let tree = MerkleTree::build(refs.iter().copied());
            assert_eq!(tree.len(), n);
            assert_eq!(
                tree.root(),
                simple_root(refs.iter().copied()),
                "root mismatch for n={n}"
            );
            for (i, leaf) in data.iter().enumerate() {
                let (root, reference) = prove(refs.iter().copied(), i).expect("valid index");
                let cached = tree.prove(i).expect("valid index");
                assert_eq!(cached, reference, "proof mismatch for n={n}, i={i}");
                assert!(cached.verify(&root, leaf));
            }
            assert!(tree.prove(n).is_none());
        }
    }

    #[test]
    fn proof_index_beyond_total_fails_verification() {
        let data = leaves(4);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let (root, mut proof) = prove(refs.iter().copied(), 1).unwrap();
        proof.index = 10;
        assert!(!proof.verify(&root, &data[1]));
    }
}
