//! Blocks: header, transaction data, evidence and last commit.
//!
//! The structure follows Fig. 1 of the paper: a block has a `Header`, a
//! `Data` field with application-specific transactions, an `Evidence` list
//! and a `LastCommit` carrying the previous height's pre-commit signatures.

use serde::{Deserialize, Serialize};

use crate::evidence::Evidence;
use crate::hash::{hash_fields, sha256, Hash};
use crate::merkle::simple_root;
use crate::validator::ValidatorAddress;
use crate::vote::Commit;
use xcc_sim::SimTime;

/// A raw, application-opaque transaction.
///
/// Tendermint treats transaction contents as opaque bytes; validation is the
/// application's responsibility (via ABCI).
///
/// The simulator distinguishes the in-memory payload from the *modelled wire
/// size*: applications may ship a compact host encoding while declaring the
/// byte size the transaction would have on the real JSON-RPC wire (via
/// [`RawTx::with_wire_len`]). All size accounting — mempool byte limits,
/// block-size limits, event-frame payloads — uses the wire size, so swapping
/// the host encoding never changes simulated behaviour.
///
/// # Example
///
/// ```rust
/// use xcc_tendermint::block::RawTx;
///
/// let tx = RawTx::new(vec![1, 2, 3]);
/// assert_eq!(tx.len(), 3);
/// assert!(!tx.hash().is_zero());
///
/// let modelled = RawTx::with_wire_len(vec![1, 2, 3], 120);
/// assert_eq!(modelled.len(), 120);
/// assert_eq!(modelled.as_bytes().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RawTx {
    bytes: Vec<u8>,
    wire_len: usize,
}

impl RawTx {
    /// Wraps raw transaction bytes whose wire size equals their length.
    pub fn new(bytes: Vec<u8>) -> Self {
        let wire_len = bytes.len();
        RawTx { bytes, wire_len }
    }

    /// Wraps a compact host payload together with the byte size the
    /// transaction occupies on the modelled wire.
    pub fn with_wire_len(bytes: Vec<u8>, wire_len: usize) -> Self {
        RawTx { bytes, wire_len }
    }

    /// The transaction hash (used as its identifier, as in `tx_search`).
    pub fn hash(&self) -> Hash {
        sha256(&self.bytes)
    }

    /// Size of the transaction in bytes on the modelled wire.
    pub fn len(&self) -> usize {
        self.wire_len
    }

    /// `true` for an empty transaction.
    pub fn is_empty(&self) -> bool {
        self.wire_len == 0
    }

    /// The raw payload bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl From<Vec<u8>> for RawTx {
    fn from(bytes: Vec<u8>) -> Self {
        RawTx::new(bytes)
    }
}

/// Identifies a block by the hash of its header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockId {
    /// Hash of the block's header.
    pub hash: Hash,
}

/// Versioning information carried in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Version {
    /// Block protocol version.
    pub block: u64,
    /// Application version.
    pub app: u64,
}

impl Default for Version {
    fn default() -> Self {
        Version { block: 11, app: 1 }
    }
}

/// A block header (Fig. 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Header {
    /// Protocol versions.
    pub version: Version,
    /// Identifier of the chain this block belongs to.
    pub chain_id: String,
    /// Height of this block.
    pub height: u64,
    /// Proposal time of this block.
    pub time: SimTime,
    /// Identifier of the previous block (zero hash at height 1).
    pub last_block_id: BlockId,
    /// Hash of the previous block's commit.
    pub last_commit_hash: Hash,
    /// Merkle root of the transactions in the `Data` field.
    pub data_hash: Hash,
    /// Hash of the validator set that produced this block.
    pub validators_hash: Hash,
    /// Hash of the validator set for the next height.
    pub next_validators_hash: Hash,
    /// Hash of the consensus parameters.
    pub consensus_hash: Hash,
    /// Application state root after executing the previous block.
    pub app_hash: Hash,
    /// Root of the previous block's transaction execution results.
    pub last_results_hash: Hash,
    /// Hash of the evidence included in this block.
    pub evidence_hash: Hash,
    /// Address of the block proposer.
    pub proposer_address: ValidatorAddress,
}

impl Header {
    /// The hash of the header, which identifies the block.
    pub fn hash(&self) -> Hash {
        hash_fields(&[
            b"header",
            self.chain_id.as_bytes(),
            &self.height.to_be_bytes(),
            &self.time.as_nanos().to_be_bytes(),
            self.last_block_id.hash.as_bytes(),
            self.last_commit_hash.as_bytes(),
            self.data_hash.as_bytes(),
            self.validators_hash.as_bytes(),
            self.next_validators_hash.as_bytes(),
            self.consensus_hash.as_bytes(),
            self.app_hash.as_bytes(),
            self.last_results_hash.as_bytes(),
            self.evidence_hash.as_bytes(),
            self.proposer_address.0.as_bytes(),
        ])
    }

    /// The block identifier derived from this header.
    pub fn block_id(&self) -> BlockId {
        BlockId { hash: self.hash() }
    }
}

/// The application-specific transaction payload of a block.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Data {
    /// Transactions in proposer order.
    pub txs: Vec<RawTx>,
}

impl Data {
    /// Merkle root of the transactions.
    pub fn hash(&self) -> Hash {
        simple_root(self.txs.iter().map(|t| t.as_bytes()))
    }

    /// Total size of all transactions in bytes.
    pub fn byte_size(&self) -> usize {
        self.txs.iter().map(RawTx::len).sum()
    }
}

/// A complete block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// The block header.
    pub header: Header,
    /// Transactions.
    pub data: Data,
    /// Evidence of validator misbehaviour (usually empty).
    pub evidence: Vec<Evidence>,
    /// Pre-commits for the previous block (`None` only at height 1).
    pub last_commit: Option<Commit>,
}

impl Block {
    /// The block's identifier.
    pub fn block_id(&self) -> BlockId {
        self.header.block_id()
    }

    /// Height shortcut.
    pub fn height(&self) -> u64 {
        self.header.height
    }

    /// Number of transactions in the block.
    pub fn tx_count(&self) -> usize {
        self.data.txs.len()
    }

    /// Approximate block size in bytes (transactions plus a fixed header and
    /// per-commit-signature overhead), used to enforce `max_bytes`.
    pub fn byte_size(&self) -> usize {
        const HEADER_OVERHEAD: usize = 512;
        const SIG_OVERHEAD: usize = 110;
        let commit_size = self
            .last_commit
            .as_ref()
            .map(|c| c.signatures.len() * SIG_OVERHEAD)
            .unwrap_or(0);
        HEADER_OVERHEAD + commit_size + self.data.byte_size()
    }

    /// Basic structural validation: the data hash and evidence hash in the
    /// header must match the block contents.
    pub fn validate_basic(&self) -> Result<(), BlockValidationError> {
        if self.header.data_hash != self.data.hash() {
            return Err(BlockValidationError::DataHashMismatch {
                height: self.header.height,
            });
        }
        let evidence_hash = evidence_hash(&self.evidence);
        if self.header.evidence_hash != evidence_hash {
            return Err(BlockValidationError::EvidenceHashMismatch {
                height: self.header.height,
            });
        }
        if self.header.height == 0 {
            return Err(BlockValidationError::ZeroHeight);
        }
        Ok(())
    }
}

/// Hash of an evidence list.
pub fn evidence_hash(evidence: &[Evidence]) -> Hash {
    let encoded: Vec<Vec<u8>> = evidence.iter().map(Evidence::canonical_bytes).collect();
    simple_root(encoded.iter().map(|e| e.as_slice()))
}

/// Errors detected by [`Block::validate_basic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockValidationError {
    /// The header's `DataHash` does not match the transactions.
    DataHashMismatch {
        /// Height of the offending block.
        height: u64,
    },
    /// The header's `EvidenceHash` does not match the evidence list.
    EvidenceHashMismatch {
        /// Height of the offending block.
        height: u64,
    },
    /// Blocks start at height 1; height 0 is invalid.
    ZeroHeight,
}

impl std::fmt::Display for BlockValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockValidationError::DataHashMismatch { height } => {
                write!(f, "data hash mismatch in block at height {height}")
            }
            BlockValidationError::EvidenceHashMismatch { height } => {
                write!(f, "evidence hash mismatch in block at height {height}")
            }
            BlockValidationError::ZeroHeight => write!(f, "block height must be positive"),
        }
    }
}

impl std::error::Error for BlockValidationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::ValidatorAddress;

    fn sample_header(height: u64, data: &Data) -> Header {
        Header {
            version: Version::default(),
            chain_id: "test-chain".to_string(),
            height,
            time: SimTime::from_secs(height * 5),
            last_block_id: BlockId { hash: Hash::ZERO },
            last_commit_hash: Hash::ZERO,
            data_hash: data.hash(),
            validators_hash: Hash::ZERO,
            next_validators_hash: Hash::ZERO,
            consensus_hash: Hash::ZERO,
            app_hash: Hash::ZERO,
            last_results_hash: Hash::ZERO,
            evidence_hash: evidence_hash(&[]),
            proposer_address: ValidatorAddress::from_name("val-0"),
        }
    }

    #[test]
    fn raw_tx_hash_identifies_contents() {
        let a = RawTx::new(vec![1, 2, 3]);
        let b = RawTx::new(vec![1, 2, 4]);
        assert_ne!(a.hash(), b.hash());
        assert_eq!(a.hash(), RawTx::new(vec![1, 2, 3]).hash());
    }

    #[test]
    fn header_hash_changes_with_any_field() {
        let data = Data {
            txs: vec![RawTx::new(vec![9])],
        };
        let h1 = sample_header(1, &data);
        let mut h2 = h1.clone();
        assert_eq!(h1.hash(), h2.hash());
        h2.height = 2;
        assert_ne!(h1.hash(), h2.hash());
        let mut h3 = h1.clone();
        h3.app_hash = sha256(b"state");
        assert_ne!(h1.hash(), h3.hash());
    }

    #[test]
    fn validate_basic_accepts_consistent_block() {
        let data = Data {
            txs: vec![RawTx::new(vec![1]), RawTx::new(vec![2])],
        };
        let block = Block {
            header: sample_header(3, &data),
            data,
            evidence: vec![],
            last_commit: None,
        };
        assert!(block.validate_basic().is_ok());
        assert_eq!(block.tx_count(), 2);
        assert_eq!(block.height(), 3);
    }

    #[test]
    fn validate_basic_rejects_tampered_data() {
        let data = Data {
            txs: vec![RawTx::new(vec![1])],
        };
        let header = sample_header(3, &data);
        let tampered = Block {
            header,
            data: Data {
                txs: vec![RawTx::new(vec![99])],
            },
            evidence: vec![],
            last_commit: None,
        };
        assert!(matches!(
            tampered.validate_basic(),
            Err(BlockValidationError::DataHashMismatch { height: 3 })
        ));
    }

    #[test]
    fn validate_basic_rejects_zero_height() {
        let data = Data::default();
        let block = Block {
            header: sample_header(0, &data),
            data,
            evidence: vec![],
            last_commit: None,
        };
        assert_eq!(
            block.validate_basic(),
            Err(BlockValidationError::ZeroHeight)
        );
    }

    #[test]
    fn byte_size_grows_with_transactions() {
        let empty = Block {
            header: sample_header(1, &Data::default()),
            data: Data::default(),
            evidence: vec![],
            last_commit: None,
        };
        let data = Data {
            txs: vec![RawTx::new(vec![0u8; 1000])],
        };
        let full = Block {
            header: sample_header(1, &data),
            data,
            evidence: vec![],
            last_commit: None,
        };
        assert!(full.byte_size() >= empty.byte_size() + 1000);
    }

    #[test]
    fn validation_error_display() {
        let err = BlockValidationError::DataHashMismatch { height: 7 };
        assert!(err.to_string().contains("height 7"));
    }
}
