//! Validators and validator sets.

use serde::{Deserialize, Serialize};

use crate::hash::{hash_fields, Hash};

/// The address identifying a validator (derived from its public key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ValidatorAddress(pub Hash);

impl ValidatorAddress {
    /// Derives an address from a human-readable validator name.
    pub fn from_name(name: &str) -> Self {
        ValidatorAddress(hash_fields(&[b"validator-address", name.as_bytes()]))
    }

    /// Short printable form of the address.
    pub fn short(&self) -> String {
        self.0.short()
    }
}

impl std::fmt::Display for ValidatorAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.short())
    }
}

/// A consensus validator with its voting power.
///
/// # Example
///
/// ```rust
/// use xcc_tendermint::validator::Validator;
///
/// let v = Validator::new("val-0", 10);
/// assert_eq!(v.voting_power, 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Validator {
    /// The validator's address.
    pub address: ValidatorAddress,
    /// Human-readable name (moniker).
    pub name: String,
    /// Voting power; proportional to its weight in consensus.
    pub voting_power: u64,
}

impl Validator {
    /// Creates a validator from a moniker and voting power.
    pub fn new(name: impl Into<String>, voting_power: u64) -> Self {
        let name = name.into();
        Validator {
            address: ValidatorAddress::from_name(&name),
            name,
            voting_power,
        }
    }
}

/// An ordered set of validators with deterministic proposer rotation.
///
/// # Example
///
/// ```rust
/// use xcc_tendermint::validator::ValidatorSet;
///
/// let set = ValidatorSet::with_equal_power(5, 10);
/// assert_eq!(set.len(), 5);
/// assert_eq!(set.total_power(), 50);
/// // Two thirds of 50 is 33.33…, so quorum needs strictly more than that.
/// assert_eq!(set.quorum_threshold(), 34);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidatorSet {
    validators: Vec<Validator>,
}

impl ValidatorSet {
    /// Creates a set from explicit validators.
    ///
    /// # Panics
    ///
    /// Panics if `validators` is empty or total power is zero.
    pub fn new(validators: Vec<Validator>) -> Self {
        assert!(!validators.is_empty(), "validator set cannot be empty");
        let set = ValidatorSet { validators };
        assert!(
            set.total_power() > 0,
            "validator set must have positive power"
        );
        set
    }

    /// Creates `count` validators named `val-0 .. val-{count-1}` with equal
    /// voting power — the shape used throughout the paper's testnets.
    pub fn with_equal_power(count: usize, power_each: u64) -> Self {
        assert!(count > 0, "validator set cannot be empty");
        ValidatorSet::new(
            (0..count)
                .map(|i| Validator::new(format!("val-{i}"), power_each))
                .collect(),
        )
    }

    /// Number of validators.
    pub fn len(&self) -> usize {
        self.validators.len()
    }

    /// `true` when the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.validators.is_empty()
    }

    /// The validators in order.
    pub fn validators(&self) -> &[Validator] {
        &self.validators
    }

    /// Looks up a validator by address.
    pub fn get(&self, address: &ValidatorAddress) -> Option<&Validator> {
        self.validators.iter().find(|v| &v.address == address)
    }

    /// Sum of all voting power.
    pub fn total_power(&self) -> u64 {
        self.validators.iter().map(|v| v.voting_power).sum()
    }

    /// The minimum accumulated power a commit needs: strictly more than 2/3
    /// of the total voting power.
    pub fn quorum_threshold(&self) -> u64 {
        self.total_power() * 2 / 3 + 1
    }

    /// The maximum voting power Byzantine validators may hold while the
    /// protocol still guarantees safety (strictly less than 1/3).
    pub fn fault_tolerance(&self) -> u64 {
        (self.total_power() - 1) / 3
    }

    /// The proposer for a given height and round (weighted round-robin,
    /// simplified to deterministic rotation).
    pub fn proposer(&self, height: u64, round: u32) -> &Validator {
        let idx = ((height.wrapping_add(u64::from(round))) % self.validators.len() as u64) as usize;
        &self.validators[idx]
    }

    /// Hash of the validator set, recorded in block headers.
    pub fn hash(&self) -> Hash {
        let mut fields: Vec<Vec<u8>> = Vec::with_capacity(self.validators.len());
        for v in &self.validators {
            let mut bytes = v.address.0.as_bytes().to_vec();
            bytes.extend_from_slice(&v.voting_power.to_be_bytes());
            fields.push(bytes);
        }
        let refs: Vec<&[u8]> = fields.iter().map(|f| f.as_slice()).collect();
        hash_fields(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_power_set_has_expected_totals() {
        let set = ValidatorSet::with_equal_power(4, 25);
        assert_eq!(set.total_power(), 100);
        assert_eq!(set.quorum_threshold(), 67);
        assert_eq!(set.fault_tolerance(), 33);
    }

    #[test]
    fn quorum_threshold_for_five_validators() {
        // The paper's testnet: 5 validators. 4 of 5 is a quorum, 3 is not.
        let set = ValidatorSet::with_equal_power(5, 1);
        assert_eq!(set.quorum_threshold(), 4);
        assert_eq!(set.fault_tolerance(), 1);
    }

    #[test]
    fn proposer_rotates_with_height_and_round() {
        let set = ValidatorSet::with_equal_power(5, 1);
        let p1 = set.proposer(1, 0).address;
        let p2 = set.proposer(2, 0).address;
        let p1r1 = set.proposer(1, 1).address;
        assert_ne!(p1, p2);
        assert_eq!(p2, p1r1);
        // Rotation wraps around.
        assert_eq!(set.proposer(1, 0).address, set.proposer(6, 0).address);
    }

    #[test]
    fn validator_lookup_by_address() {
        let set = ValidatorSet::with_equal_power(3, 1);
        let addr = set.validators()[1].address;
        assert_eq!(set.get(&addr).unwrap().name, "val-1");
        assert!(set.get(&ValidatorAddress::from_name("unknown")).is_none());
    }

    #[test]
    fn hash_depends_on_membership_and_power() {
        let a = ValidatorSet::with_equal_power(3, 1);
        let b = ValidatorSet::with_equal_power(3, 2);
        let c = ValidatorSet::with_equal_power(4, 1);
        assert_ne!(a.hash(), b.hash());
        assert_ne!(a.hash(), c.hash());
        assert_eq!(a.hash(), ValidatorSet::with_equal_power(3, 1).hash());
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_set_is_rejected() {
        ValidatorSet::new(vec![]);
    }

    #[test]
    fn address_display_is_short_hex() {
        let v = Validator::new("val-7", 1);
        assert_eq!(v.address.to_string().len(), 8);
    }
}
