//! Votes, commit signatures and commits.
//!
//! Signatures are simulated: a validator's signature over a block is a keyed
//! digest that anyone can recompute and verify. This preserves the structure
//! of Tendermint's `LastCommit` field (Fig. 1 of the paper) without pulling
//! in real public-key cryptography, whose cost is irrelevant to the paper's
//! findings.

use serde::{Deserialize, Serialize};

use crate::block::BlockId;
use crate::hash::{hash_fields, Hash};
use crate::validator::ValidatorAddress;
use xcc_sim::SimTime;

/// The two voting stages of a Tendermint round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VoteType {
    /// First stage: pre-vote.
    Prevote,
    /// Second stage: pre-commit.
    Precommit,
}

/// Whether a validator's commit signature is for the committed block, for a
/// different block, or absent — mirroring Tendermint's `BlockIDFlag`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockIdFlag {
    /// The validator voted for the block that was committed.
    Commit,
    /// The validator voted nil or for a different block.
    Nil,
    /// The validator did not cast a vote.
    Absent,
}

/// A single vote cast by a validator during consensus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vote {
    /// The voting stage.
    pub vote_type: VoteType,
    /// Block height the vote applies to.
    pub height: u64,
    /// Consensus round within the height.
    pub round: u32,
    /// The block voted for, or `None` for a nil vote.
    pub block_id: Option<BlockId>,
    /// The voter.
    pub validator: ValidatorAddress,
    /// When the vote was cast.
    pub timestamp: SimTime,
}

impl Vote {
    /// The simulated signature over this vote.
    pub fn signature(&self) -> Hash {
        sign_vote(
            &self.validator,
            self.height,
            self.round,
            self.block_id.as_ref(),
        )
    }
}

/// Computes the simulated signature a validator produces for a vote.
pub fn sign_vote(
    validator: &ValidatorAddress,
    height: u64,
    round: u32,
    block_id: Option<&BlockId>,
) -> Hash {
    let block_hash = block_id.map(|b| b.hash).unwrap_or(Hash::ZERO);
    hash_fields(&[
        b"vote-signature",
        validator.0.as_bytes(),
        &height.to_be_bytes(),
        &round.to_be_bytes(),
        block_hash.as_bytes(),
    ])
}

/// One validator's entry in a block's `LastCommit`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitSig {
    /// Whether the validator signed the committed block, another block, or
    /// nothing.
    pub flag: BlockIdFlag,
    /// The validator's address.
    pub validator: ValidatorAddress,
    /// When the validator signed.
    pub timestamp: SimTime,
    /// The simulated signature (all zero when absent).
    pub signature: Hash,
}

impl CommitSig {
    /// A commit signature for the committed block.
    pub fn for_block(
        validator: ValidatorAddress,
        height: u64,
        round: u32,
        block_id: &BlockId,
        timestamp: SimTime,
    ) -> Self {
        CommitSig {
            flag: BlockIdFlag::Commit,
            validator,
            timestamp,
            signature: sign_vote(&validator, height, round, Some(block_id)),
        }
    }

    /// An absent commit signature (validator did not vote).
    pub fn absent(validator: ValidatorAddress) -> Self {
        CommitSig {
            flag: BlockIdFlag::Absent,
            validator,
            timestamp: SimTime::ZERO,
            signature: Hash::ZERO,
        }
    }
}

/// The aggregate of pre-commit votes that finalised a block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Commit {
    /// Height of the committed block.
    pub height: u64,
    /// Round in which the block was committed.
    pub round: u32,
    /// Identifier of the committed block.
    pub block_id: BlockId,
    /// One entry per validator in the set, in validator-set order.
    pub signatures: Vec<CommitSig>,
}

impl Commit {
    /// Hash of the commit, recorded as `LastCommitHash` in the next header.
    pub fn hash(&self) -> Hash {
        let mut fields: Vec<Vec<u8>> = Vec::with_capacity(self.signatures.len() + 1);
        fields.push(self.block_id.hash.as_bytes().to_vec());
        for sig in &self.signatures {
            let mut bytes = sig.validator.0.as_bytes().to_vec();
            bytes.extend_from_slice(sig.signature.as_bytes());
            bytes.push(match sig.flag {
                BlockIdFlag::Commit => 2,
                BlockIdFlag::Nil => 1,
                BlockIdFlag::Absent => 0,
            });
            fields.push(bytes);
        }
        let refs: Vec<&[u8]> = fields.iter().map(|f| f.as_slice()).collect();
        hash_fields(&refs)
    }

    /// Number of signatures that committed to the block.
    pub fn committed_count(&self) -> usize {
        self.signatures
            .iter()
            .filter(|s| s.flag == BlockIdFlag::Commit)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_id(n: u8) -> BlockId {
        BlockId {
            hash: hash_fields(&[b"block", &[n]]),
        }
    }

    #[test]
    fn vote_signature_is_deterministic_and_binding() {
        let val = ValidatorAddress::from_name("val-0");
        let v1 = Vote {
            vote_type: VoteType::Precommit,
            height: 5,
            round: 0,
            block_id: Some(block_id(1)),
            validator: val,
            timestamp: SimTime::from_secs(1),
        };
        let mut v2 = v1.clone();
        assert_eq!(v1.signature(), v2.signature());
        v2.block_id = Some(block_id(2));
        assert_ne!(v1.signature(), v2.signature());
        v2.block_id = None;
        assert_ne!(v1.signature(), v2.signature());
    }

    #[test]
    fn commit_sig_constructors() {
        let val = ValidatorAddress::from_name("val-1");
        let sig = CommitSig::for_block(val, 3, 0, &block_id(7), SimTime::from_secs(2));
        assert_eq!(sig.flag, BlockIdFlag::Commit);
        assert_eq!(sig.signature, sign_vote(&val, 3, 0, Some(&block_id(7))));
        let absent = CommitSig::absent(val);
        assert_eq!(absent.flag, BlockIdFlag::Absent);
        assert!(absent.signature.is_zero());
    }

    #[test]
    fn commit_hash_covers_signatures() {
        let vals: Vec<ValidatorAddress> = (0..4)
            .map(|i| ValidatorAddress::from_name(&format!("val-{i}")))
            .collect();
        let make = |flags: &[BlockIdFlag]| Commit {
            height: 9,
            round: 0,
            block_id: block_id(3),
            signatures: vals
                .iter()
                .zip(flags)
                .map(|(v, f)| match f {
                    BlockIdFlag::Commit => {
                        CommitSig::for_block(*v, 9, 0, &block_id(3), SimTime::ZERO)
                    }
                    _ => CommitSig::absent(*v),
                })
                .collect(),
        };
        let all = make(&[BlockIdFlag::Commit; 4]);
        let three = make(&[
            BlockIdFlag::Commit,
            BlockIdFlag::Commit,
            BlockIdFlag::Commit,
            BlockIdFlag::Absent,
        ]);
        assert_ne!(all.hash(), three.hash());
        assert_eq!(all.committed_count(), 4);
        assert_eq!(three.committed_count(), 3);
    }
}
