//! Tendermint-like BFT blockchain substrate.
//!
//! This crate provides the consensus-layer building blocks the paper's
//! testbed runs on: block structures (header, data, evidence, last commit —
//! Fig. 1 of the paper), validator sets with quorum accounting, a consensus
//! timing model calibrated to the latencies the paper cites (§III-C), a
//! bounded FIFO mempool, an ABCI-style application interface, a full node
//! that produces and executes blocks, and light-client verification used by
//! the IBC client layer.
//!
//! Everything here is a *pure state machine*: nodes never sleep or spawn
//! threads. The experiment driver advances them in virtual time, which is
//! what makes the reproduction deterministic and fast.
//!
//! # Example
//!
//! ```rust
//! use xcc_tendermint::abci::{Application, CheckTxResult, DeliverTxResult};
//! use xcc_tendermint::block::{Header, RawTx};
//! use xcc_tendermint::hash::Hash;
//! use xcc_tendermint::mempool::MempoolConfig;
//! use xcc_tendermint::node::Node;
//! use xcc_tendermint::params::{ConsensusParams, ConsensusTimingModel};
//! use xcc_tendermint::validator::ValidatorSet;
//! use xcc_sim::SimTime;
//!
//! struct NoopApp;
//! impl Application for NoopApp {
//!     fn check_tx(&mut self, _tx: &RawTx) -> CheckTxResult {
//!         CheckTxResult { code: 0, log: String::new(), gas_wanted: 1, sender: "a".into(), sequence: 0 }
//!     }
//!     fn begin_block(&mut self, _header: &Header) {}
//!     fn deliver_tx(&mut self, _tx: &RawTx) -> DeliverTxResult {
//!         DeliverTxResult { code: 0, log: String::new(), gas_used: 1, gas_wanted: 1, events: vec![] }
//!     }
//!     fn end_block(&mut self, _height: u64) {}
//!     fn commit(&mut self) -> Hash { Hash::ZERO }
//! }
//!
//! let mut node = Node::new(
//!     "demo-chain",
//!     ValidatorSet::with_equal_power(5, 10),
//!     ConsensusParams::default(),
//!     ConsensusTimingModel::default(),
//!     MempoolConfig::default(),
//!     NoopApp,
//! );
//! node.submit_tx(RawTx::new(b"hello".to_vec()), SimTime::ZERO).unwrap();
//! let outcome = node.produce_block(SimTime::from_secs(5));
//! assert_eq!(outcome.height, 1);
//! assert_eq!(outcome.tx_count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abci;
pub mod block;
pub mod evidence;
pub mod hash;
pub mod light;
pub mod mempool;
pub mod merkle;
pub mod node;
pub mod params;
pub mod validator;
pub mod vote;
