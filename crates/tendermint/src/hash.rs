//! SHA-256 hashing and the [`Hash`](struct@Hash) digest type.
//!
//! The workspace deliberately avoids external cryptography crates; this is a
//! from-scratch FIPS 180-4 SHA-256 implementation used for transaction
//! hashes, Merkle roots, block identifiers and IBC packet commitments.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 256-bit digest.
///
/// # Example
///
/// ```rust
/// use xcc_tendermint::hash::{sha256, Hash};
///
/// let digest: Hash = sha256(b"abc");
/// assert_eq!(
///     digest.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Hash(pub [u8; 32]);

impl Hash {
    /// The all-zero digest, used as a sentinel for "no hash".
    pub const ZERO: Hash = Hash([0u8; 32]);

    /// Returns the raw bytes of the digest.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lower-case hexadecimal rendering of the digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
        }
        s
    }

    /// A short 8-character prefix of the hex rendering, for logs.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }

    /// `true` if this is the all-zero sentinel.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }

    /// The first eight bytes of the digest interpreted as a big-endian `u64`,
    /// handy for deterministic pseudo-random decisions derived from hashes.
    pub fn to_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("slice of length 8"))
    }
}

impl fmt::Debug for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash({})", self.short())
    }
}

impl fmt::Display for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<[u8; 32]> for Hash {
    fn from(bytes: [u8; 32]) -> Self {
        Hash(bytes)
    }
}

impl AsRef<[u8]> for Hash {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```rust
/// use xcc_tendermint::hash::{sha256, Sha256};
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// assert_eq!(hasher.finalize(), sha256(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: Vec<u8>,
    length_bits: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: Vec::with_capacity(64),
            length_bits: 0,
        }
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.length_bits = self.length_bits.wrapping_add((data.len() as u64) * 8);
        self.buffer.extend_from_slice(data);
        while self.buffer.len() >= 64 {
            let block: [u8; 64] = self.buffer[..64].try_into().expect("64-byte block");
            compress(&mut self.state, &block);
            self.buffer.drain(..64);
        }
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(mut self) -> Hash {
        let len_bits = self.length_bits;
        self.buffer.push(0x80);
        while self.buffer.len() % 64 != 56 {
            self.buffer.push(0);
        }
        self.buffer.extend_from_slice(&len_bits.to_be_bytes());
        let mut state = self.state;
        for chunk in self.buffer.chunks_exact(64) {
            let block: [u8; 64] = chunk.try_into().expect("64-byte block");
            compress(&mut state, &block);
        }
        let mut out = [0u8; 32];
        for (i, word) in state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash(out)
    }
}

fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Convenience helper hashing `data` in one call.
pub fn sha256(data: &[u8]) -> Hash {
    let mut hasher = Sha256::new();
    hasher.update(data);
    hasher.finalize()
}

/// Hashes the concatenation of several byte slices, with a one-byte length
/// domain separator between fields to avoid ambiguity.
pub fn hash_fields(fields: &[&[u8]]) -> Hash {
    let mut hasher = Sha256::new();
    for field in fields {
        hasher.update(&(field.len() as u64).to_be_bytes());
        hasher.update(field);
    }
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_448_bits() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn long_input_matches_incremental() {
        let data = vec![0xabu8; 1_000];
        let one_shot = sha256(&data);
        let mut h = Sha256::new();
        for chunk in data.chunks(17) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), one_shot);
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hash_fields_is_not_ambiguous() {
        // Without length prefixes these two would collide.
        let a = hash_fields(&[b"ab", b"c"]);
        let b = hash_fields(&[b"a", b"bc"]);
        assert_ne!(a, b);
    }

    #[test]
    fn hash_type_helpers() {
        let h = sha256(b"abc");
        assert_eq!(h.short().len(), 8);
        assert!(!h.is_zero());
        assert!(Hash::ZERO.is_zero());
        assert_eq!(format!("{h}"), h.to_hex());
        assert_eq!(format!("{h:?}"), format!("Hash({})", h.short()));
        assert_eq!(h.to_u64(), u64::from_be_bytes(h.0[..8].try_into().unwrap()));
    }
}
