//! Evidence of validator misbehaviour.
//!
//! The `Evidence` field of a block carries proofs of protocol violations that
//! the application can use to punish validators (slashing). It is empty in
//! the absence of misbehaviour — which is the common case in the paper's
//! experiments — but the structure is implemented fully so that fault
//! injection tests can exercise it.

use serde::{Deserialize, Serialize};

use crate::hash::{hash_fields, Hash};
use crate::validator::ValidatorAddress;
use crate::vote::Vote;

/// Evidence that a validator misbehaved.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Evidence {
    /// The validator signed two different blocks at the same height and
    /// round (equivocation).
    DuplicateVote {
        /// The first conflicting vote.
        vote_a: Vote,
        /// The second conflicting vote.
        vote_b: Vote,
    },
    /// A light-client attack: the validator signed a header that conflicts
    /// with the canonical chain.
    LightClientAttack {
        /// The offending validator.
        validator: ValidatorAddress,
        /// Height of the conflicting header.
        height: u64,
        /// Hash of the conflicting header.
        conflicting_header_hash: Hash,
    },
}

impl Evidence {
    /// The validator the evidence accuses.
    pub fn offender(&self) -> ValidatorAddress {
        match self {
            Evidence::DuplicateVote { vote_a, .. } => vote_a.validator,
            Evidence::LightClientAttack { validator, .. } => *validator,
        }
    }

    /// The height at which the misbehaviour occurred.
    pub fn height(&self) -> u64 {
        match self {
            Evidence::DuplicateVote { vote_a, .. } => vote_a.height,
            Evidence::LightClientAttack { height, .. } => *height,
        }
    }

    /// Checks the internal consistency of the evidence.
    ///
    /// Duplicate-vote evidence is valid only if both votes come from the same
    /// validator, at the same height and round, for *different* blocks, with
    /// signatures that verify.
    pub fn is_valid(&self) -> bool {
        match self {
            Evidence::DuplicateVote { vote_a, vote_b } => {
                vote_a.validator == vote_b.validator
                    && vote_a.height == vote_b.height
                    && vote_a.round == vote_b.round
                    && vote_a.block_id != vote_b.block_id
                    && vote_a.signature()
                        == crate::vote::sign_vote(
                            &vote_a.validator,
                            vote_a.height,
                            vote_a.round,
                            vote_a.block_id.as_ref(),
                        )
                    && vote_b.signature()
                        == crate::vote::sign_vote(
                            &vote_b.validator,
                            vote_b.height,
                            vote_b.round,
                            vote_b.block_id.as_ref(),
                        )
            }
            Evidence::LightClientAttack {
                conflicting_header_hash,
                ..
            } => !conflicting_header_hash.is_zero(),
        }
    }

    /// Canonical byte encoding used for hashing into the block's
    /// `EvidenceHash`.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        match self {
            Evidence::DuplicateVote { vote_a, vote_b } => hash_fields(&[
                b"duplicate-vote",
                vote_a.validator.0.as_bytes(),
                &vote_a.height.to_be_bytes(),
                &vote_a.round.to_be_bytes(),
                vote_a.signature().as_bytes(),
                vote_b.signature().as_bytes(),
            ])
            .as_bytes()
            .to_vec(),
            Evidence::LightClientAttack {
                validator,
                height,
                conflicting_header_hash,
            } => hash_fields(&[
                b"light-client-attack",
                validator.0.as_bytes(),
                &height.to_be_bytes(),
                conflicting_header_hash.as_bytes(),
            ])
            .as_bytes()
            .to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockId;
    use crate::hash::sha256;
    use crate::vote::VoteType;
    use xcc_sim::SimTime;

    fn vote(val: &str, height: u64, block: u8) -> Vote {
        Vote {
            vote_type: VoteType::Precommit,
            height,
            round: 0,
            block_id: Some(BlockId {
                hash: sha256(&[block]),
            }),
            validator: ValidatorAddress::from_name(val),
            timestamp: SimTime::ZERO,
        }
    }

    #[test]
    fn duplicate_vote_evidence_is_valid_for_conflicting_votes() {
        let ev = Evidence::DuplicateVote {
            vote_a: vote("val-0", 10, 1),
            vote_b: vote("val-0", 10, 2),
        };
        assert!(ev.is_valid());
        assert_eq!(ev.height(), 10);
        assert_eq!(ev.offender(), ValidatorAddress::from_name("val-0"));
    }

    #[test]
    fn duplicate_vote_same_block_is_invalid() {
        let ev = Evidence::DuplicateVote {
            vote_a: vote("val-0", 10, 1),
            vote_b: vote("val-0", 10, 1),
        };
        assert!(!ev.is_valid());
    }

    #[test]
    fn duplicate_vote_different_validators_is_invalid() {
        let ev = Evidence::DuplicateVote {
            vote_a: vote("val-0", 10, 1),
            vote_b: vote("val-1", 10, 2),
        };
        assert!(!ev.is_valid());
    }

    #[test]
    fn light_client_attack_requires_nonzero_header() {
        let good = Evidence::LightClientAttack {
            validator: ValidatorAddress::from_name("val-2"),
            height: 4,
            conflicting_header_hash: sha256(b"fork"),
        };
        let bad = Evidence::LightClientAttack {
            validator: ValidatorAddress::from_name("val-2"),
            height: 4,
            conflicting_header_hash: Hash::ZERO,
        };
        assert!(good.is_valid());
        assert!(!bad.is_valid());
    }

    #[test]
    fn canonical_bytes_distinguish_evidence() {
        let a = Evidence::DuplicateVote {
            vote_a: vote("val-0", 10, 1),
            vote_b: vote("val-0", 10, 2),
        };
        let b = Evidence::DuplicateVote {
            vote_a: vote("val-0", 11, 1),
            vote_b: vote("val-0", 11, 2),
        };
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
    }
}
