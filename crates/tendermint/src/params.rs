//! Consensus parameters and the consensus timing model.

use serde::{Deserialize, Serialize};

use crate::hash::{hash_fields, Hash};
use xcc_sim::SimDuration;

/// Consensus parameters governing block production.
///
/// The defaults mirror the paper's experiment settings: a minimum interval of
/// five seconds between consecutive blocks and generous size limits that fit
/// roughly fifty 100-message transfer transactions per block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsensusParams {
    /// Minimum interval between the creation of two consecutive blocks.
    pub min_block_interval: SimDuration,
    /// Maximum total size of transactions in a block, in bytes.
    pub max_block_bytes: usize,
    /// Maximum total gas wanted by the transactions in a block.
    pub max_block_gas: u64,
    /// Maximum number of transactions per block (0 disables the limit).
    pub max_block_txs: usize,
}

impl Default for ConsensusParams {
    fn default() -> Self {
        ConsensusParams {
            min_block_interval: SimDuration::from_secs(5),
            // ~22 MB, the Tendermint default order of magnitude.
            max_block_bytes: 22 * 1024 * 1024,
            // Fits ~50 transfer transactions of 100 messages (3.67M gas each),
            // matching the ~5,000 transfers/block ceiling observed in Fig. 6.
            max_block_gas: 190_000_000,
            max_block_txs: 0,
        }
    }
}

impl ConsensusParams {
    /// Hash of the parameters, recorded in block headers.
    pub fn hash(&self) -> Hash {
        hash_fields(&[
            b"consensus-params",
            &self.min_block_interval.as_nanos().to_be_bytes(),
            &(self.max_block_bytes as u64).to_be_bytes(),
            &self.max_block_gas.to_be_bytes(),
            &(self.max_block_txs as u64).to_be_bytes(),
        ])
    }
}

/// Models how long consensus and block processing take.
///
/// The paper argues (§III-C) that consensus latency is a second-order effect:
/// roughly 25 ms per block for 5 validators and 110 ms for 128 validators,
/// i.e. about 1% of a complete cross-chain transfer. Block *processing* time,
/// however, grows with the number of included transactions and with the
/// backlog of pending mempool transactions that must be rechecked after every
/// commit, and is what stretches the block interval at high input rates
/// (Fig. 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsensusTimingModel {
    /// Fixed per-round consensus cost independent of the validator count.
    pub round_base: SimDuration,
    /// Additional consensus cost per validator (vote gossip and verification).
    pub per_validator: SimDuration,
    /// Execution cost per included transaction message.
    pub per_tx_message: SimDuration,
    /// Cost to recheck one pending mempool transaction after a commit.
    pub per_pending_recheck: SimDuration,
    /// Proposal dissemination cost per kilobyte of block data.
    pub per_block_kilobyte: SimDuration,
}

impl Default for ConsensusTimingModel {
    fn default() -> Self {
        ConsensusTimingModel {
            // Calibrated so 5 validators => ~25 ms, 128 validators => ~110 ms.
            round_base: SimDuration::from_micros(21_500),
            per_validator: SimDuration::from_micros(690),
            per_tx_message: SimDuration::from_micros(150),
            per_pending_recheck: SimDuration::from_micros(800),
            per_block_kilobyte: SimDuration::from_micros(6),
        }
    }
}

impl ConsensusTimingModel {
    /// Latency of one consensus round for the given validator count.
    pub fn consensus_latency(&self, validator_count: usize) -> SimDuration {
        self.round_base + self.per_validator * validator_count as u64
    }

    /// Time spent executing and committing a block with the given contents,
    /// plus rechecking the remaining mempool backlog.
    pub fn block_processing_time(
        &self,
        included_messages: u64,
        block_bytes: usize,
        pending_after: usize,
    ) -> SimDuration {
        self.per_tx_message * included_messages
            + self.per_block_kilobyte * (block_bytes as u64 / 1024)
            + self.per_pending_recheck * pending_after as u64
    }

    /// Total time between two consecutive block commits: the minimum interval
    /// stretched by consensus latency and block processing when they exceed
    /// the configured floor.
    pub fn block_interval(
        &self,
        params: &ConsensusParams,
        validator_count: usize,
        included_messages: u64,
        block_bytes: usize,
        pending_after: usize,
    ) -> SimDuration {
        let work = self.consensus_latency(validator_count)
            + self.block_processing_time(included_messages, block_bytes, pending_after);
        params.min_block_interval.max(work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_paper_setup() {
        let p = ConsensusParams::default();
        assert_eq!(p.min_block_interval, SimDuration::from_secs(5));
        // At least 50 transactions of 3.67M gas fit in a block.
        assert!(p.max_block_gas >= 50 * 3_669_161);
    }

    #[test]
    fn params_hash_changes_with_fields() {
        let a = ConsensusParams::default();
        let mut b = a.clone();
        b.max_block_gas += 1;
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn consensus_latency_matches_reference_points() {
        let m = ConsensusTimingModel::default();
        let five = m.consensus_latency(5).as_millis();
        let many = m.consensus_latency(128).as_millis();
        assert!((20..=30).contains(&five), "5 validators: {five}ms");
        assert!((100..=120).contains(&many), "128 validators: {many}ms");
    }

    #[test]
    fn empty_block_with_empty_mempool_hits_floor_interval() {
        let m = ConsensusTimingModel::default();
        let p = ConsensusParams::default();
        let interval = m.block_interval(&p, 5, 0, 0, 0);
        assert_eq!(interval, SimDuration::from_secs(5));
    }

    #[test]
    fn large_backlog_stretches_the_interval() {
        let m = ConsensusTimingModel::default();
        let p = ConsensusParams::default();
        // 5,000 included messages in a ~5 MB block with 20,000 pending txs to
        // recheck must stretch beyond the 5 s floor (Fig. 7 behaviour).
        let interval = m.block_interval(&p, 5, 5_000, 5 * 1024 * 1024, 20_000);
        assert!(interval > SimDuration::from_secs(5));
        // And the stretch is monotone in the backlog.
        let worse = m.block_interval(&p, 5, 5_000, 5 * 1024 * 1024, 60_000);
        assert!(worse > interval);
    }

    #[test]
    fn processing_time_is_monotone_in_all_inputs() {
        let m = ConsensusTimingModel::default();
        let base = m.block_processing_time(100, 10_000, 10);
        assert!(m.block_processing_time(200, 10_000, 10) > base);
        assert!(m.block_processing_time(100, 2_000_000, 10) > base);
        assert!(m.block_processing_time(100, 10_000, 1_000) > base);
    }
}
