//! Light-client verification primitives.
//!
//! IBC clients (ICS-02/07) track the counterparty chain's consensus through a
//! light client: a store of trusted headers that can verify new headers using
//! the validator set's commit signatures. This module implements the
//! verification core used by `xcc-ibc`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::block::Header;
use crate::hash::Hash;
use crate::validator::ValidatorSet;
use crate::vote::{sign_vote, BlockIdFlag, Commit};
use xcc_sim::SimTime;

/// A header (and associated state roots) the light client trusts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrustedState {
    /// Height of the trusted header.
    pub height: u64,
    /// Hash of the trusted header.
    pub header_hash: Hash,
    /// Hash of the validator set at this height.
    pub validators_hash: Hash,
    /// Hash of the validator set for the next height.
    pub next_validators_hash: Hash,
    /// Application state root committed by this header.
    pub app_hash: Hash,
    /// Header timestamp.
    pub time: SimTime,
}

impl TrustedState {
    /// Extracts a trusted state from a header.
    pub fn from_header(header: &Header) -> Self {
        TrustedState {
            height: header.height,
            header_hash: header.hash(),
            validators_hash: header.validators_hash,
            next_validators_hash: header.next_validators_hash,
            app_hash: header.app_hash,
            time: header.time,
        }
    }
}

/// Errors raised during header verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerificationError {
    /// The header belongs to a different chain.
    ChainIdMismatch {
        /// Chain id the client expected.
        expected: String,
        /// Chain id found in the header.
        found: String,
    },
    /// The commit certifies a different block than the header.
    CommitBlockMismatch,
    /// The commit is for a different height than the header.
    CommitHeightMismatch,
    /// The validator set hash in the header does not match the supplied set.
    ValidatorSetMismatch,
    /// The signatures do not reach the 2/3 quorum threshold.
    InsufficientVotingPower {
        /// Power that signed for the block.
        signed: u64,
        /// Power required for a quorum.
        required: u64,
    },
    /// An individual signature failed verification.
    InvalidSignature,
    /// The header does not extend the client's latest trusted height.
    NonMonotonicHeight {
        /// Latest height the client already trusts.
        trusted: u64,
        /// Height of the submitted header.
        submitted: u64,
    },
}

impl std::fmt::Display for VerificationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerificationError::ChainIdMismatch { expected, found } => {
                write!(f, "chain id mismatch: expected {expected}, found {found}")
            }
            VerificationError::CommitBlockMismatch => write!(f, "commit is for a different block"),
            VerificationError::CommitHeightMismatch => {
                write!(f, "commit is for a different height")
            }
            VerificationError::ValidatorSetMismatch => write!(f, "validator set hash mismatch"),
            VerificationError::InsufficientVotingPower { signed, required } => {
                write!(f, "insufficient voting power: {signed} < {required}")
            }
            VerificationError::InvalidSignature => write!(f, "invalid commit signature"),
            VerificationError::NonMonotonicHeight { trusted, submitted } => {
                write!(
                    f,
                    "header height {submitted} does not extend trusted height {trusted}"
                )
            }
        }
    }
}

impl std::error::Error for VerificationError {}

/// Verifies that `commit` certifies `header` with at least 2/3 of
/// `validators`' voting power.
pub fn verify_commit(
    chain_id: &str,
    header: &Header,
    commit: &Commit,
    validators: &ValidatorSet,
) -> Result<(), VerificationError> {
    if header.chain_id != chain_id {
        return Err(VerificationError::ChainIdMismatch {
            expected: chain_id.to_string(),
            found: header.chain_id.clone(),
        });
    }
    if commit.height != header.height {
        return Err(VerificationError::CommitHeightMismatch);
    }
    if commit.block_id != header.block_id() {
        return Err(VerificationError::CommitBlockMismatch);
    }
    if header.validators_hash != validators.hash() {
        return Err(VerificationError::ValidatorSetMismatch);
    }

    let mut signed_power = 0u64;
    for sig in &commit.signatures {
        if sig.flag != BlockIdFlag::Commit {
            continue;
        }
        let Some(validator) = validators.get(&sig.validator) else {
            // Unknown signer: ignore rather than fail, as Tendermint does for
            // stale validator sets.
            continue;
        };
        let expected = sign_vote(
            &sig.validator,
            commit.height,
            commit.round,
            Some(&commit.block_id),
        );
        if sig.signature != expected {
            return Err(VerificationError::InvalidSignature);
        }
        signed_power += validator.voting_power;
    }

    let required = validators.quorum_threshold();
    if signed_power < required {
        return Err(VerificationError::InsufficientVotingPower {
            signed: signed_power,
            required,
        });
    }
    Ok(())
}

/// A light client tracking a counterparty chain.
///
/// # Example
///
/// ```rust
/// use xcc_tendermint::light::LightClient;
///
/// let client = LightClient::new("chain-b");
/// assert_eq!(client.latest_height(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LightClient {
    chain_id: String,
    trusted: BTreeMap<u64, TrustedState>,
}

impl LightClient {
    /// Creates a client for `chain_id` with no trusted state yet.
    pub fn new(chain_id: impl Into<String>) -> Self {
        LightClient {
            chain_id: chain_id.into(),
            trusted: BTreeMap::new(),
        }
    }

    /// The chain this client tracks.
    pub fn chain_id(&self) -> &str {
        &self.chain_id
    }

    /// The highest trusted height, or 0 when nothing is trusted yet.
    pub fn latest_height(&self) -> u64 {
        self.trusted.keys().next_back().copied().unwrap_or(0)
    }

    /// The trusted state at an exact height, if present.
    pub fn trusted_at(&self, height: u64) -> Option<&TrustedState> {
        self.trusted.get(&height)
    }

    /// Number of trusted consensus states held.
    pub fn len(&self) -> usize {
        self.trusted.len()
    }

    /// `true` when no state is trusted yet.
    pub fn is_empty(&self) -> bool {
        self.trusted.is_empty()
    }

    /// Installs an initial trusted header without verification (the trusted
    /// bootstrap of a light client).
    pub fn trust_initial(&mut self, header: &Header) {
        self.trusted
            .insert(header.height, TrustedState::from_header(header));
    }

    /// Verifies `header` against `commit` and `validators` and, on success,
    /// records it as trusted.
    ///
    /// # Errors
    ///
    /// Fails if verification fails or the header does not extend the latest
    /// trusted height.
    pub fn update(
        &mut self,
        header: &Header,
        commit: &Commit,
        validators: &ValidatorSet,
    ) -> Result<(), VerificationError> {
        let latest = self.latest_height();
        if !self.trusted.is_empty() && header.height <= latest {
            return Err(VerificationError::NonMonotonicHeight {
                trusted: latest,
                submitted: header.height,
            });
        }
        verify_commit(&self.chain_id, header, commit, validators)?;
        self.trusted
            .insert(header.height, TrustedState::from_header(header));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abci::{CheckTxResult, DeliverTxResult};
    use crate::block::RawTx;
    use crate::mempool::MempoolConfig;
    use crate::node::Node;
    use crate::params::{ConsensusParams, ConsensusTimingModel};

    /// No-op application for producing real blocks in light-client tests.
    #[derive(Debug, Default)]
    struct NullApp;

    impl crate::abci::Application for NullApp {
        fn check_tx(&mut self, _tx: &RawTx) -> CheckTxResult {
            CheckTxResult {
                code: 0,
                log: String::new(),
                gas_wanted: 1,
                sender: "x".into(),
                sequence: 0,
            }
        }
        fn begin_block(&mut self, _header: &Header) {}
        fn deliver_tx(&mut self, _tx: &RawTx) -> DeliverTxResult {
            DeliverTxResult {
                code: 0,
                log: String::new(),
                gas_used: 1,
                gas_wanted: 1,
                events: vec![],
            }
        }
        fn end_block(&mut self, _height: u64) {}
        fn commit(&mut self) -> Hash {
            Hash::ZERO
        }
    }

    fn node_with_blocks(n: u64) -> Node<NullApp> {
        let mut node = Node::new(
            "chain-a",
            ValidatorSet::with_equal_power(5, 10),
            ConsensusParams::default(),
            ConsensusTimingModel::default(),
            MempoolConfig::default(),
            NullApp,
        );
        for i in 0..n {
            node.produce_block(SimTime::from_secs(5 * (i + 1)));
        }
        node
    }

    #[test]
    fn verify_commit_accepts_honest_chain() {
        let node = node_with_blocks(3);
        let header = &node.block_at(2).unwrap().block.header;
        let commit = node.commit_for(2).unwrap();
        assert!(verify_commit("chain-a", header, commit, node.validators()).is_ok());
    }

    #[test]
    fn verify_commit_rejects_wrong_chain_id() {
        let node = node_with_blocks(1);
        let header = &node.block_at(1).unwrap().block.header;
        let commit = node.commit_for(1).unwrap();
        assert!(matches!(
            verify_commit("chain-b", header, commit, node.validators()),
            Err(VerificationError::ChainIdMismatch { .. })
        ));
    }

    #[test]
    fn verify_commit_rejects_mismatched_block() {
        let node = node_with_blocks(2);
        let header1 = &node.block_at(1).unwrap().block.header;
        let commit2 = node.commit_for(2).unwrap();
        assert!(matches!(
            verify_commit("chain-a", header1, commit2, node.validators()),
            Err(VerificationError::CommitHeightMismatch)
        ));
    }

    #[test]
    fn verify_commit_rejects_wrong_validator_set() {
        let node = node_with_blocks(1);
        let header = &node.block_at(1).unwrap().block.header;
        let commit = node.commit_for(1).unwrap();
        let other_set = ValidatorSet::with_equal_power(7, 3);
        assert!(matches!(
            verify_commit("chain-a", header, commit, &other_set),
            Err(VerificationError::ValidatorSetMismatch)
        ));
    }

    #[test]
    fn verify_commit_rejects_insufficient_power() {
        let node = node_with_blocks(1);
        let header = &node.block_at(1).unwrap().block.header;
        let mut commit = node.commit_for(1).unwrap().clone();
        // Strip signatures until fewer than the 4-of-5 quorum remain.
        for sig in commit.signatures.iter_mut().take(2) {
            *sig = crate::vote::CommitSig::absent(sig.validator);
        }
        assert!(matches!(
            verify_commit("chain-a", header, &commit, node.validators()),
            Err(VerificationError::InsufficientVotingPower { .. })
        ));
    }

    #[test]
    fn verify_commit_rejects_forged_signature() {
        let node = node_with_blocks(1);
        let header = &node.block_at(1).unwrap().block.header;
        let mut commit = node.commit_for(1).unwrap().clone();
        commit.signatures[0].signature = Hash::ZERO;
        assert_eq!(
            verify_commit("chain-a", header, &commit, node.validators()),
            Err(VerificationError::InvalidSignature)
        );
    }

    #[test]
    fn light_client_updates_monotonically() {
        let node = node_with_blocks(3);
        let mut client = LightClient::new("chain-a");
        assert!(client.is_empty());

        let h1 = &node.block_at(1).unwrap().block.header;
        client.trust_initial(h1);
        assert_eq!(client.latest_height(), 1);

        let h2 = &node.block_at(2).unwrap().block.header;
        client
            .update(h2, node.commit_for(2).unwrap(), node.validators())
            .unwrap();
        let h3 = &node.block_at(3).unwrap().block.header;
        client
            .update(h3, node.commit_for(3).unwrap(), node.validators())
            .unwrap();
        assert_eq!(client.latest_height(), 3);
        assert_eq!(client.len(), 3);
        assert_eq!(client.trusted_at(2).unwrap().header_hash, h2.hash());

        // Replaying an old header must fail.
        assert!(matches!(
            client.update(h2, node.commit_for(2).unwrap(), node.validators()),
            Err(VerificationError::NonMonotonicHeight { .. })
        ));
    }
}
