//! The transaction mempool.
//!
//! Transactions accepted by `CheckTx` wait here until a proposer reaps them
//! into a block. The mempool is FIFO and bounded both in transaction count
//! and in total bytes; when full, new submissions are rejected — which is one
//! of the failure modes behind the submission drop-off at very high input
//! rates in Table I of the paper.

// xcc-lint: allow(hash-collections, reason = "HashSet used for membership checks only; never iterated")
use std::collections::{BTreeMap, HashSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::block::RawTx;
use crate::hash::Hash;
use xcc_sim::SimTime;

/// Configuration limits for the mempool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MempoolConfig {
    /// Maximum number of transactions held at once (Tendermint default 5000).
    pub max_txs: usize,
    /// Maximum total bytes held at once.
    pub max_total_bytes: usize,
}

impl Default for MempoolConfig {
    fn default() -> Self {
        MempoolConfig {
            max_txs: 5_000,
            max_total_bytes: 1024 * 1024 * 1024,
        }
    }
}

/// A transaction waiting in the mempool, together with its `CheckTx`
/// metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingTx {
    /// The raw transaction.
    pub tx: RawTx,
    /// The transaction hash.
    pub hash: Hash,
    /// Gas requested by the transaction.
    pub gas_wanted: u64,
    /// The fee-paying account.
    pub sender: String,
    /// The account sequence number carried by the transaction.
    pub sequence: u64,
    /// When the transaction entered the mempool.
    pub received_at: SimTime,
}

/// Why a transaction was refused admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MempoolError {
    /// The mempool already holds `max_txs` transactions.
    Full {
        /// The configured limit that was hit.
        max_txs: usize,
    },
    /// Admitting the transaction would exceed the byte limit.
    TooManyBytes {
        /// The configured byte limit.
        max_total_bytes: usize,
    },
    /// The identical transaction is already pending.
    AlreadyPending,
}

impl std::fmt::Display for MempoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MempoolError::Full { max_txs } => write!(f, "mempool is full ({max_txs} txs)"),
            MempoolError::TooManyBytes { max_total_bytes } => {
                write!(f, "mempool byte limit reached ({max_total_bytes} bytes)")
            }
            MempoolError::AlreadyPending => write!(f, "tx already exists in cache"),
        }
    }
}

impl std::error::Error for MempoolError {}

/// A FIFO, bounded transaction mempool.
///
/// # Example
///
/// ```rust
/// use xcc_tendermint::block::RawTx;
/// use xcc_tendermint::mempool::{Mempool, MempoolConfig, PendingTx};
/// use xcc_sim::SimTime;
///
/// let mut pool = Mempool::new(MempoolConfig::default());
/// let tx = RawTx::new(b"tx".to_vec());
/// pool.add(PendingTx {
///     hash: tx.hash(),
///     tx,
///     gas_wanted: 100,
///     sender: "alice".into(),
///     sequence: 0,
///     received_at: SimTime::ZERO,
/// }).unwrap();
/// assert_eq!(pool.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Mempool {
    config: MempoolConfig,
    queue: VecDeque<PendingTx>,
    // xcc-lint: allow(hash-collections, reason = "O(1) duplicate-hash membership; iteration never observes it")
    hashes: HashSet<Hash>,
    total_bytes: usize,
    rejected_full: u64,
}

impl Mempool {
    /// Creates an empty mempool with the given limits.
    pub fn new(config: MempoolConfig) -> Self {
        Mempool {
            config,
            queue: VecDeque::new(),
            // xcc-lint: allow(hash-collections, reason = "membership-only set, see field declaration")
            hashes: HashSet::new(),
            total_bytes: 0,
            rejected_full: 0,
        }
    }

    /// The configured limits.
    pub fn config(&self) -> &MempoolConfig {
        &self.config
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when no transactions are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total bytes of pending transactions.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// How many submissions were rejected because the pool was full.
    pub fn rejected_full(&self) -> u64 {
        self.rejected_full
    }

    /// Whether a transaction with this hash is pending.
    pub fn contains(&self, hash: &Hash) -> bool {
        self.hashes.contains(hash)
    }

    /// Adds a checked transaction to the pool.
    ///
    /// # Errors
    ///
    /// Returns an error when the pool is full, the byte limit would be
    /// exceeded, or the transaction is already pending.
    pub fn add(&mut self, tx: PendingTx) -> Result<(), MempoolError> {
        if self.hashes.contains(&tx.hash) {
            return Err(MempoolError::AlreadyPending);
        }
        if self.queue.len() >= self.config.max_txs {
            self.rejected_full += 1;
            return Err(MempoolError::Full {
                max_txs: self.config.max_txs,
            });
        }
        if self.total_bytes + tx.tx.len() > self.config.max_total_bytes {
            self.rejected_full += 1;
            return Err(MempoolError::TooManyBytes {
                max_total_bytes: self.config.max_total_bytes,
            });
        }
        self.total_bytes += tx.tx.len();
        self.hashes.insert(tx.hash);
        self.queue.push_back(tx);
        Ok(())
    }

    /// Selects transactions for the next block proposal, in FIFO order, up to
    /// the given gas, byte and count limits (0 for `max_txs` means no count
    /// limit). The selected transactions stay in the pool until
    /// [`Mempool::remove_committed`] is called.
    pub fn reap(&self, max_gas: u64, max_bytes: usize, max_txs: usize) -> Vec<PendingTx> {
        self.reap_before(max_gas, max_bytes, max_txs, SimTime::MAX)
    }

    /// Like [`Mempool::reap`], but only considers transactions received at or
    /// before `not_after`. The simulation driver uses this so a transaction
    /// broadcast at a later virtual time can never appear in an earlier
    /// block.
    pub fn reap_before(
        &self,
        max_gas: u64,
        max_bytes: usize,
        max_txs: usize,
        not_after: SimTime,
    ) -> Vec<PendingTx> {
        let mut selected = Vec::new();
        let mut gas = 0u64;
        let mut bytes = 0usize;
        for tx in &self.queue {
            if tx.received_at > not_after {
                // Not visible to this proposal yet.
                continue;
            }
            if max_txs != 0 && selected.len() >= max_txs {
                break;
            }
            if gas + tx.gas_wanted > max_gas || bytes + tx.tx.len() > max_bytes {
                // FIFO semantics: stop at the first transaction that does not
                // fit, like Tendermint's proposer.
                break;
            }
            gas += tx.gas_wanted;
            bytes += tx.tx.len();
            selected.push(tx.clone());
        }
        selected
    }

    /// Removes transactions that were committed in a block.
    pub fn remove_committed(&mut self, hashes: &[Hash]) {
        // xcc-lint: allow(hash-collections, reason = "contains-only probe inside retain; order never observed")
        let committed: HashSet<&Hash> = hashes.iter().collect();
        let mut removed_bytes = 0usize;
        self.queue.retain(|tx| {
            if committed.contains(&tx.hash) {
                removed_bytes += tx.tx.len();
                false
            } else {
                true
            }
        });
        for h in hashes {
            self.hashes.remove(h);
        }
        self.total_bytes -= removed_bytes;
    }

    /// Number of pending transactions from one sender — the mempool's share
    /// of an account's unconfirmed sequence window. This is what the
    /// unconfirmed-aware account query (`account_sequence_unconfirmed` in the
    /// RPC layer) adds on top of the committed sequence.
    pub fn pending_from(&self, sender: &str) -> usize {
        self.queue.iter().filter(|tx| tx.sender == sender).count()
    }

    /// Pending transaction counts per sender, useful for diagnosing
    /// account-sequence congestion.
    pub fn pending_by_sender(&self) -> BTreeMap<String, usize> {
        let mut by_sender = BTreeMap::new();
        for tx in &self.queue {
            *by_sender.entry(tx.sender.clone()).or_insert(0) += 1;
        }
        by_sender
    }

    /// Iterates over pending transactions in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &PendingTx> {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(id: u8, size: usize, gas: u64, sender: &str) -> PendingTx {
        let mut bytes = vec![id];
        bytes.resize(size.max(1), 0);
        let raw = RawTx::new(bytes);
        PendingTx {
            hash: raw.hash(),
            tx: raw,
            gas_wanted: gas,
            sender: sender.to_string(),
            sequence: 0,
            received_at: SimTime::ZERO,
        }
    }

    #[test]
    fn add_and_reap_fifo_order() {
        let mut pool = Mempool::new(MempoolConfig::default());
        for i in 0..5u8 {
            pool.add(tx(i, 10, 100, "a")).unwrap();
        }
        let reaped = pool.reap(1_000, 1_000, 0);
        assert_eq!(reaped.len(), 5);
        assert_eq!(reaped[0].tx.as_bytes()[0], 0);
        assert_eq!(reaped[4].tx.as_bytes()[0], 4);
        // Reaping does not remove.
        assert_eq!(pool.len(), 5);
    }

    #[test]
    fn reap_respects_gas_limit() {
        let mut pool = Mempool::new(MempoolConfig::default());
        for i in 0..10u8 {
            pool.add(tx(i, 10, 100, "a")).unwrap();
        }
        let reaped = pool.reap(350, 100_000, 0);
        assert_eq!(reaped.len(), 3);
    }

    #[test]
    fn reap_respects_byte_limit_and_count_limit() {
        let mut pool = Mempool::new(MempoolConfig::default());
        for i in 0..10u8 {
            pool.add(tx(i, 100, 1, "a")).unwrap();
        }
        assert_eq!(pool.reap(1_000_000, 250, 0).len(), 2);
        assert_eq!(pool.reap(1_000_000, 1_000_000, 4).len(), 4);
    }

    #[test]
    fn duplicate_txs_are_rejected() {
        let mut pool = Mempool::new(MempoolConfig::default());
        let t = tx(1, 10, 1, "a");
        pool.add(t.clone()).unwrap();
        assert_eq!(pool.add(t), Err(MempoolError::AlreadyPending));
    }

    #[test]
    fn capacity_limits_are_enforced() {
        let mut pool = Mempool::new(MempoolConfig {
            max_txs: 2,
            max_total_bytes: 1_000,
        });
        pool.add(tx(1, 10, 1, "a")).unwrap();
        pool.add(tx(2, 10, 1, "a")).unwrap();
        assert!(matches!(
            pool.add(tx(3, 10, 1, "a")),
            Err(MempoolError::Full { .. })
        ));
        assert_eq!(pool.rejected_full(), 1);

        let mut pool = Mempool::new(MempoolConfig {
            max_txs: 100,
            max_total_bytes: 25,
        });
        pool.add(tx(1, 20, 1, "a")).unwrap();
        assert!(matches!(
            pool.add(tx(2, 20, 1, "a")),
            Err(MempoolError::TooManyBytes { .. })
        ));
    }

    #[test]
    fn remove_committed_updates_bookkeeping() {
        let mut pool = Mempool::new(MempoolConfig::default());
        let a = tx(1, 10, 1, "a");
        let b = tx(2, 10, 1, "b");
        pool.add(a.clone()).unwrap();
        pool.add(b.clone()).unwrap();
        pool.remove_committed(&[a.hash]);
        assert_eq!(pool.len(), 1);
        assert!(!pool.contains(&a.hash));
        assert!(pool.contains(&b.hash));
        assert_eq!(pool.total_bytes(), b.tx.len());
    }

    #[test]
    fn pending_by_sender_counts() {
        let mut pool = Mempool::new(MempoolConfig::default());
        pool.add(tx(1, 10, 1, "alice")).unwrap();
        pool.add(tx(2, 10, 1, "alice")).unwrap();
        pool.add(tx(3, 10, 1, "bob")).unwrap();
        let by_sender = pool.pending_by_sender();
        assert_eq!(by_sender["alice"], 2);
        assert_eq!(by_sender["bob"], 1);
        assert_eq!(pool.pending_from("alice"), 2);
        assert_eq!(pool.pending_from("bob"), 1);
        assert_eq!(pool.pending_from("carol"), 0);
    }

    #[test]
    fn error_display_messages() {
        assert!(MempoolError::Full { max_txs: 5 }
            .to_string()
            .contains("full"));
        assert!(MempoolError::AlreadyPending
            .to_string()
            .contains("already exists"));
    }
}
