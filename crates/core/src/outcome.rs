//! The unified result of any scenario run.
//!
//! Earlier revisions of this framework returned four divergent result structs
//! (`TendermintRunResult`, `RelayerRunResult`, `LatencyRunResult`,
//! `WebSocketLimitResult`). A [`ScenarioOutcome`] replaces all of them: every
//! run — regardless of family — produces the full metric set, exposed
//! through typed accessors and emitted as JSON or CSV through
//! [`crate::report::ExecutionReport`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::report::ExecutionReport;
use crate::spec::ExperimentSpec;

/// Canonical metric keys shared by reports, outcomes and CSV emission.
pub mod keys {
    /// Completed cross-chain transfers per second over the window (§III-E).
    pub const THROUGHPUT_TFPS: &str = "throughput_tfps";
    /// Committed transfer messages per second on the source chain (Fig. 6).
    pub const TENDERMINT_THROUGHPUT_TFPS: &str = "tendermint_throughput_tfps";
    /// Average source-chain block interval in seconds (Fig. 7).
    pub const AVG_BLOCK_INTERVAL_SECS: &str = "avg_block_interval_secs";
    /// Transfers requested from the CLI (Table I "Requests made").
    pub const REQUESTS_MADE: &str = "requests_made";
    /// Transfers accepted into the mempool (Table I "Submitted").
    pub const SUBMITTED: &str = "submitted";
    /// Transfers committed on the source chain (Table I "Committed").
    pub const COMMITTED: &str = "committed";
    /// Transfers that fully completed within the window (Figs. 10–11).
    pub const COMPLETED: &str = "completed";
    /// Transfer + receive committed, acknowledgement missing.
    pub const PARTIAL: &str = "partial";
    /// Only the transfer committed.
    pub const INITIATED: &str = "initiated";
    /// Requested but never committed to the source chain.
    pub const NOT_COMMITTED: &str = "not_committed";
    /// Redundant packet-message occurrences (multi-relayer effect, §IV-A).
    pub const REDUNDANT_PACKET_ERRORS: &str = "redundant_packet_errors";
    /// Blocks whose event collection failed (WebSocket limit, §V).
    pub const EVENT_COLLECTION_FAILURES: &str = "event_collection_failures";
    /// Packets relayed by the packet-clear scan instead of event delivery.
    /// Emitted only when the strategy's `packet_clear_interval` is non-zero,
    /// so runs without clearing — the golden fixtures included — keep their
    /// metric maps unchanged.
    pub const PACKETS_CLEARED: &str = "packets_cleared";
    /// Failed broadcast attempts across all relayers (§V's account-sequence
    /// race is the dominant source). Emitted only when the deployment's
    /// `report_broadcast_failures` knob — switched on by the
    /// `sequence_tracking` spec builder and the sweep axis — asks for it, or
    /// when the strategy runs mempool-aware tracking; runs that never asked
    /// (the golden fixtures included) keep their metric maps unchanged.
    pub const BROADCAST_FAILURES: &str = "broadcast_failures";
    /// Receive transactions the destination chain committed *and failed* as
    /// redundant — a packet physically submitted twice, the signature of a
    /// relayer that lost its dedup state across a crash. Emitted (with the
    /// other fault metrics below) only when the deployment's `fault_plan` is
    /// non-empty, so fault-free runs — the pre-fault golden fixtures
    /// included — keep their metric maps unchanged.
    pub const DOUBLE_SUBMITTED: &str = "double_submitted";
    /// Source-chain packets still outstanding (neither acknowledged nor
    /// timed out) when the run ended. Fault runs only; see
    /// [`DOUBLE_SUBMITTED`].
    pub const STRANDED_PACKETS: &str = "stranded_packets";
    /// Seconds from the first fault to the first transfer completion at or
    /// after it. Fault runs only, and omitted when nothing completed after
    /// the fault; see [`DOUBLE_SUBMITTED`].
    pub const FIRST_COMPLETION_AFTER_FAULT_SECS: &str = "first_completion_after_fault_secs";
    /// Seconds from the last relayer restart to the first receive
    /// confirmation at or after it — the restarted process's time to resume
    /// useful delivery. Fault runs only, and omitted when the plan has no
    /// restart or nothing was received afterwards; see [`DOUBLE_SUBMITTED`].
    pub const RECOVERY_SECS: &str = "recovery_secs";
    /// End-to-end completion latency of the batch in seconds (Fig. 13).
    pub const COMPLETION_LATENCY_SECS: &str = "completion_latency_secs";
    /// Duration of the transfer phase (steps 1–4), seconds (Fig. 12).
    pub const TRANSFER_PHASE_SECS: &str = "transfer_phase_secs";
    /// Duration of the receive phase (steps 5–9), seconds (Fig. 12).
    pub const RECV_PHASE_SECS: &str = "recv_phase_secs";
    /// Duration of the acknowledgement phase (steps 10–13), seconds (Fig. 12).
    pub const ACK_PHASE_SECS: &str = "ack_phase_secs";
    /// Time spent in the transfer data-pull step, seconds (Fig. 12).
    pub const TRANSFER_PULL_SECS: &str = "transfer_pull_secs";
    /// Time spent in the receive data-pull step, seconds (Fig. 12).
    pub const RECV_PULL_SECS: &str = "recv_pull_secs";
    /// Fraction of total time spent in RPC data pulls (≈0.69 in the paper).
    pub const DATA_PULL_SHARE: &str = "data_pull_share";

    /// Set to 1 when the deployment failed to set up (its topology did not
    /// resolve, or an IBC handshake could not complete) and the run produced
    /// no data. Successful runs never emit the key, so every pre-existing
    /// metric map is unchanged.
    pub const SETUP_FAILED: &str = "setup_failed";
    /// Second-leg transfers the hop forwarder submitted. Emitted (with the
    /// hop latency keys below) only when the workload's hop plan has active
    /// routes, so hop-free runs — the golden fixtures included — keep their
    /// metric maps unchanged.
    pub const FORWARDED: &str = "forwarded";
    /// Average first-leg completion latency in seconds (transfer broadcast →
    /// ack confirmation on the first-leg channel), aggregated over routes and
    /// additionally emitted per route via [`on_route`]. Hop-plan runs only;
    /// see [`FORWARDED`].
    pub const HOP1_LATENCY_SECS: &str = "hop1_latency_secs";
    /// Average second-leg completion latency in seconds. Hop-plan runs only;
    /// see [`FORWARDED`].
    pub const HOP2_LATENCY_SECS: &str = "hop2_latency_secs";
    /// Average forwarder lag in seconds (first-leg ack commit → second-leg
    /// broadcast). Hop-plan runs only; see [`FORWARDED`].
    pub const FORWARD_LAG_SECS: &str = "forward_lag_secs";

    /// Events the run inserted into the simulation scheduler. Emitted (with
    /// every `work_*` key below) only when the deployment's `profile_work`
    /// knob asks for the xcc-prof counters, so non-profiling runs — every
    /// golden fixture — keep their metric maps unchanged. The counts are
    /// deterministic work measures, safe to exact-match; see
    /// docs/PERFORMANCE.md.
    pub const WORK_EVENTS_SCHEDULED: &str = "work_events_scheduled";
    /// Events the run popped from the simulation scheduler. Profiling runs
    /// only; see [`WORK_EVENTS_SCHEDULED`].
    pub const WORK_EVENTS_POPPED: &str = "work_events_popped";
    /// Total RPC calls served across every request kind (the per-kind
    /// counts are emitted via [`on_rpc_kind`]). Profiling runs only; see
    /// [`WORK_EVENTS_SCHEDULED`].
    pub const WORK_RPC_CALLS: &str = "work_rpc_calls";
    /// Transactions encoded to wire bytes (encode-cache misses only).
    /// Profiling runs only; see [`WORK_EVENTS_SCHEDULED`].
    pub const WORK_TXS_ENCODED: &str = "work_txs_encoded";
    /// Transactions decoded from wire bytes. Profiling runs only; see
    /// [`WORK_EVENTS_SCHEDULED`].
    pub const WORK_TXS_DECODED: &str = "work_txs_decoded";
    /// Wire bytes produced by transaction encoding. Profiling runs only;
    /// see [`WORK_EVENTS_SCHEDULED`].
    pub const WORK_BYTES_SERIALIZED: &str = "work_bytes_serialized";
    /// Telemetry step/error records written across all relayers. Profiling
    /// runs only; see [`WORK_EVENTS_SCHEDULED`].
    pub const WORK_TELEMETRY_RECORDS: &str = "work_telemetry_records";
    /// Relayer wake events the driver processed. Profiling runs only; see
    /// [`WORK_EVENTS_SCHEDULED`].
    pub const WORK_RELAYER_WAKES: &str = "work_relayer_wakes";
    /// Packets visited by the periodic clear scan. Profiling runs only; see
    /// [`WORK_EVENTS_SCHEDULED`].
    pub const WORK_CLEAR_SCAN_VISITS: &str = "work_clear_scan_visits";

    /// The per-request-kind variant of [`WORK_RPC_CALLS`], e.g.
    /// `work_rpc_calls[status]` (profiling runs only).
    pub fn on_rpc_kind(kind: &str) -> String {
        format!("{WORK_RPC_CALLS}[{kind}]")
    }

    /// The per-channel variant of a metric key, e.g. `completed[channel-2]`.
    ///
    /// Multi-channel runs (`channel_count > 1`) emit the completion metrics
    /// once per channel under these keys in addition to the aggregates;
    /// single-channel runs emit only the aggregates, so the paper scenarios'
    /// metric maps — including the golden fixtures — are unchanged.
    pub fn on_channel(base: &str, channel: usize) -> String {
        format!("{base}[channel-{channel}]")
    }

    /// The per-hop-route variant of a metric key, e.g.
    /// `hop1_latency_secs[route-0]` (hop-plan runs only).
    pub fn on_route(base: &str, route: usize) -> String {
        format!("{base}[route-{route}]")
    }
}

/// The unified, serializable result of one scenario run.
///
/// Outcomes carry the spec that produced them, so a results file is
/// self-describing and any point of any figure can be re-run from its
/// outcome alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The spec that produced this outcome.
    pub spec: ExperimentSpec,
    /// Every metric the analysis module computed, keyed by [`keys`].
    pub metrics: BTreeMap<String, f64>,
}

impl ScenarioOutcome {
    /// Creates an empty outcome for `spec`.
    pub fn new(spec: ExperimentSpec) -> Self {
        ScenarioOutcome {
            spec,
            metrics: BTreeMap::new(),
        }
    }

    /// Sets (or replaces) a metric.
    pub fn set(&mut self, key: &str, value: f64) {
        self.metrics.insert(key.to_string(), value);
    }

    /// Reads a raw metric, if present.
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.get(key).copied()
    }

    fn count(&self, key: &str) -> u64 {
        self.metric(key).unwrap_or(0.0) as u64
    }

    fn float(&self, key: &str) -> f64 {
        self.metric(key).unwrap_or(0.0)
    }

    // -- typed accessors -----------------------------------------------------

    /// The configured input rate in transfers per second.
    pub fn input_rate_rps(&self) -> f64 {
        self.spec.workload.input_rate_rps()
    }

    /// Completed transfers per second over the measurement window.
    pub fn throughput_tfps(&self) -> f64 {
        self.float(keys::THROUGHPUT_TFPS)
    }

    /// Committed transfer messages per second on the source chain (Fig. 6).
    pub fn tendermint_throughput_tfps(&self) -> f64 {
        self.float(keys::TENDERMINT_THROUGHPUT_TFPS)
    }

    /// Average source-chain block interval in seconds (Fig. 7).
    pub fn avg_block_interval_secs(&self) -> f64 {
        self.float(keys::AVG_BLOCK_INTERVAL_SECS)
    }

    /// Transfers requested from the CLI.
    pub fn requests_made(&self) -> u64 {
        self.count(keys::REQUESTS_MADE)
    }

    /// Transfers accepted into the source chain's mempool.
    pub fn submitted(&self) -> u64 {
        self.count(keys::SUBMITTED)
    }

    /// Transfers committed on the source chain.
    pub fn committed(&self) -> u64 {
        self.count(keys::COMMITTED)
    }

    /// Fully completed transfers within the measurement window.
    pub fn completed(&self) -> u64 {
        self.count(keys::COMPLETED)
    }

    /// Partially completed transfers (transfer + receive only).
    pub fn partial(&self) -> u64 {
        self.count(keys::PARTIAL)
    }

    /// Transfers that were only initiated.
    pub fn initiated(&self) -> u64 {
        self.count(keys::INITIATED)
    }

    /// Transfers never committed to the source chain.
    pub fn not_committed(&self) -> u64 {
        self.count(keys::NOT_COMMITTED)
    }

    /// Transfers stuck mid-flight: committed on the source chain but neither
    /// completed nor timed out (the §V WebSocket-limit signature).
    pub fn stuck(&self) -> u64 {
        self.initiated() + self.partial()
    }

    /// Redundant packet-message occurrences across all relayers.
    pub fn redundant_packet_errors(&self) -> u64 {
        self.count(keys::REDUNDANT_PACKET_ERRORS)
    }

    /// Blocks whose event collection failed.
    pub fn event_collection_failures(&self) -> u64 {
        self.count(keys::EVENT_COLLECTION_FAILURES)
    }

    /// Packets relayed by the packet-clear scan (0 when clearing is off).
    pub fn packets_cleared(&self) -> u64 {
        self.count(keys::PACKETS_CLEARED)
    }

    /// Failed broadcast attempts across all relayers (0 when the run did not
    /// report them — see [`keys::BROADCAST_FAILURES`]).
    pub fn broadcast_failures(&self) -> u64 {
        self.count(keys::BROADCAST_FAILURES)
    }

    /// Packets the destination chain rejected on-chain as redundant (0 for
    /// fault-free runs, which do not emit the key).
    pub fn double_submitted(&self) -> u64 {
        self.count(keys::DOUBLE_SUBMITTED)
    }

    /// Packets still outstanding on the source chain at the end of the run
    /// (0 for fault-free runs, which do not emit the key).
    pub fn stranded_packets(&self) -> u64 {
        self.count(keys::STRANDED_PACKETS)
    }

    /// Seconds from the first fault to the first completion after it, when
    /// the run recorded one.
    pub fn first_completion_after_fault_secs(&self) -> Option<f64> {
        self.metric(keys::FIRST_COMPLETION_AFTER_FAULT_SECS)
    }

    /// Seconds from the last relayer restart to the first receive
    /// confirmation after it, when the run recorded one.
    pub fn recovery_secs(&self) -> Option<f64> {
        self.metric(keys::RECOVERY_SECS)
    }

    /// End-to-end completion latency of the batch in seconds.
    pub fn completion_latency_secs(&self) -> f64 {
        self.float(keys::COMPLETION_LATENCY_SECS)
    }

    /// Duration of the transfer phase (steps 1–4) in seconds.
    pub fn transfer_phase_secs(&self) -> f64 {
        self.float(keys::TRANSFER_PHASE_SECS)
    }

    /// Duration of the receive phase (steps 5–9) in seconds.
    pub fn recv_phase_secs(&self) -> f64 {
        self.float(keys::RECV_PHASE_SECS)
    }

    /// Duration of the acknowledgement phase (steps 10–13) in seconds.
    pub fn ack_phase_secs(&self) -> f64 {
        self.float(keys::ACK_PHASE_SECS)
    }

    /// Time spent in the transfer data-pull step, in seconds.
    pub fn transfer_pull_secs(&self) -> f64 {
        self.float(keys::TRANSFER_PULL_SECS)
    }

    /// Time spent in the receive data-pull step, in seconds.
    pub fn recv_pull_secs(&self) -> f64 {
        self.float(keys::RECV_PULL_SECS)
    }

    /// Fraction of the total time spent in RPC data pulls.
    pub fn data_pull_share(&self) -> f64 {
        self.float(keys::DATA_PULL_SHARE)
    }

    /// Whether the run failed during setup (topology resolution or IBC
    /// handshakes) and carries no measurement data.
    pub fn setup_failed(&self) -> bool {
        self.count(keys::SETUP_FAILED) != 0
    }

    /// Second-leg transfers the hop forwarder submitted (0 for hop-free
    /// runs, which do not emit the key).
    pub fn forwarded(&self) -> u64 {
        self.count(keys::FORWARDED)
    }

    /// Average first-leg completion latency in seconds (hop-plan runs only).
    pub fn hop1_latency_secs(&self) -> Option<f64> {
        self.metric(keys::HOP1_LATENCY_SECS)
    }

    /// Average second-leg completion latency in seconds (hop-plan runs
    /// only).
    pub fn hop2_latency_secs(&self) -> Option<f64> {
        self.metric(keys::HOP2_LATENCY_SECS)
    }

    /// Number of channels the deployment opened.
    pub fn channel_count(&self) -> usize {
        self.spec.deployment.channel_count.max(1)
    }

    /// A per-channel metric (emitted only by multi-channel runs), e.g.
    /// `metric_on(keys::COMPLETED, 1)`.
    pub fn metric_on(&self, base: &str, channel: usize) -> Option<f64> {
        self.metric(&keys::on_channel(base, channel))
    }

    /// Fully completed transfers of one channel (multi-channel runs only).
    pub fn completed_on(&self, channel: usize) -> u64 {
        self.metric_on(keys::COMPLETED, channel).unwrap_or(0.0) as u64
    }

    /// Completed transfers per second of one channel over the measurement
    /// window (multi-channel runs only).
    pub fn throughput_tfps_on(&self, channel: usize) -> f64 {
        self.metric_on(keys::THROUGHPUT_TFPS, channel)
            .unwrap_or(0.0)
    }

    // -- emission ------------------------------------------------------------

    /// Converts the outcome into an [`ExecutionReport`] named after the spec,
    /// carrying every metric plus a deployment note.
    pub fn to_report(&self) -> ExecutionReport {
        let mut report = ExecutionReport::new(self.spec.name.clone());
        for (key, value) in &self.metrics {
            report.set_metric(key.clone(), *value);
        }
        report.add_note(format!(
            "{} relayer(s), {} ms RTT, seed {}",
            self.spec.deployment.relayer_count,
            self.spec.deployment.network_rtt_ms,
            self.spec.deployment.seed
        ));
        report
    }

    /// Serializes the outcome (spec included) to pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics only if serialization fails, which would indicate a bug in the
    /// outcome structure itself.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("outcome serialisation cannot fail")
    }
}

/// Renders a batch of outcomes as a CSV table: one row per outcome, one
/// column per metric (the union of all keys, sorted), prefixed by the spec
/// name and seed so sweep output is self-describing.
pub fn csv_table(outcomes: &[ScenarioOutcome]) -> String {
    let mut columns: Vec<&str> = Vec::new();
    for outcome in outcomes {
        for key in outcome.metrics.keys() {
            if !columns.contains(&key.as_str()) {
                columns.push(key);
            }
        }
    }
    columns.sort_unstable();

    let mut out = String::from("name,seed");
    for column in &columns {
        out.push(',');
        out.push_str(column);
    }
    out.push('\n');
    for outcome in outcomes {
        let name = outcome.spec.name.replace(',', ";");
        out.push_str(&name);
        out.push(',');
        out.push_str(&outcome.spec.deployment.seed.to_string());
        for column in &columns {
            out.push(',');
            if let Some(value) = outcome.metric(column) {
                out.push_str(&format!("{value}"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    fn sample_outcome(name: &str, tfps: f64) -> ScenarioOutcome {
        let mut o = ScenarioOutcome::new(ExperimentSpec::relayer_throughput().named(name));
        o.set(keys::THROUGHPUT_TFPS, tfps);
        o.set(keys::COMPLETED, 250.0);
        o
    }

    #[test]
    fn accessors_read_back_metrics() {
        let o = sample_outcome("t", 81.5);
        assert_eq!(o.throughput_tfps(), 81.5);
        assert_eq!(o.completed(), 250);
        assert_eq!(o.partial(), 0);
        assert_eq!(o.metric("missing"), None);
    }

    #[test]
    fn outcomes_round_trip_through_json_identically() {
        let o = sample_outcome("round-trip", 42.25);
        let json = o.to_json();
        let back: ScenarioOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, o);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn report_carries_every_metric() {
        let o = sample_outcome("rep", 3.0);
        let report = o.to_report();
        assert_eq!(report.metric(keys::THROUGHPUT_TFPS), Some(3.0));
        assert_eq!(report.metric(keys::COMPLETED), Some(250.0));
        assert_eq!(report.name, "rep");
    }

    #[test]
    fn csv_table_has_union_of_columns() {
        let mut a = sample_outcome("a", 1.0);
        a.set(keys::PARTIAL, 2.0);
        let b = sample_outcome("b", 2.0);
        let csv = csv_table(&[a, b]);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "name,seed,completed,partial,throughput_tfps"
        );
        assert_eq!(lines.next().unwrap(), "a,42,250,2,1");
        assert_eq!(lines.next().unwrap(), "b,42,250,,2");
    }
}
