//! The Analysis module: the Cross-chain Event Processor and the metrics the
//! paper reports (throughput, latency, completion status, block intervals,
//! per-step breakdowns).

use serde::{Deserialize, Serialize};

use xcc_relayer::telemetry::TransferStep;
use xcc_sim::metrics::TimeSeries;
use xcc_sim::SimTime;

use crate::runner::RunOutput;

/// The completion status of a transfer at the end of the measurement window
/// (Figs. 10 and 11 of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletionBreakdown {
    /// Transfer, receive and acknowledgement all committed.
    pub completed: u64,
    /// Transfer and receive committed, acknowledgement missing.
    pub partial: u64,
    /// Only the transfer committed.
    pub initiated: u64,
    /// Requested but never committed to the source chain.
    pub not_committed: u64,
}

impl CompletionBreakdown {
    /// Total number of transfer requests accounted for.
    pub fn total(&self) -> u64 {
        self.completed + self.partial + self.initiated + self.not_committed
    }
}

/// Durations of the three message phases and the two data-pull steps of
/// Fig. 12, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StepBreakdown {
    /// End-to-end latency from the first transfer broadcast to the last
    /// acknowledgement confirmation.
    pub total_secs: f64,
    /// Duration of the transfer phase (steps 1–4).
    pub transfer_phase_secs: f64,
    /// Duration of the receive phase (steps 5–9).
    pub recv_phase_secs: f64,
    /// Duration of the acknowledgement phase (steps 10–13).
    pub ack_phase_secs: f64,
    /// Time spent in the transfer data-pull step.
    pub transfer_pull_secs: f64,
    /// Time spent in the receive (acknowledgement) data-pull step.
    pub recv_pull_secs: f64,
}

impl StepBreakdown {
    /// Fraction of the total time spent pulling data over RPC — the paper
    /// reports roughly 69%.
    pub fn data_pull_share(&self) -> f64 {
        if self.total_secs <= 0.0 {
            0.0
        } else {
            (self.transfer_pull_secs + self.recv_pull_secs) / self.total_secs
        }
    }
}

/// Number of transfers committed to the source chain during the run, summed
/// over every open channel.
pub fn committed_transfers(run: &RunOutput) -> u64 {
    (0..run.paths.len())
        .map(|ch| committed_transfers_on(run, ch))
        .sum()
}

/// Number of transfers committed to the source chain on one channel (the
/// channel's own source chain in topology runs).
pub fn committed_transfers_on(run: &RunOutput, channel: usize) -> u64 {
    let path = &run.paths[channel];
    let (src, _) = run.path_ends[channel];
    run.chains[src]
        .borrow()
        .app()
        .ibc()
        .sent_sequences(&path.port, &path.src_channel)
        .len() as u64
}

/// Number of transfers that completed (acknowledgement committed on the
/// source chain) no later than `cutoff`.
pub fn completed_within(run: &RunOutput, cutoff: SimTime) -> u64 {
    run.telemetry
        .times_for_step(TransferStep::AckConfirmation)
        .into_iter()
        .filter(|t| *t <= cutoff)
        .count() as u64
}

/// Cross-chain throughput in transfers per second over the measurement
/// window, as defined in §III-E: completed transfers divided by the window
/// duration.
pub fn throughput_tfps(run: &RunOutput) -> f64 {
    let window = run.measurement_end - run.measurement_start;
    if window.is_zero() {
        return 0.0;
    }
    completed_within(run, run.measurement_end) as f64 / window.as_secs_f64()
}

/// Source-chain throughput in committed transfer messages per second over the
/// measurement window (the Fig. 6 metric — no relaying required).
pub fn tendermint_throughput_tfps(run: &RunOutput) -> f64 {
    let window = run.measurement_end - run.measurement_start;
    if window.is_zero() {
        return 0.0;
    }
    committed_transfers(run) as f64 / window.as_secs_f64()
}

/// Average interval between consecutive source-chain blocks during the
/// measurement window (Fig. 7).
pub fn average_block_interval_secs(run: &RunOutput) -> f64 {
    let intervals: Vec<f64> = run
        .blocks_a
        .iter()
        .filter(|b| b.committed_at <= run.measurement_end)
        .map(|b| b.interval.as_secs_f64())
        .collect();
    if intervals.is_empty() {
        0.0
    } else {
        intervals.iter().sum::<f64>() / intervals.len() as f64
    }
}

/// Classifies every requested transfer at the end of the measurement window
/// (Figs. 10 and 11), summed over every open channel.
pub fn completion_breakdown(run: &RunOutput) -> CompletionBreakdown {
    let mut total = CompletionBreakdown::default();
    for channel in 0..run.paths.len() {
        let b = completion_breakdown_on(run, channel);
        total.completed += b.completed;
        total.partial += b.partial;
        total.initiated += b.initiated;
        total.not_committed += b.not_committed;
    }
    total
}

/// Classifies one channel's requested transfers at the end of the
/// measurement window. The per-channel breakdowns sum to
/// [`completion_breakdown`] by construction — `tests/multi_channel.rs` pins
/// this invariant.
pub fn completion_breakdown_on(run: &RunOutput, channel: usize) -> CompletionBreakdown {
    let cutoff = run.measurement_end;
    let committed = committed_transfers_on(run, channel);
    let requested: u64 = run
        .submission_records
        .iter()
        .filter(|r| r.channel == channel)
        .map(|r| r.transfers as u64)
        .sum();

    let mut completed = 0u64;
    let mut partial = 0u64;
    let mut initiated = 0u64;
    let ch = channel as u64;
    for (packet_channel, seq) in run.telemetry.packets() {
        if packet_channel != ch {
            continue;
        }
        let acked = run
            .telemetry
            .step_time_on(ch, seq, TransferStep::AckConfirmation)
            .map(|t| t <= cutoff)
            .unwrap_or(false);
        let received = run
            .telemetry
            .step_time_on(ch, seq, TransferStep::RecvConfirmation)
            .map(|t| t <= cutoff)
            .unwrap_or(false);
        if acked {
            completed += 1;
        } else if received {
            partial += 1;
        } else {
            initiated += 1;
        }
    }
    // Transfers committed on chain but never observed by any relayer (e.g.
    // when event collection failed) are still "initiated".
    let observed = completed + partial + initiated;
    if committed > observed {
        initiated += committed - observed;
    }
    CompletionBreakdown {
        completed,
        partial,
        initiated,
        not_committed: requested.saturating_sub(committed),
    }
}

/// The per-phase latency breakdown of Fig. 12.
pub fn step_breakdown(run: &RunOutput) -> StepBreakdown {
    let earliest = |step: TransferStep| run.telemetry.times_for_step(step).into_iter().min();
    let latest = |step: TransferStep| run.telemetry.times_for_step(step).into_iter().max();

    let start = earliest(TransferStep::TransferBroadcast).unwrap_or(SimTime::ZERO);
    let end = latest(TransferStep::AckConfirmation).unwrap_or(start);
    let transfer_end = latest(TransferStep::TransferDataPull).unwrap_or(start);
    let recv_end = latest(TransferStep::RecvDataPull).unwrap_or(transfer_end);

    // The pulls run back-to-back on the packet worker, so the span from the
    // first to the last pull completion measures the time spent in that step.
    let pull_window = |step: TransferStep| -> f64 {
        match (earliest(step), latest(step)) {
            (Some(first), Some(last)) => (last - first).as_secs_f64(),
            _ => 0.0,
        }
    };

    StepBreakdown {
        total_secs: (end - start).as_secs_f64(),
        transfer_phase_secs: (transfer_end - start).as_secs_f64(),
        recv_phase_secs: (recv_end - transfer_end).as_secs_f64(),
        ack_phase_secs: (end - recv_end).as_secs_f64(),
        transfer_pull_secs: pull_window(TransferStep::TransferDataPull),
        recv_pull_secs: pull_window(TransferStep::RecvDataPull),
    }
}

/// The cumulative completion-percentage curve over time (Figs. 12 and 13).
pub fn completion_series(run: &RunOutput) -> TimeSeries {
    let mut times = run.telemetry.times_for_step(TransferStep::AckConfirmation);
    times.sort();
    let total = run.submission.requests_made.max(1) as f64;
    let mut series = TimeSeries::new("completed_pct");
    for (i, t) in times.iter().enumerate() {
        series.push(*t, (i + 1) as f64 / total * 100.0);
    }
    series
}

/// End-to-end completion latency: the time from the first transfer broadcast
/// until every requested transfer completed (Fig. 13's metric). Returns
/// `None` when not all transfers completed.
pub fn completion_latency(run: &RunOutput) -> Option<f64> {
    let completed = run.telemetry.count_for_step(TransferStep::AckConfirmation) as u64;
    if completed < run.submission.submitted || completed == 0 {
        return None;
    }
    let start = run
        .telemetry
        .times_for_step(TransferStep::TransferBroadcast)
        .into_iter()
        .min()?;
    let end = run
        .telemetry
        .times_for_step(TransferStep::AckConfirmation)
        .into_iter()
        .max()?;
    Some((end - start).as_secs_f64())
}

/// Total count of "packet messages are redundant" occurrences across all
/// relayers (the §IV-A multi-relayer observation).
pub fn redundant_packet_errors(run: &RunOutput) -> u64 {
    let skipped: u64 = run
        .relayer_stats
        .iter()
        .map(|s| s.packets_skipped_already_relayed)
        .sum();
    skipped + double_submitted_packets(run)
}

/// Number of receive transactions the destination chain *committed and
/// failed* as redundant — a packet physically submitted twice.
///
/// This deliberately excludes relayer-side skips (a skip is the dedup
/// machinery working): after a crash-and-restart, a relayer that lost its
/// in-memory pending queues may re-relay packets it already delivered, and
/// only an on-chain redundant failure proves a genuine double submission.
/// The fault scenarios and `tests/fault_recovery.rs` pin this at zero for a
/// single restarted relayer.
pub fn double_submitted_packets(run: &RunOutput) -> u64 {
    // Scan every distinct packet-destination chain (only chain B in the
    // legacy pair topology).
    let mut dsts: Vec<usize> = Vec::new();
    for &(_, dst) in &run.path_ends {
        if !dsts.contains(&dst) {
            dsts.push(dst);
        }
    }
    let mut count = 0u64;
    for dst in dsts {
        let chain = run.chains[dst].borrow();
        for height in 1..=chain.height() {
            if let Some(block) = chain.block_at(height) {
                count += block
                    .results
                    .iter()
                    .filter(|r| !r.is_ok() && r.log.contains("redundant"))
                    .count() as u64;
            }
        }
    }
    count
}

/// Packets committed on the source chain whose commitment is still
/// outstanding when the run ends: neither acknowledged nor timed out. With an
/// expired client (the `ClientExpiry` fault) and no workload timeout these
/// are the transfers stranded forever; with timeouts configured they drain
/// back to zero as refunds land.
pub fn stranded_packets(run: &RunOutput) -> u64 {
    run.paths
        .iter()
        .zip(&run.path_ends)
        .map(|(path, &(src, _))| {
            let chain = run.chains[src].borrow();
            let ibc = chain.app().ibc();
            let sent = ibc.sent_sequences(&path.port, &path.src_channel);
            ibc.unacknowledged_packets(&path.port, &path.src_channel, &sent)
                .len() as u64
        })
        .sum()
}

/// Average seconds from transfer broadcast to acknowledgement confirmation
/// over the packets of one global channel — the completion latency of one
/// leg of a multi-hop route. `None` when no packet on the channel recorded
/// both steps.
pub fn channel_completion_latency(run: &RunOutput, channel: usize) -> Option<f64> {
    let ch = channel as u64;
    let mut total = 0.0f64;
    let mut count = 0u64;
    for (packet_channel, seq) in run.telemetry.packets() {
        if packet_channel != ch {
            continue;
        }
        let start = run
            .telemetry
            .step_time_on(ch, seq, TransferStep::TransferBroadcast);
        let end = run
            .telemetry
            .step_time_on(ch, seq, TransferStep::AckConfirmation);
        if let (Some(start), Some(end)) = (start, end) {
            total += (end - start).as_secs_f64();
            count += 1;
        }
    }
    if count == 0 {
        None
    } else {
        Some(total / count as f64)
    }
}

/// Average seconds the hop forwarder took from a first-leg ack commit to
/// broadcasting the matching second-leg transaction, over one route's
/// accepted forwards. `None` when the route forwarded nothing.
pub fn forward_lag_secs(run: &RunOutput, route: usize) -> Option<f64> {
    let mut total = 0.0f64;
    let mut count = 0u64;
    for record in &run.forwards {
        if record.route != route || !record.accepted {
            continue;
        }
        total += (record.submitted_at - record.triggered_at).as_secs_f64();
        count += 1;
    }
    if count == 0 {
        None
    } else {
        Some(total / count as f64)
    }
}

/// Seconds from the fault plan's first fault until the first transfer
/// completion (source-chain acknowledgement) at or after it. `None` when the
/// plan is empty or nothing completed after the fault — the scenario layer
/// reports that as "no recovery observed".
pub fn time_to_first_completed_after_fault(run: &RunOutput) -> Option<f64> {
    let fault_at = SimTime::ZERO + run.deployment.fault_plan.first_fault_at()?;
    first_step_at_or_after(run, TransferStep::AckConfirmation, fault_at)
        .map(|t| (t - fault_at).as_secs_f64())
}

/// Seconds from the last `RelayerRestart` in the fault plan until the first
/// receive confirmation at or after it — the restarted process's time to
/// resume useful delivery. `None` when the plan schedules no restart or no
/// recv ever confirmed afterwards.
pub fn recovery_secs(run: &RunOutput) -> Option<f64> {
    let restart_at = SimTime::ZERO + run.deployment.fault_plan.last_restart_at()?;
    first_step_at_or_after(run, TransferStep::RecvConfirmation, restart_at)
        .map(|t| (t - restart_at).as_secs_f64())
}

/// The earliest telemetry time for `step` at or after `cutoff`.
fn first_step_at_or_after(run: &RunOutput, step: TransferStep, cutoff: SimTime) -> Option<SimTime> {
    run.telemetry
        .times_for_step(step)
        .into_iter()
        .filter(|t| *t >= cutoff)
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeploymentConfig, WorkloadConfig};
    use crate::runner::run_experiment;

    fn small_run(relayers: usize) -> RunOutput {
        let deployment = DeploymentConfig {
            user_accounts: 2,
            relayer_count: relayers,
            network_rtt_ms: 0,
            ..DeploymentConfig::default()
        };
        let workload = WorkloadConfig {
            total_transfers: 100,
            submission_blocks: 1,
            measurement_blocks: 3,
            completion_grace_blocks: 40,
            ..WorkloadConfig::default()
        };
        run_experiment(&deployment, &workload).expect("pair deployment builds")
    }

    #[test]
    fn metrics_cover_a_complete_small_run() {
        let run = small_run(1);
        assert_eq!(committed_transfers(&run), 100);
        let breakdown = completion_breakdown(&run);
        assert_eq!(breakdown.total(), 100);
        assert_eq!(breakdown.not_committed, 0);
        assert!(breakdown.completed > 0);
        assert!(throughput_tfps(&run) > 0.0);
        assert!(tendermint_throughput_tfps(&run) > 0.0);
        assert!(average_block_interval_secs(&run) >= 5.0);

        let steps = step_breakdown(&run);
        assert!(steps.total_secs > 0.0);
        // With a single 100-packet batch there is only one pull per phase, so
        // the share can legitimately be zero; it must just stay a fraction.
        assert!((0.0..1.0).contains(&steps.data_pull_share()));

        let series = completion_series(&run);
        assert!(!series.is_empty());
        assert!(series.last_value().unwrap() <= 100.0 + 1e-9);

        assert!(completion_latency(&run).unwrap() > 0.0);
    }

    #[test]
    fn fault_metrics_track_a_crash_and_restart_run() {
        use crate::fault::{FaultEvent, FaultPlan};
        use xcc_relayer::strategy::RelayerStrategy;
        use xcc_sim::SimDuration;

        let deployment = DeploymentConfig {
            user_accounts: 2,
            relayer_count: 1,
            network_rtt_ms: 0,
            relayer_strategy: RelayerStrategy::default().packet_clearing(2),
            // Crash before the first transfer block commits, restart two
            // blocks later: the restarted process must recover the missed
            // work via inbox replay and the packet-clear scan.
            fault_plan: FaultPlan::new([
                FaultEvent::RelayerCrash {
                    relayer: 0,
                    at: SimDuration::from_secs(4),
                },
                FaultEvent::RelayerRestart {
                    relayer: 0,
                    at: SimDuration::from_secs(16),
                },
            ]),
            ..DeploymentConfig::default()
        };
        let workload = WorkloadConfig {
            total_transfers: 60,
            submission_blocks: 1,
            measurement_blocks: 4,
            run_to_completion: true,
            completion_grace_blocks: 40,
            ..WorkloadConfig::default()
        };
        let run = run_experiment(&deployment, &workload).expect("pair deployment builds");
        // Everything recovers: no packet is submitted twice on-chain, none
        // stay stranded, and both recovery clocks produce a reading.
        assert_eq!(double_submitted_packets(&run), 0);
        assert_eq!(stranded_packets(&run), 0);
        assert!(recovery_secs(&run).is_some());
        assert!(time_to_first_completed_after_fault(&run).unwrap() >= 0.0);
        assert_eq!(
            run.telemetry.count_for_step(TransferStep::AckConfirmation),
            60
        );
    }

    #[test]
    fn two_relayers_generate_redundancy_signals() {
        let run = small_run(2);
        // With two uncoordinated relayers at zero latency, at least one of
        // redundancy skips or failed redundant transactions must appear.
        assert!(redundant_packet_errors(&run) > 0);
    }
}
