//! Declarative parameter sweeps executed on a worker pool.
//!
//! A [`SweepGrid`] is a base [`ExperimentSpec`] plus axes (input rates ×
//! relayer counts × channel counts × RTTs × submission strategies ×
//! transfer counts × relayer strategies × WebSocket frame limits ×
//! sequence-tracking modes × batched-pull surcharges × fault plans ×
//! topologies × seeds).
//! [`SweepGrid::points`] expands the cartesian product into a deterministic,
//! ordered list of specs; [`run_parallel`] executes any spec list on a
//! `std::thread::scope` worker pool. Because every run is fully determined
//! by its spec (all randomness flows from the seed), a parallel sweep
//! produces outcomes identical to a sequential one — the engine asserts
//! nothing less, and `tests/spec_api.rs` verifies it byte-for-byte.
//!
//! This module is also the single home of the sweep-related environment
//! variables that the bench binaries used to parse individually:
//!
//! * `XCC_FULL_SWEEP` — when set, use the paper's full parameter ranges
//!   ([`SweepMode::from_env`]);
//! * `XCC_SWEEP_THREADS` — worker-pool size ([`worker_threads`]), defaulting
//!   to the machine's available parallelism;
//! * `XCC_OUTPUT` — `text` (default), `json` or `csv` figure output
//!   ([`OutputFormat::from_env`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use xcc_relayer::strategy::{ChannelPolicy, RelayerStrategy, SequenceTracking};

use crate::fault::FaultPlan;
use crate::outcome::ScenarioOutcome;
use crate::scenarios;
use crate::spec::ExperimentSpec;
use crate::topology::Topology;

/// Quick sweeps keep CI fast; full sweeps reproduce the paper's ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepMode {
    /// Reduced parameter ranges (default).
    Quick,
    /// The paper's complete parameter ranges (`XCC_FULL_SWEEP`).
    Full,
}

impl SweepMode {
    /// Reads the mode from the `XCC_FULL_SWEEP` environment variable.
    pub fn from_env() -> Self {
        if std::env::var("XCC_FULL_SWEEP").is_ok() {
            SweepMode::Full
        } else {
            SweepMode::Quick
        }
    }

    /// Picks `full` in full mode, `quick` otherwise.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            SweepMode::Quick => quick,
            SweepMode::Full => full,
        }
    }
}

/// How figure runners emit their results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// The human-readable figure table (default).
    Text,
    /// One JSON document carrying every outcome (spec included).
    Json,
    /// A CSV table, one row per sweep point.
    Csv,
}

impl OutputFormat {
    /// Reads the format from the `XCC_OUTPUT` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("XCC_OUTPUT").as_deref() {
            Ok("json") => OutputFormat::Json,
            Ok("csv") => OutputFormat::Csv,
            _ => OutputFormat::Text,
        }
    }
}

/// The worker-pool size: `XCC_SWEEP_THREADS` if set, otherwise the machine's
/// available parallelism.
pub fn worker_threads() -> usize {
    if let Ok(raw) = std::env::var("XCC_SWEEP_THREADS") {
        if let Ok(n) = raw.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Deterministically derives the seed for sweep point `index` from a base
/// seed (splitmix64 of the pair), so grids without an explicit seed axis
/// still give every point an independent, reproducible random stream.
pub fn derive_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = base_seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `count` seeds derived from `base_seed` via [`derive_seed`].
pub fn derived_seeds(base_seed: u64, count: usize) -> Vec<u64> {
    (0..count as u64)
        .map(|i| derive_seed(base_seed, i))
        .collect()
}

/// A declarative parameter grid over one base spec.
///
/// Empty axes keep the base spec's value. [`points`](SweepGrid::points)
/// iterates the cartesian product with input rate as the outermost axis and
/// seed as the innermost, so outcomes group naturally per configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepGrid {
    /// The spec every point starts from.
    pub base: ExperimentSpec,
    /// Input rates in transfers per second (rate-driven families).
    pub input_rates: Vec<u64>,
    /// Relayer counts.
    pub relayer_counts: Vec<usize>,
    /// Concurrent channel counts (multi-channel deployments).
    pub channel_counts: Vec<usize>,
    /// Network round-trip times in milliseconds.
    pub rtts_ms: Vec<u64>,
    /// Submission strategies: block windows the batch is spread over.
    pub submission_blocks: Vec<u64>,
    /// Total transfer counts (latency / websocket families).
    pub transfer_counts: Vec<u64>,
    /// Relayer pipeline strategies (see [`RelayerStrategy`]).
    pub strategies: Vec<RelayerStrategy>,
    /// Channel policies, applied on top of the point's strategy — sweeping
    /// fleet topology (shared processes vs a dedicated process per channel)
    /// against the channel-count axis.
    pub channel_policies: Vec<ChannelPolicy>,
    /// WebSocket frame limits in bytes (`0` = Tendermint's 16 MiB default),
    /// applied on top of the point's strategy — the §V deployment limit as
    /// a sweepable axis.
    pub frame_limits: Vec<u64>,
    /// Account-sequence tracking modes, applied on top of the point's
    /// strategy — the §V sequence race as a sweepable axis (every point of
    /// the axis also reports `broadcast_failures`, the counter the race is
    /// measured by).
    pub sequence_trackings: Vec<SequenceTracking>,
    /// Batched-pull pagination surcharges in microseconds — the PR 2
    /// batched-query cost model as a calibration axis.
    pub batched_pull_per_items: Vec<u64>,
    /// Fault schedules, one run per plan — comparing a faulty arm against
    /// [`FaultPlan::none`] in one grid is how the recovery scenarios
    /// (`relayer_crash`, `chain_halt`, `client_expiry`) are built.
    pub fault_plans: Vec<FaultPlan>,
    /// Deployment topologies, one run per graph — comparing a hub-and-spoke
    /// or mesh arm against [`Topology::pair`] in one grid is how the
    /// topology scenarios (`hub_spoke_scaling`, `mesh_contention`) are
    /// built.
    pub topologies: Vec<Topology>,
    /// Explicit seeds; empty means "one point with the base seed".
    pub seeds: Vec<u64>,
}

impl SweepGrid {
    /// A grid with no axes: exactly one point, the base spec itself.
    pub fn new(base: ExperimentSpec) -> Self {
        SweepGrid {
            base,
            input_rates: Vec::new(),
            relayer_counts: Vec::new(),
            channel_counts: Vec::new(),
            rtts_ms: Vec::new(),
            submission_blocks: Vec::new(),
            transfer_counts: Vec::new(),
            strategies: Vec::new(),
            channel_policies: Vec::new(),
            frame_limits: Vec::new(),
            sequence_trackings: Vec::new(),
            batched_pull_per_items: Vec::new(),
            fault_plans: Vec::new(),
            topologies: Vec::new(),
            seeds: Vec::new(),
        }
    }

    /// Sets the input-rate axis.
    pub fn input_rates(mut self, rates: impl IntoIterator<Item = u64>) -> Self {
        self.input_rates = rates.into_iter().collect();
        self
    }

    /// Sets the relayer-count axis.
    pub fn relayer_counts(mut self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.relayer_counts = counts.into_iter().collect();
        self
    }

    /// Sets the channel-count axis (concurrent channels per deployment).
    pub fn channel_counts(mut self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.channel_counts = counts.into_iter().collect();
        self
    }

    /// Sets the RTT axis.
    pub fn rtts_ms(mut self, rtts: impl IntoIterator<Item = u64>) -> Self {
        self.rtts_ms = rtts.into_iter().collect();
        self
    }

    /// Sets the submission-strategy axis.
    pub fn submission_blocks(mut self, blocks: impl IntoIterator<Item = u64>) -> Self {
        self.submission_blocks = blocks.into_iter().collect();
        self
    }

    /// Sets the transfer-count axis.
    pub fn transfer_counts(mut self, counts: impl IntoIterator<Item = u64>) -> Self {
        self.transfer_counts = counts.into_iter().collect();
        self
    }

    /// Sets the relayer-strategy axis.
    pub fn strategies(mut self, strategies: impl IntoIterator<Item = RelayerStrategy>) -> Self {
        self.strategies = strategies.into_iter().collect();
        self
    }

    /// Sets the channel-policy axis; combines with the strategy axis, the
    /// policy being applied on top of each point's strategy. Sweeping
    /// [`ChannelPolicy::Dedicated`] against
    /// [`channel_counts`](SweepGrid::channel_counts) sweeps fleet topology:
    /// dedicated points deploy one relayer process per channel.
    pub fn channel_policies(mut self, policies: impl IntoIterator<Item = ChannelPolicy>) -> Self {
        self.channel_policies = policies.into_iter().collect();
        self
    }

    /// Sets the WebSocket frame-limit axis in bytes (`0` = the 16 MiB
    /// default); combines with the strategy axis, the limit being applied on
    /// top of each point's strategy.
    pub fn frame_limits(mut self, limits: impl IntoIterator<Item = u64>) -> Self {
        self.frame_limits = limits.into_iter().collect();
        self
    }

    /// Sets the account-sequence tracking axis; combines with the strategy
    /// axis, the tracking mode being applied on top of each point's
    /// strategy. Every point of the axis reports `broadcast_failures`.
    pub fn sequence_trackings(
        mut self,
        trackings: impl IntoIterator<Item = SequenceTracking>,
    ) -> Self {
        self.sequence_trackings = trackings.into_iter().collect();
        self
    }

    /// Sets the batched-pull pagination surcharge axis in microseconds
    /// (`0` models free pagination).
    pub fn batched_pull_per_items(mut self, micros: impl IntoIterator<Item = u64>) -> Self {
        self.batched_pull_per_items = micros.into_iter().collect();
        self
    }

    /// Sets the fault-plan axis. Each plan runs as its own point; include
    /// [`FaultPlan::none`] to keep a fault-free control arm in the grid.
    pub fn fault_plans(mut self, plans: impl IntoIterator<Item = FaultPlan>) -> Self {
        self.fault_plans = plans.into_iter().collect();
        self
    }

    /// Sets the topology axis. Each graph runs as its own point; include
    /// [`Topology::pair`] to keep the two-chain baseline arm in the grid.
    pub fn topologies(mut self, topologies: impl IntoIterator<Item = Topology>) -> Self {
        self.topologies = topologies.into_iter().collect();
        self
    }

    /// Sets the seed axis.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the seed axis to `count` seeds derived from the base seed.
    pub fn derived_seeds(self, count: usize) -> Self {
        let base_seed = self.base.deployment.seed;
        self.seeds(derived_seeds(base_seed, count))
    }

    /// The number of points the grid expands to.
    pub fn len(&self) -> usize {
        fn axis(len: usize) -> usize {
            len.max(1)
        }
        axis(self.input_rates.len())
            * axis(self.relayer_counts.len())
            * axis(self.channel_counts.len())
            * axis(self.rtts_ms.len())
            * axis(self.submission_blocks.len())
            * axis(self.transfer_counts.len())
            * axis(self.strategies.len())
            * axis(self.channel_policies.len())
            * axis(self.frame_limits.len())
            * axis(self.sequence_trackings.len())
            * axis(self.batched_pull_per_items.len())
            * axis(self.fault_plans.len())
            * axis(self.topologies.len())
            * axis(self.seeds.len())
    }

    /// Whether the grid expands to no points (never: it is at least 1).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Expands the grid into an ordered list of specs. Point names extend the
    /// base name with the axis values that produced them, so sweep output is
    /// self-describing.
    pub fn points(&self) -> Vec<ExperimentSpec> {
        fn axis<T: Copy>(values: &[T]) -> Vec<Option<T>> {
            if values.is_empty() {
                vec![None]
            } else {
                values.iter().copied().map(Some).collect()
            }
        }
        // Same expansion for non-`Copy` axis values (fault plans own their
        // event lists): absent axis → one `None` point keeping the base.
        fn axis_ref<T>(values: &[T]) -> Vec<Option<&T>> {
            if values.is_empty() {
                vec![None]
            } else {
                values.iter().map(Some).collect()
            }
        }

        let mut specs = Vec::with_capacity(self.len());
        for rate in axis(&self.input_rates) {
            for relayers in axis(&self.relayer_counts) {
                for channels in axis(&self.channel_counts) {
                    for rtt in axis(&self.rtts_ms) {
                        for blocks in axis(&self.submission_blocks) {
                            for transfers in axis(&self.transfer_counts) {
                                for strategy in axis(&self.strategies) {
                                    for policy in axis(&self.channel_policies) {
                                        for frame_limit in axis(&self.frame_limits) {
                                            for tracking in axis(&self.sequence_trackings) {
                                                for pull_item in axis(&self.batched_pull_per_items)
                                                {
                                                    for plan in axis_ref(&self.fault_plans) {
                                                        for topo in axis_ref(&self.topologies) {
                                                            for seed in axis(&self.seeds) {
                                                                let mut spec = self.base.clone();
                                                                let mut name = spec.name.clone();
                                                                if let Some(rate) = rate {
                                                                    spec = spec.input_rate(rate);
                                                                    name.push_str(&format!(
                                                                        "/rate={rate}"
                                                                    ));
                                                                }
                                                                if let Some(relayers) = relayers {
                                                                    spec = spec.relayers(relayers);
                                                                    name.push_str(&format!(
                                                                        "/relayers={relayers}"
                                                                    ));
                                                                }
                                                                if let Some(channels) = channels {
                                                                    spec = spec.channels(channels);
                                                                    name.push_str(&format!(
                                                                        "/channels={channels}"
                                                                    ));
                                                                }
                                                                if let Some(rtt) = rtt {
                                                                    spec = spec.rtt_ms(rtt);
                                                                    name.push_str(&format!(
                                                                        "/rtt={rtt}"
                                                                    ));
                                                                }
                                                                if let Some(transfers) = transfers {
                                                                    spec =
                                                                        spec.transfers(transfers);
                                                                    name.push_str(&format!(
                                                                        "/transfers={transfers}"
                                                                    ));
                                                                }
                                                                if let Some(blocks) = blocks {
                                                                    spec = spec
                                                                        .submission_blocks(blocks);
                                                                    name.push_str(&format!(
                                                                        "/blocks={blocks}"
                                                                    ));
                                                                }
                                                                if let Some(strategy) = strategy {
                                                                    spec = spec.strategy(strategy);
                                                                    name.push_str(&format!(
                                                                        "/strategy={}",
                                                                        strategy.label()
                                                                    ));
                                                                }
                                                                if let Some(policy) = policy {
                                                                    spec =
                                                                        spec.channel_policy(policy);
                                                                    name.push_str(&format!(
                                                                        "/policy={}",
                                                                        policy.label()
                                                                    ));
                                                                }
                                                                if let Some(frame_limit) =
                                                                    frame_limit
                                                                {
                                                                    spec = spec
                                                                        .frame_limit(frame_limit);
                                                                    name.push_str(&format!(
                                                                        "/frame={frame_limit}"
                                                                    ));
                                                                }
                                                                if let Some(tracking) = tracking {
                                                                    spec = spec.sequence_tracking(
                                                                        tracking,
                                                                    );
                                                                    name.push_str(&format!(
                                                                        "/seqtrack={}",
                                                                        tracking.label()
                                                                    ));
                                                                }
                                                                if let Some(pull_item) = pull_item {
                                                                    spec = spec
                                                                        .batched_pull_per_item_us(
                                                                            pull_item,
                                                                        );
                                                                    name.push_str(&format!(
                                                                        "/pull_item={pull_item}us"
                                                                    ));
                                                                }
                                                                if let Some(plan) = plan {
                                                                    spec = spec
                                                                        .fault_plan(plan.clone());
                                                                    name.push_str(&format!(
                                                                        "/faults={}",
                                                                        plan.label()
                                                                    ));
                                                                }
                                                                if let Some(topo) = topo {
                                                                    spec =
                                                                        spec.topology(topo.clone());
                                                                    name.push_str(&format!(
                                                                        "/topo={}",
                                                                        topo.label()
                                                                    ));
                                                                }
                                                                if let Some(seed) = seed {
                                                                    spec = spec.seed(seed);
                                                                    name.push_str(&format!(
                                                                        "/seed={seed}"
                                                                    ));
                                                                }
                                                                specs.push(spec.named(name));
                                                            }
                                                        }
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        specs
    }

    /// Runs the whole grid on the default worker pool.
    pub fn run(&self) -> Vec<ScenarioOutcome> {
        run_parallel(&self.points(), worker_threads())
    }
}

/// Runs the specs sequentially, in order.
pub fn run_sequential(specs: &[ExperimentSpec]) -> Vec<ScenarioOutcome> {
    specs.iter().map(scenarios::run).collect()
}

/// Runs the specs on a pool of `threads` workers, returning outcomes in spec
/// order. Every run is deterministic in its spec, so the result is identical
/// to [`run_sequential`] regardless of scheduling.
pub fn run_parallel(specs: &[ExperimentSpec], threads: usize) -> Vec<ScenarioOutcome> {
    let threads = threads.max(1).min(specs.len().max(1));
    if threads <= 1 {
        return run_sequential(specs);
    }

    let next: AtomicUsize = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ScenarioOutcome>>> =
        specs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(index) else { break };
                let outcome = scenarios::run(spec);
                // A poisoned slot only means another worker panicked after
                // completing its own point; this point's outcome is still
                // valid, so recover the guard and store it.
                *slots[index].lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
            });
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                // Every index below `next` was claimed by some worker; if a
                // slot is still empty (a worker died mid-point), recompute it
                // sequentially — determinism makes the rerun identical.
                .unwrap_or_else(|| scenarios::run(&specs[index]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_expansion_is_the_cartesian_product_in_order() {
        let grid = SweepGrid::new(ExperimentSpec::relayer_throughput().measurement_blocks(4))
            .input_rates([20, 40])
            .rtts_ms([0, 200])
            .seeds([1, 2]);
        assert_eq!(grid.len(), 8);
        let points = grid.points();
        assert_eq!(points.len(), 8);
        assert_eq!(points[0].name, "relayer_throughput/rate=20/rtt=0/seed=1");
        assert_eq!(points[1].name, "relayer_throughput/rate=20/rtt=0/seed=2");
        assert_eq!(points[2].name, "relayer_throughput/rate=20/rtt=200/seed=1");
        assert_eq!(points[7].name, "relayer_throughput/rate=40/rtt=200/seed=2");
        assert_eq!(points[7].deployment.seed, 2);
        assert_eq!(points[7].deployment.network_rtt_ms, 200);
        assert_eq!(points[7].workload.transfers_per_window(), 200);
    }

    #[test]
    fn empty_axes_keep_the_base_spec() {
        let base = ExperimentSpec::latency().transfers(100);
        let grid = SweepGrid::new(base.clone());
        assert_eq!(grid.len(), 1);
        assert_eq!(grid.points(), vec![base]);
    }

    #[test]
    fn channel_and_frame_axes_expand_like_any_other() {
        let grid = SweepGrid::new(
            ExperimentSpec::relayer_throughput()
                .input_rate(20)
                .measurement_blocks(3),
        )
        .channel_counts([1, 2])
        .frame_limits([0, 1 << 20]);
        assert_eq!(grid.len(), 4);
        let points = grid.points();
        assert_eq!(points[0].name, "relayer_throughput/channels=1/frame=0");
        assert_eq!(
            points[3].name,
            "relayer_throughput/channels=2/frame=1048576"
        );
        assert_eq!(points[3].deployment.channel_count, 2);
        assert_eq!(
            points[3].deployment.relayer_strategy.ws_frame_limit_bytes,
            1 << 20
        );
        // Frame limits compose with the strategy axis.
        let composed = SweepGrid::new(ExperimentSpec::relayer_throughput())
            .strategies([RelayerStrategy::batched_pulls()])
            .frame_limits([4096])
            .points();
        assert_eq!(
            composed[0].deployment.relayer_strategy,
            RelayerStrategy::batched_pulls().frame_limit(4096)
        );
    }

    #[test]
    fn sequence_tracking_and_pull_surcharge_axes_expand_like_any_other() {
        let grid = SweepGrid::new(
            ExperimentSpec::relayer_throughput()
                .input_rate(20)
                .measurement_blocks(3),
        )
        .sequence_trackings([SequenceTracking::Resync, SequenceTracking::MempoolAware])
        .batched_pull_per_items([0, 240]);
        assert_eq!(grid.len(), 4);
        let points = grid.points();
        assert_eq!(
            points[0].name,
            "relayer_throughput/seqtrack=resync/pull_item=0us"
        );
        assert_eq!(
            points[3].name,
            "relayer_throughput/seqtrack=mempool/pull_item=240us"
        );
        assert_eq!(
            points[3].deployment.relayer_strategy.sequence_tracking,
            SequenceTracking::MempoolAware
        );
        assert_eq!(points[3].deployment.batched_pull_per_item_us, 240);
        // Every point of the tracking axis reports the race's counter.
        assert!(points
            .iter()
            .all(|p| p.deployment.report_broadcast_failures));
        // The tracking mode composes with the strategy axis.
        let composed = SweepGrid::new(ExperimentSpec::relayer_throughput())
            .strategies([RelayerStrategy::batched_pulls()])
            .sequence_trackings([SequenceTracking::MempoolAware])
            .points();
        assert_eq!(
            composed[0].deployment.relayer_strategy,
            RelayerStrategy::batched_pulls().sequence_tracking(SequenceTracking::MempoolAware)
        );
    }

    #[test]
    fn fault_plan_axis_expands_with_control_arm_and_labels() {
        use crate::fault::{FaultEvent, FaultPlan};
        use xcc_sim::SimDuration;

        let crash_plan = FaultPlan::new([
            FaultEvent::RelayerCrash {
                relayer: 0,
                at: SimDuration::from_secs(16),
            },
            FaultEvent::RelayerRestart {
                relayer: 0,
                at: SimDuration::from_secs(26),
            },
        ]);
        let grid = SweepGrid::new(
            ExperimentSpec::relayer_throughput()
                .input_rate(20)
                .measurement_blocks(3),
        )
        .fault_plans([FaultPlan::none(), crash_plan.clone()])
        .seeds([1, 2]);
        assert_eq!(grid.len(), 4);
        let points = grid.points();
        assert_eq!(points[0].name, "relayer_throughput/faults=none/seed=1");
        assert_eq!(
            points[3].name,
            "relayer_throughput/faults=crash0@16s+restart0@26s/seed=2"
        );
        assert!(points[0].deployment.fault_plan.is_empty());
        assert_eq!(points[3].deployment.fault_plan, crash_plan);
        assert_eq!(points[3].deployment.seed, 2);
    }

    #[test]
    fn topology_axis_expands_with_pair_control_arm_and_labels() {
        let grid = SweepGrid::new(
            ExperimentSpec::relayer_throughput()
                .input_rate(20)
                .measurement_blocks(3),
        )
        .topologies([Topology::pair(), Topology::hub_and_spoke(3)])
        .seeds([1, 2]);
        assert_eq!(grid.len(), 4);
        let points = grid.points();
        assert_eq!(points[0].name, "relayer_throughput/topo=pair/seed=1");
        assert_eq!(points[3].name, "relayer_throughput/topo=hub-3/seed=2");
        assert!(points[0].deployment.topology.is_legacy_pair());
        assert_eq!(points[3].deployment.topology, Topology::hub_and_spoke(3));
        assert_eq!(points[3].deployment.seed, 2);
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let a = derived_seeds(42, 8);
        let b = derived_seeds(42, 8);
        assert_eq!(a, b);
        let mut unique = a.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 8);
        assert_ne!(derived_seeds(43, 8), a);
    }

    #[test]
    fn parallel_matches_sequential_for_a_small_grid() {
        let grid = SweepGrid::new(
            ExperimentSpec::relayer_throughput()
                .measurement_blocks(3)
                .rtt_ms(0),
        )
        .input_rates([10, 20])
        .seeds([1, 2]);
        let specs = grid.points();
        let sequential = run_sequential(&specs);
        let parallel = run_parallel(&specs, 4);
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.len(), 4);
    }

    #[test]
    fn mode_pick_selects_by_variant() {
        assert_eq!(SweepMode::Quick.pick(1, 2), 1);
        assert_eq!(SweepMode::Full.pick(1, 2), 2);
    }
}
