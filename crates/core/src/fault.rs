//! Deterministic fault plans for dependability experiments.
//!
//! A [`FaultPlan`] is the user-facing, serde-able description of the faults a
//! run injects: which relayer process crashes and when it restarts, which
//! chain halts or stretches its block interval, which relay path's light
//! client expires. It lives on
//! [`DeploymentConfig`](crate::config::DeploymentConfig) so a plan travels
//! with the spec through JSON, sweeps and golden fixtures like every other
//! deployment knob. Event times are [`SimDuration`] offsets from simulation
//! start.
//!
//! [`FaultPlan::compile`] lowers the plan to the simulation kernel's
//! domain-neutral [`FaultTimeline`]: relayer ids become process indices,
//! [`FaultChain::Source`]/[`FaultChain::Destination`] become service indices
//! 0/1, and path indices become trust subjects. The runner schedules the
//! compiled timeline up-front, so an empty plan schedules nothing and leaves
//! every pre-existing event ordering untouched (see docs/DETERMINISM.md).

use serde::{de_field, Deserialize, Error, Serialize, Value};
use xcc_sim::{FaultKind, FaultTimeline, SimDuration, SimTime};

/// Which of the two chains a chain-level fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultChain {
    /// The source (sending) chain.
    Source,
    /// The destination (receiving) chain.
    Destination,
}

impl FaultChain {
    /// Short label used in sweep point names and fixture names.
    pub fn label(&self) -> &'static str {
        match self {
            FaultChain::Source => "src",
            FaultChain::Destination => "dst",
        }
    }

    /// The simulation-kernel service index this chain compiles to.
    fn service(&self) -> usize {
        match self {
            FaultChain::Source => 0,
            FaultChain::Destination => 1,
        }
    }
}

impl Serialize for FaultChain {
    fn to_value(&self) -> Value {
        Value::Str(
            match self {
                FaultChain::Source => "source",
                FaultChain::Destination => "destination",
            }
            .to_string(),
        )
    }
}

impl Deserialize for FaultChain {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s == "source" => Ok(FaultChain::Source),
            Value::Str(s) if s == "destination" => Ok(FaultChain::Destination),
            _ => Err(Error::custom(
                "expected \"source\" or \"destination\" for FaultChain",
            )),
        }
    }
}

/// One scheduled fault. Times are offsets from simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Relayer process `relayer` crashes at `at`, losing all in-memory state
    /// (pending queues, sequence-tracker caches, inbox).
    RelayerCrash {
        /// Index of the crashing relayer process.
        relayer: usize,
        /// When the crash happens.
        at: SimDuration,
    },
    /// Relayer process `relayer` restarts cold at `at`: it re-reads its
    /// account sequences over RPC and rejoins the notify/wake protocol.
    RelayerRestart {
        /// Index of the restarting relayer process.
        relayer: usize,
        /// When the restart happens.
        at: SimDuration,
    },
    /// `chain` produces no blocks for `duration` starting at `from`.
    ChainHalt {
        /// Which chain halts.
        chain: FaultChain,
        /// When the halt begins.
        from: SimDuration,
        /// How long the halt lasts.
        duration: SimDuration,
    },
    /// `chain` runs its block interval `factor`× slower for `duration`
    /// starting at `from` (fig. 7 territory). `factor` is an integer
    /// multiplier so stretched schedules stay exactly representable.
    BlockStretch {
        /// Which chain slows down.
        chain: FaultChain,
        /// Integer multiplier applied to the chain's minimum block interval.
        factor: u64,
        /// When the stretch window opens.
        from: SimDuration,
        /// How long the stretch window lasts.
        duration: SimDuration,
    },
    /// The light client backing relay path `path` lapses at `at`: recv/ack
    /// verification against it fails from then on, stranding the channel
    /// (recovery is out of band, as for a real trust-period expiry).
    ClientExpiry {
        /// Index of the stranded relay path.
        path: usize,
        /// When the client expires.
        at: SimDuration,
    },
}

impl FaultEvent {
    /// When the event fires, as an offset from simulation start.
    pub fn at(&self) -> SimDuration {
        match self {
            FaultEvent::RelayerCrash { at, .. }
            | FaultEvent::RelayerRestart { at, .. }
            | FaultEvent::ClientExpiry { at, .. } => *at,
            FaultEvent::ChainHalt { from, .. } | FaultEvent::BlockStretch { from, .. } => *from,
        }
    }

    /// Compact label used in sweep point names (e.g. `crash0@16s`).
    pub fn label(&self) -> String {
        fn secs(d: &SimDuration) -> u64 {
            d.as_millis() / 1_000
        }
        match self {
            FaultEvent::RelayerCrash { relayer, at } => {
                format!("crash{relayer}@{}s", secs(at))
            }
            FaultEvent::RelayerRestart { relayer, at } => {
                format!("restart{relayer}@{}s", secs(at))
            }
            FaultEvent::ChainHalt {
                chain,
                from,
                duration,
            } => format!("halt-{}@{}s+{}s", chain.label(), secs(from), secs(duration)),
            FaultEvent::BlockStretch {
                chain,
                factor,
                from,
                duration,
            } => format!(
                "stretch-{}x{factor}@{}s+{}s",
                chain.label(),
                secs(from),
                secs(duration)
            ),
            FaultEvent::ClientExpiry { path, at } => {
                format!("expiry{path}@{}s", secs(at))
            }
        }
    }

    fn to_kind(self) -> FaultKind {
        match self {
            FaultEvent::RelayerCrash { relayer, .. } => {
                FaultKind::ProcessCrash { process: relayer }
            }
            FaultEvent::RelayerRestart { relayer, .. } => {
                FaultKind::ProcessRestart { process: relayer }
            }
            FaultEvent::ChainHalt {
                chain, duration, ..
            } => FaultKind::ServiceHalt {
                service: chain.service(),
                duration,
            },
            FaultEvent::BlockStretch {
                chain,
                factor,
                duration,
                ..
            } => FaultKind::ServiceStretch {
                service: chain.service(),
                factor,
                duration,
            },
            FaultEvent::ClientExpiry { path, .. } => FaultKind::TrustExpiry { subject: path },
        }
    }
}

impl Serialize for FaultEvent {
    fn to_value(&self) -> Value {
        let (tag, body) = match self {
            FaultEvent::RelayerCrash { relayer, at } => (
                "RelayerCrash",
                Value::Map(vec![
                    ("relayer".to_string(), relayer.to_value()),
                    ("at".to_string(), at.to_value()),
                ]),
            ),
            FaultEvent::RelayerRestart { relayer, at } => (
                "RelayerRestart",
                Value::Map(vec![
                    ("relayer".to_string(), relayer.to_value()),
                    ("at".to_string(), at.to_value()),
                ]),
            ),
            FaultEvent::ChainHalt {
                chain,
                from,
                duration,
            } => (
                "ChainHalt",
                Value::Map(vec![
                    ("chain".to_string(), chain.to_value()),
                    ("from".to_string(), from.to_value()),
                    ("duration".to_string(), duration.to_value()),
                ]),
            ),
            FaultEvent::BlockStretch {
                chain,
                factor,
                from,
                duration,
            } => (
                "BlockStretch",
                Value::Map(vec![
                    ("chain".to_string(), chain.to_value()),
                    ("factor".to_string(), factor.to_value()),
                    ("from".to_string(), from.to_value()),
                    ("duration".to_string(), duration.to_value()),
                ]),
            ),
            FaultEvent::ClientExpiry { path, at } => (
                "ClientExpiry",
                Value::Map(vec![
                    ("path".to_string(), path.to_value()),
                    ("at".to_string(), at.to_value()),
                ]),
            ),
        };
        Value::Map(vec![(tag.to_string(), body)])
    }
}

impl Deserialize for FaultEvent {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom("expected object for FaultEvent"))?;
        let (tag, body) = match map {
            [(tag, body)] => (tag.as_str(), body),
            _ => {
                return Err(Error::custom(
                    "expected single externally-tagged variant for FaultEvent",
                ))
            }
        };
        let fields = body
            .as_map()
            .ok_or_else(|| Error::custom("expected object for FaultEvent body"))?;
        match tag {
            "RelayerCrash" => Ok(FaultEvent::RelayerCrash {
                relayer: de_field(fields, "relayer")?,
                at: de_field(fields, "at")?,
            }),
            "RelayerRestart" => Ok(FaultEvent::RelayerRestart {
                relayer: de_field(fields, "relayer")?,
                at: de_field(fields, "at")?,
            }),
            "ChainHalt" => Ok(FaultEvent::ChainHalt {
                chain: de_field(fields, "chain")?,
                from: de_field(fields, "from")?,
                duration: de_field(fields, "duration")?,
            }),
            "BlockStretch" => Ok(FaultEvent::BlockStretch {
                chain: de_field(fields, "chain")?,
                factor: de_field(fields, "factor")?,
                from: de_field(fields, "from")?,
                duration: de_field(fields, "duration")?,
            }),
            "ClientExpiry" => Ok(FaultEvent::ClientExpiry {
                path: de_field(fields, "path")?,
                at: de_field(fields, "at")?,
            }),
            other => Err(Error::custom(format!(
                "unknown FaultEvent variant `{other}`"
            ))),
        }
    }
}

/// The fault schedule of one run: a list of [`FaultEvent`]s. The default
/// (and the value every pre-fault spec JSON parses to) is the empty plan,
/// which injects nothing and perturbs nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled fault events, in any order; [`compile`](Self::compile)
    /// stable-sorts them by time.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan (injects nothing).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan from a list of events.
    pub fn new(events: impl IntoIterator<Item = FaultEvent>) -> Self {
        FaultPlan {
            events: events.into_iter().collect(),
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Compact label used in sweep point names: `none` for the empty plan,
    /// otherwise the event labels joined with `+`.
    pub fn label(&self) -> String {
        if self.events.is_empty() {
            return "none".to_string();
        }
        self.events
            .iter()
            .map(FaultEvent::label)
            .collect::<Vec<_>>()
            .join("+")
    }

    /// The time of the earliest event, if any (offset from simulation start).
    pub fn first_fault_at(&self) -> Option<SimDuration> {
        self.events.iter().map(FaultEvent::at).min()
    }

    /// The time of the latest [`FaultEvent::RelayerRestart`], if any.
    pub fn last_restart_at(&self) -> Option<SimDuration> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::RelayerRestart { at, .. } => Some(*at),
                _ => None,
            })
            .max()
    }

    /// Lowers the plan to the simulation kernel's timeline: offsets become
    /// absolute [`SimTime`]s, relayers become processes, chains become
    /// services 0 (source) / 1 (destination), paths become trust subjects.
    pub fn compile(&self) -> FaultTimeline {
        FaultTimeline::from_events(
            self.events
                .iter()
                .map(|e| (SimTime::ZERO + e.at(), e.to_kind())),
        )
    }
}

impl Serialize for FaultPlan {
    fn to_value(&self) -> Value {
        Value::Map(vec![("events".to_string(), self.events.to_value())])
    }
}

impl Deserialize for FaultPlan {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom("expected object for FaultPlan"))?;
        Ok(FaultPlan {
            events: de_field(map, "events")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan::new([
            FaultEvent::RelayerRestart {
                relayer: 0,
                at: SimDuration::from_secs(26),
            },
            FaultEvent::RelayerCrash {
                relayer: 0,
                at: SimDuration::from_secs(16),
            },
            FaultEvent::ChainHalt {
                chain: FaultChain::Source,
                from: SimDuration::from_secs(40),
                duration: SimDuration::from_secs(30),
            },
            FaultEvent::BlockStretch {
                chain: FaultChain::Destination,
                factor: 4,
                from: SimDuration::from_secs(80),
                duration: SimDuration::from_secs(20),
            },
            FaultEvent::ClientExpiry {
                path: 0,
                at: SimDuration::from_secs(55),
            },
        ])
    }

    #[test]
    fn plans_round_trip_through_serde_values() {
        let plan = sample_plan();
        let back = FaultPlan::from_value(&plan.to_value()).unwrap();
        assert_eq!(back, plan);
        let empty = FaultPlan::none();
        assert_eq!(FaultPlan::from_value(&empty.to_value()).unwrap(), empty);
    }

    #[test]
    fn compile_sorts_events_and_maps_chains_to_services() {
        let timeline = sample_plan().compile();
        assert_eq!(timeline.len(), 5);
        let (t0, k0) = timeline.get(0).unwrap();
        assert_eq!(t0, SimTime::from_secs(16));
        assert_eq!(k0, xcc_sim::FaultKind::ProcessCrash { process: 0 });
        let (_, halt) = timeline.get(2).unwrap();
        assert_eq!(
            halt,
            xcc_sim::FaultKind::ServiceHalt {
                service: 0,
                duration: SimDuration::from_secs(30)
            }
        );
        let (t_last, stretch) = timeline.get(4).unwrap();
        assert_eq!(t_last, SimTime::from_secs(80));
        assert_eq!(
            stretch,
            xcc_sim::FaultKind::ServiceStretch {
                service: 1,
                factor: 4,
                duration: SimDuration::from_secs(20)
            }
        );
        assert!(FaultPlan::none().compile().is_empty());
    }

    #[test]
    fn labels_are_compact_and_stable() {
        assert_eq!(FaultPlan::none().label(), "none");
        let plan = FaultPlan::new([
            FaultEvent::RelayerCrash {
                relayer: 1,
                at: SimDuration::from_secs(16),
            },
            FaultEvent::RelayerRestart {
                relayer: 1,
                at: SimDuration::from_secs(26),
            },
        ]);
        assert_eq!(plan.label(), "crash1@16s+restart1@26s");
        let expiry = FaultPlan::new([FaultEvent::ClientExpiry {
            path: 2,
            at: SimDuration::from_secs(30),
        }]);
        assert_eq!(expiry.label(), "expiry2@30s");
        let halt = FaultPlan::new([FaultEvent::ChainHalt {
            chain: FaultChain::Source,
            from: SimDuration::from_secs(40),
            duration: SimDuration::from_secs(30),
        }]);
        assert_eq!(halt.label(), "halt-src@40s+30s");
        let stretch = FaultPlan::new([FaultEvent::BlockStretch {
            chain: FaultChain::Destination,
            factor: 4,
            from: SimDuration::from_secs(80),
            duration: SimDuration::from_secs(20),
        }]);
        assert_eq!(stretch.label(), "stretch-dstx4@80s+20s");
    }

    #[test]
    fn fault_time_helpers_report_first_and_last() {
        let plan = sample_plan();
        assert_eq!(plan.first_fault_at(), Some(SimDuration::from_secs(16)));
        assert_eq!(plan.last_restart_at(), Some(SimDuration::from_secs(26)));
        assert_eq!(FaultPlan::none().first_fault_at(), None);
        assert_eq!(FaultPlan::none().last_restart_at(), None);
    }
}
