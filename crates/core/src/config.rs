//! Experiment configuration: deployment and workload parameters.
//!
//! These two structs correspond to the "Deployment configuration" and
//! "Workload configuration" inputs of the framework's Setup and Benchmark
//! modules (Fig. 5 of the paper). The defaults reproduce the paper's
//! experiment settings (§III-C/D).

use serde::{de_field, de_field_or_default, Deserialize, Error, Serialize, Value};

use xcc_relayer::strategy::RelayerStrategy;
use xcc_sim::SimDuration;

use crate::fault::FaultPlan;
use crate::topology::{HopRoute, Topology};

/// Parameters of the deployed testnet (the Setup module's input).
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentConfig {
    /// Identifier of the source chain.
    pub source_chain_id: String,
    /// Identifier of the destination chain.
    pub destination_chain_id: String,
    /// Number of validators per chain (the paper uses 5).
    pub validators_per_chain: usize,
    /// Emulated round-trip network latency in milliseconds (0 or 200 in the
    /// paper).
    pub network_rtt_ms: u64,
    /// Minimum block interval (the paper configures 5 seconds).
    pub min_block_interval: SimDuration,
    /// Number of relayer instances serving the cross-chain channels.
    pub relayer_count: usize,
    /// Number of concurrent transfer channels opened between the two chains
    /// (the paper's testbed uses exactly 1). Every relayer serves every
    /// channel unless the strategy's channel policy dedicates instances.
    pub channel_count: usize,
    /// The pipeline strategy every relayer instance runs; the default is the
    /// paper's Hermes pipeline (see [`RelayerStrategy`]).
    pub relayer_strategy: RelayerStrategy,
    /// Number of funded user accounts available to the workload generator.
    pub user_accounts: usize,
    /// Initial balance of every funded account (fee denomination).
    pub account_balance: u128,
    /// Seed for all randomness in the experiment.
    pub seed: u64,
    /// Per-item pagination surcharge of a batched data pull, in microseconds
    /// — the `RpcCostModel::batched_pull_per_item` calibration knob as
    /// deployment configuration, so the PR 2 batched-pull surcharge sweeps
    /// like every other cost parameter
    /// ([`SweepGrid::batched_pull_per_items`](crate::sweep::SweepGrid::batched_pull_per_items)).
    /// The default (120 µs) is the cost model's calibrated value; `0` models
    /// free pagination.
    pub batched_pull_per_item_us: u64,
    /// When true, scenario outcomes additionally report the relayers'
    /// `broadcast_failures` counter as a metric. Off by default so the
    /// metric maps of runs that never asked for it — the pre-knob golden
    /// fixtures included — stay unchanged; the
    /// [`sequence_tracking`](crate::spec::ExperimentSpec::sequence_tracking)
    /// spec builder switches it on for both arms of the §V sequence-race
    /// comparison.
    pub report_broadcast_failures: bool,
    /// The deterministic fault schedule injected into the run (relayer
    /// crash/restart, chain halt, block stretch, light-client expiry). The
    /// default is the empty plan, which schedules nothing — runs and fixtures
    /// written before fault injection existed are bit-identical to an
    /// explicit empty plan (see docs/DETERMINISM.md).
    pub fault_plan: FaultPlan,
    /// The chain graph the testnet deploys. The default (empty) topology is
    /// the legacy-pair sentinel: it resolves to
    /// `source_chain_id → destination_chain_id` with `channel_count`
    /// channels, so spec JSON written before topologies existed (every
    /// earlier golden fixture) parses to a deployment that behaves
    /// bit-identically to the old pair path.
    pub topology: Topology,
    /// When true, scenario outcomes additionally report the run's
    /// deterministic work counters (`work_*` metrics — see
    /// [`crate::work::WorkProfile`] and docs/PERFORMANCE.md). Off by
    /// default, and — unlike every unconditional field above — the key is
    /// only *serialized* when set, so specs that never asked for profiling
    /// (every committed golden fixture) keep their JSON bytes unchanged.
    pub profile_work: bool,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            source_chain_id: "ibc-0".to_string(),
            destination_chain_id: "ibc-1".to_string(),
            validators_per_chain: 5,
            network_rtt_ms: 200,
            min_block_interval: SimDuration::from_secs(5),
            relayer_count: 1,
            channel_count: 1,
            relayer_strategy: RelayerStrategy::default(),
            user_accounts: 64,
            account_balance: 1_000_000_000_000,
            seed: 42,
            batched_pull_per_item_us: DEFAULT_BATCHED_PULL_PER_ITEM_US,
            report_broadcast_failures: false,
            fault_plan: FaultPlan::default(),
            topology: Topology::default(),
            profile_work: false,
        }
    }
}

/// The cost model's calibrated batched-pull pagination surcharge in
/// microseconds — the value deployments use unless the
/// `batched_pull_per_item_us` knob overrides it.
pub const DEFAULT_BATCHED_PULL_PER_ITEM_US: u64 = 120;

// Hand-written serde impls (instead of the derive) so that configuration
// JSON written before the `relayer_strategy` / `channel_count` fields
// existed still parses: missing fields fall back to the paper's
// single-channel, default-strategy deployment.
impl Serialize for DeploymentConfig {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("source_chain_id".into(), self.source_chain_id.to_value()),
            (
                "destination_chain_id".into(),
                self.destination_chain_id.to_value(),
            ),
            (
                "validators_per_chain".into(),
                self.validators_per_chain.to_value(),
            ),
            ("network_rtt_ms".into(), self.network_rtt_ms.to_value()),
            (
                "min_block_interval".into(),
                self.min_block_interval.to_value(),
            ),
            ("relayer_count".into(), self.relayer_count.to_value()),
            ("channel_count".into(), self.channel_count.to_value()),
            ("relayer_strategy".into(), self.relayer_strategy.to_value()),
            ("user_accounts".into(), self.user_accounts.to_value()),
            ("account_balance".into(), self.account_balance.to_value()),
            ("seed".into(), self.seed.to_value()),
            (
                "batched_pull_per_item_us".into(),
                self.batched_pull_per_item_us.to_value(),
            ),
            (
                "report_broadcast_failures".into(),
                self.report_broadcast_failures.to_value(),
            ),
            ("fault_plan".into(), self.fault_plan.to_value()),
            ("topology".into(), self.topology.to_value()),
        ];
        // Skip-default: emitted only when set, so pre-profiling spec JSON —
        // every committed golden fixture — serializes byte-identically.
        if self.profile_work {
            fields.push(("profile_work".into(), self.profile_work.to_value()));
        }
        Value::Map(fields)
    }
}

impl Deserialize for DeploymentConfig {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom("expected object for DeploymentConfig"))?;
        let relayer_strategy = match map.iter().find(|(k, _)| k == "relayer_strategy") {
            Some((_, value)) => RelayerStrategy::from_value(value)?,
            None => RelayerStrategy::default(),
        };
        // Missing (pre-multi-channel JSON) and explicit-zero channel counts
        // both mean the paper's single channel.
        let channel_count = de_field_or_default::<usize>(map, "channel_count")?.max(1);
        // A missing surcharge field (pre-calibration-axis JSON) means the
        // cost model's calibrated default; an explicit 0 means free
        // pagination, so the usual or-default shim does not apply here.
        let batched_pull_per_item_us =
            match map.iter().find(|(k, _)| k == "batched_pull_per_item_us") {
                Some((_, value)) => u64::from_value(value)?,
                None => DEFAULT_BATCHED_PULL_PER_ITEM_US,
            };
        Ok(DeploymentConfig {
            source_chain_id: de_field(map, "source_chain_id")?,
            destination_chain_id: de_field(map, "destination_chain_id")?,
            validators_per_chain: de_field(map, "validators_per_chain")?,
            network_rtt_ms: de_field(map, "network_rtt_ms")?,
            min_block_interval: de_field(map, "min_block_interval")?,
            relayer_count: de_field(map, "relayer_count")?,
            channel_count,
            relayer_strategy,
            user_accounts: de_field(map, "user_accounts")?,
            account_balance: de_field(map, "account_balance")?,
            seed: de_field(map, "seed")?,
            batched_pull_per_item_us,
            report_broadcast_failures: de_field_or_default(map, "report_broadcast_failures")?,
            // Missing (pre-fault-injection JSON, every earlier golden
            // fixture) means the empty plan: inject nothing.
            fault_plan: de_field_or_default(map, "fault_plan")?,
            // Missing (pre-topology JSON) means the legacy-pair sentinel:
            // the two-chain line the paper's testbed hard-wires.
            topology: de_field_or_default(map, "topology")?,
            // Missing (pre-profiling JSON, and every run that did not ask
            // for counters) means profiling metrics are not emitted.
            profile_work: de_field_or_default(map, "profile_work")?,
        })
    }
}

/// Parameters of the benchmark workload (the Benchmark module's input).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Total number of cross-chain transfers to request.
    pub total_transfers: u64,
    /// Number of transfer messages batched per transaction (the paper uses
    /// 100, the Hermes maximum).
    pub transfers_per_tx: usize,
    /// Number of consecutive block windows the submission is spread over
    /// (Fig. 13 varies this from 1 to 64).
    pub submission_blocks: u64,
    /// Length of the measurement window in source-chain blocks (15 for the
    /// Tendermint experiments, 50 for the relayer experiments).
    pub measurement_blocks: u64,
    /// Packet timeout expressed in destination-chain blocks (0 disables the
    /// height timeout).
    pub timeout_blocks: u64,
    /// CPU time the submitting CLI spends building and signing one
    /// transaction.
    pub cli_cost_per_tx: SimDuration,
    /// If true, keep producing blocks after the measurement window until all
    /// in-flight transfers either complete or time out (used by the latency
    /// experiments).
    pub run_to_completion: bool,
    /// Hard cap on additional blocks produced while running to completion.
    pub completion_grace_blocks: u64,
    /// Relative traffic weights per channel in a multi-channel deployment:
    /// transaction `i` targets the channel picked by a deterministic
    /// weighted round-robin over these weights. Empty means uniform
    /// round-robin across every open channel (and is the only sensible value
    /// for single-channel deployments).
    pub channel_weights: Vec<u64>,
    /// Multi-hop routes: once a transfer submitted on a route's `first_leg`
    /// channel is acknowledged, the runner forwards it as a fresh transfer on
    /// the `second_leg` channel (src → hub → dst as two chained IBC
    /// transfers). Empty (the default, and the value every pre-topology JSON
    /// parses to) disables forwarding; routes whose channels are out of range
    /// for the deployed topology are ignored.
    pub hop_plan: Vec<HopRoute>,
}

// Hand-written serde impls so that workload JSON written before
// `channel_weights` existed (the golden fixtures) still parses: a missing
// field falls back to uniform round-robin.
impl Serialize for WorkloadConfig {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("total_transfers".into(), self.total_transfers.to_value()),
            ("transfers_per_tx".into(), self.transfers_per_tx.to_value()),
            (
                "submission_blocks".into(),
                self.submission_blocks.to_value(),
            ),
            (
                "measurement_blocks".into(),
                self.measurement_blocks.to_value(),
            ),
            ("timeout_blocks".into(), self.timeout_blocks.to_value()),
            ("cli_cost_per_tx".into(), self.cli_cost_per_tx.to_value()),
            (
                "run_to_completion".into(),
                self.run_to_completion.to_value(),
            ),
            (
                "completion_grace_blocks".into(),
                self.completion_grace_blocks.to_value(),
            ),
            ("channel_weights".into(), self.channel_weights.to_value()),
            ("hop_plan".into(), self.hop_plan.to_value()),
        ])
    }
}

impl Deserialize for WorkloadConfig {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom("expected object for WorkloadConfig"))?;
        let channel_weights: Vec<u64> = de_field_or_default(map, "channel_weights")?;
        Ok(WorkloadConfig {
            total_transfers: de_field(map, "total_transfers")?,
            transfers_per_tx: de_field(map, "transfers_per_tx")?,
            submission_blocks: de_field(map, "submission_blocks")?,
            measurement_blocks: de_field(map, "measurement_blocks")?,
            timeout_blocks: de_field(map, "timeout_blocks")?,
            cli_cost_per_tx: de_field(map, "cli_cost_per_tx")?,
            run_to_completion: de_field(map, "run_to_completion")?,
            completion_grace_blocks: de_field(map, "completion_grace_blocks")?,
            channel_weights,
            // Missing (pre-topology JSON, every earlier golden fixture)
            // means no multi-hop forwarding.
            hop_plan: de_field_or_default(map, "hop_plan")?,
        })
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            total_transfers: 5_000,
            transfers_per_tx: 100,
            submission_blocks: 1,
            measurement_blocks: 50,
            timeout_blocks: 0,
            cli_cost_per_tx: SimDuration::from_millis(12),
            run_to_completion: true,
            completion_grace_blocks: 400,
            channel_weights: Vec::new(),
            hop_plan: Vec::new(),
        }
    }
}

impl WorkloadConfig {
    /// A workload expressed as the paper's "input rate": `rate` requests per
    /// second sustained for `measurement_blocks` windows of the nominal
    /// 5-second block interval.
    pub fn from_input_rate(rate_rps: u64, measurement_blocks: u64) -> Self {
        let transfers_per_window = rate_rps * 5;
        WorkloadConfig {
            total_transfers: transfers_per_window * measurement_blocks,
            submission_blocks: measurement_blocks,
            measurement_blocks,
            ..WorkloadConfig::default()
        }
    }

    /// Transfers submitted per block window.
    pub fn transfers_per_window(&self) -> u64 {
        self.total_transfers.div_ceil(self.submission_blocks.max(1))
    }

    /// Transactions submitted per block window.
    pub fn txs_per_window(&self) -> u64 {
        self.transfers_per_window()
            .div_ceil(self.transfers_per_tx as u64)
    }

    /// The nominal input rate in requests (transfers) per second assuming
    /// 5-second blocks, as the paper defines it.
    pub fn input_rate_rps(&self) -> f64 {
        self.transfers_per_window() as f64 / 5.0
    }

    /// The deterministic channel-targeting pattern for a deployment with
    /// `channel_count` channels: transaction `i` targets channel
    /// `pattern[i % pattern.len()]`.
    ///
    /// With empty `channel_weights` this is a uniform round-robin
    /// `[0, 1, …, n-1]`; with weights, each channel appears once per weight
    /// unit (`[2, 1]` → `[0, 0, 1]`). Channels beyond the weight list get
    /// weight 0 and receive no traffic; a weight list longer than the
    /// channel list is truncated.
    pub fn channel_pattern(&self, channel_count: usize) -> Vec<usize> {
        let n = channel_count.max(1);
        if self.channel_weights.is_empty() {
            return (0..n).collect();
        }
        let pattern: Vec<usize> = self
            .channel_weights
            .iter()
            .take(n)
            .enumerate()
            .flat_map(|(channel, weight)| std::iter::repeat_n(channel, *weight as usize))
            .collect();
        if pattern.is_empty() {
            (0..n).collect()
        } else {
            pattern
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let d = DeploymentConfig::default();
        assert_eq!(d.validators_per_chain, 5);
        assert_eq!(d.network_rtt_ms, 200);
        assert_eq!(d.min_block_interval, SimDuration::from_secs(5));
        assert_eq!(d.relayer_strategy, RelayerStrategy::default());
        let w = WorkloadConfig::default();
        assert_eq!(w.transfers_per_tx, 100);
    }

    #[test]
    fn deployment_round_trips_and_tolerates_pre_strategy_json() {
        let mut d = DeploymentConfig {
            relayer_strategy: RelayerStrategy::batched_pulls(),
            ..DeploymentConfig::default()
        };
        d.seed = 7;
        let json = serde_json::to_string(&d).unwrap();
        let back: DeploymentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);

        // Config JSON written before the strategy field existed still parses,
        // falling back to the paper-default pipeline.
        let legacy = json
            .split_once(",\"relayer_strategy\"")
            .map(|(head, tail)| {
                let rest = tail.split_once(",\"user_accounts\"").unwrap().1;
                format!("{head},\"user_accounts\"{rest}")
            })
            .unwrap();
        assert!(!legacy.contains("relayer_strategy"));
        let parsed: DeploymentConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(parsed.relayer_strategy, RelayerStrategy::default());
        assert_eq!(parsed.seed, 7);
    }

    #[test]
    fn input_rate_conversion_matches_paper_examples() {
        // "a request rate of 1,000 transfers per second corresponds to a
        // batch of 5,000 transfers being submitted every 5 seconds".
        let w = WorkloadConfig::from_input_rate(1_000, 15);
        assert_eq!(w.transfers_per_window(), 5_000);
        assert_eq!(w.txs_per_window(), 50);
        assert_eq!(w.total_transfers, 75_000);
        assert!((w.input_rate_rps() - 1_000.0).abs() < f64::EPSILON);
    }

    #[test]
    fn pre_multi_channel_json_still_parses() {
        // Deployment / workload JSON written before `channel_count` /
        // `channel_weights` existed (the golden fixtures) must parse to the
        // single-channel uniform defaults.
        let deployment_json = serde_json::to_string(&DeploymentConfig::default()).unwrap();
        let legacy = deployment_json.replace(",\"channel_count\":1", "");
        assert!(!legacy.contains("channel_count"));
        let parsed: DeploymentConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(parsed.channel_count, 1);

        let workload_json = serde_json::to_string(&WorkloadConfig::default()).unwrap();
        let legacy = workload_json.replace(",\"channel_weights\":[]", "");
        assert!(!legacy.contains("channel_weights"));
        let parsed: WorkloadConfig = serde_json::from_str(&legacy).unwrap();
        assert!(parsed.channel_weights.is_empty());
        assert_eq!(parsed, WorkloadConfig::default());
    }

    #[test]
    fn pre_calibration_json_defaults_the_new_knobs() {
        // Deployment JSON written before the batched-pull calibration /
        // broadcast-failure reporting knobs existed (the golden fixtures)
        // must parse to the calibrated surcharge and no extra metrics.
        let json = serde_json::to_string(&DeploymentConfig::default()).unwrap();
        let legacy = json
            .replace(
                &format!(",\"batched_pull_per_item_us\":{DEFAULT_BATCHED_PULL_PER_ITEM_US}"),
                "",
            )
            .replace(",\"report_broadcast_failures\":false", "");
        assert!(!legacy.contains("batched_pull_per_item_us"));
        assert!(!legacy.contains("report_broadcast_failures"));
        let parsed: DeploymentConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(parsed, DeploymentConfig::default());
        assert_eq!(
            parsed.batched_pull_per_item_us,
            DEFAULT_BATCHED_PULL_PER_ITEM_US
        );
        assert!(!parsed.report_broadcast_failures);

        // An explicit zero surcharge (free pagination) survives the round
        // trip — it is distinct from "field missing".
        let free = DeploymentConfig {
            batched_pull_per_item_us: 0,
            ..DeploymentConfig::default()
        };
        let back: DeploymentConfig =
            serde_json::from_str(&serde_json::to_string(&free).unwrap()).unwrap();
        assert_eq!(back.batched_pull_per_item_us, 0);
    }

    #[test]
    fn pre_fault_json_still_parses_to_the_empty_plan() {
        // Deployment JSON written before fault injection existed (every
        // earlier golden fixture) must parse to the empty fault plan, and an
        // explicit plan must survive a round trip.
        let json = serde_json::to_string(&DeploymentConfig::default()).unwrap();
        let legacy = json.replace(",\"fault_plan\":{\"events\":[]}", "");
        assert!(!legacy.contains("fault_plan"));
        let parsed: DeploymentConfig = serde_json::from_str(&legacy).unwrap();
        assert!(parsed.fault_plan.is_empty());
        assert_eq!(parsed, DeploymentConfig::default());

        let faulted = DeploymentConfig {
            fault_plan: FaultPlan::new([
                crate::fault::FaultEvent::RelayerCrash {
                    relayer: 0,
                    at: SimDuration::from_secs(16),
                },
                crate::fault::FaultEvent::RelayerRestart {
                    relayer: 0,
                    at: SimDuration::from_secs(26),
                },
            ]),
            ..DeploymentConfig::default()
        };
        let back: DeploymentConfig =
            serde_json::from_str(&serde_json::to_string(&faulted).unwrap()).unwrap();
        assert_eq!(back, faulted);
    }

    #[test]
    fn pre_topology_json_still_parses_to_the_pair_sentinel() {
        // Deployment / workload JSON written before topologies existed
        // (every earlier golden fixture) must parse to the legacy-pair
        // sentinel and an empty hop plan.
        let json = serde_json::to_string(&DeploymentConfig::default()).unwrap();
        let legacy = json.replace(",\"topology\":{\"chains\":[],\"edges\":[]}", "");
        assert!(!legacy.contains("topology"));
        let parsed: DeploymentConfig = serde_json::from_str(&legacy).unwrap();
        assert!(parsed.topology.is_legacy_pair());
        assert_eq!(parsed, DeploymentConfig::default());

        let workload_json = serde_json::to_string(&WorkloadConfig::default()).unwrap();
        let legacy = workload_json.replace(",\"hop_plan\":[]", "");
        assert!(!legacy.contains("hop_plan"));
        let parsed: WorkloadConfig = serde_json::from_str(&legacy).unwrap();
        assert!(parsed.hop_plan.is_empty());
        assert_eq!(parsed, WorkloadConfig::default());

        // An explicit topology and hop plan survive a round trip.
        let meshed = DeploymentConfig {
            topology: Topology::hub_and_spoke(3),
            ..DeploymentConfig::default()
        };
        let back: DeploymentConfig =
            serde_json::from_str(&serde_json::to_string(&meshed).unwrap()).unwrap();
        assert_eq!(back, meshed);
        let hopped = WorkloadConfig {
            hop_plan: Topology::hub_and_spoke_routes(3),
            ..WorkloadConfig::default()
        };
        let back: WorkloadConfig =
            serde_json::from_str(&serde_json::to_string(&hopped).unwrap()).unwrap();
        assert_eq!(back, hopped);
    }

    #[test]
    fn channel_patterns_follow_weights() {
        let uniform = WorkloadConfig::default();
        assert_eq!(uniform.channel_pattern(1), vec![0]);
        assert_eq!(uniform.channel_pattern(3), vec![0, 1, 2]);

        let weighted = WorkloadConfig {
            channel_weights: vec![2, 1],
            ..WorkloadConfig::default()
        };
        assert_eq!(weighted.channel_pattern(2), vec![0, 0, 1]);
        // Extra channels beyond the weight list get no traffic; surplus
        // weights are truncated to the open channels.
        assert_eq!(weighted.channel_pattern(3), vec![0, 0, 1]);
        assert_eq!(weighted.channel_pattern(1), vec![0, 0]);
        // All-zero weights fall back to uniform round-robin.
        let zeros = WorkloadConfig {
            channel_weights: vec![0, 0],
            ..WorkloadConfig::default()
        };
        assert_eq!(zeros.channel_pattern(2), vec![0, 1]);
    }

    #[test]
    fn window_computations_round_up() {
        let w = WorkloadConfig {
            total_transfers: 250,
            transfers_per_tx: 100,
            submission_blocks: 2,
            ..WorkloadConfig::default()
        };
        assert_eq!(w.transfers_per_window(), 125);
        assert_eq!(w.txs_per_window(), 2);
    }
}
