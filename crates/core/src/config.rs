//! Experiment configuration: deployment and workload parameters.
//!
//! These two structs correspond to the "Deployment configuration" and
//! "Workload configuration" inputs of the framework's Setup and Benchmark
//! modules (Fig. 5 of the paper). The defaults reproduce the paper's
//! experiment settings (§III-C/D).

use serde::{Deserialize, Serialize};

use xcc_sim::SimDuration;

/// Parameters of the deployed testnet (the Setup module's input).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// Identifier of the source chain.
    pub source_chain_id: String,
    /// Identifier of the destination chain.
    pub destination_chain_id: String,
    /// Number of validators per chain (the paper uses 5).
    pub validators_per_chain: usize,
    /// Emulated round-trip network latency in milliseconds (0 or 200 in the
    /// paper).
    pub network_rtt_ms: u64,
    /// Minimum block interval (the paper configures 5 seconds).
    pub min_block_interval: SimDuration,
    /// Number of relayer instances serving the single cross-chain channel.
    pub relayer_count: usize,
    /// Number of funded user accounts available to the workload generator.
    pub user_accounts: usize,
    /// Initial balance of every funded account (fee denomination).
    pub account_balance: u128,
    /// Seed for all randomness in the experiment.
    pub seed: u64,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            source_chain_id: "ibc-0".to_string(),
            destination_chain_id: "ibc-1".to_string(),
            validators_per_chain: 5,
            network_rtt_ms: 200,
            min_block_interval: SimDuration::from_secs(5),
            relayer_count: 1,
            user_accounts: 64,
            account_balance: 1_000_000_000_000,
            seed: 42,
        }
    }
}

/// Parameters of the benchmark workload (the Benchmark module's input).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Total number of cross-chain transfers to request.
    pub total_transfers: u64,
    /// Number of transfer messages batched per transaction (the paper uses
    /// 100, the Hermes maximum).
    pub transfers_per_tx: usize,
    /// Number of consecutive block windows the submission is spread over
    /// (Fig. 13 varies this from 1 to 64).
    pub submission_blocks: u64,
    /// Length of the measurement window in source-chain blocks (15 for the
    /// Tendermint experiments, 50 for the relayer experiments).
    pub measurement_blocks: u64,
    /// Packet timeout expressed in destination-chain blocks (0 disables the
    /// height timeout).
    pub timeout_blocks: u64,
    /// CPU time the submitting CLI spends building and signing one
    /// transaction.
    pub cli_cost_per_tx: SimDuration,
    /// If true, keep producing blocks after the measurement window until all
    /// in-flight transfers either complete or time out (used by the latency
    /// experiments).
    pub run_to_completion: bool,
    /// Hard cap on additional blocks produced while running to completion.
    pub completion_grace_blocks: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            total_transfers: 5_000,
            transfers_per_tx: 100,
            submission_blocks: 1,
            measurement_blocks: 50,
            timeout_blocks: 0,
            cli_cost_per_tx: SimDuration::from_millis(12),
            run_to_completion: true,
            completion_grace_blocks: 400,
        }
    }
}

impl WorkloadConfig {
    /// A workload expressed as the paper's "input rate": `rate` requests per
    /// second sustained for `measurement_blocks` windows of the nominal
    /// 5-second block interval.
    pub fn from_input_rate(rate_rps: u64, measurement_blocks: u64) -> Self {
        let transfers_per_window = rate_rps * 5;
        WorkloadConfig {
            total_transfers: transfers_per_window * measurement_blocks,
            submission_blocks: measurement_blocks,
            measurement_blocks,
            ..WorkloadConfig::default()
        }
    }

    /// Transfers submitted per block window.
    pub fn transfers_per_window(&self) -> u64 {
        self.total_transfers.div_ceil(self.submission_blocks.max(1))
    }

    /// Transactions submitted per block window.
    pub fn txs_per_window(&self) -> u64 {
        self.transfers_per_window()
            .div_ceil(self.transfers_per_tx as u64)
    }

    /// The nominal input rate in requests (transfers) per second assuming
    /// 5-second blocks, as the paper defines it.
    pub fn input_rate_rps(&self) -> f64 {
        self.transfers_per_window() as f64 / 5.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let d = DeploymentConfig::default();
        assert_eq!(d.validators_per_chain, 5);
        assert_eq!(d.network_rtt_ms, 200);
        assert_eq!(d.min_block_interval, SimDuration::from_secs(5));
        let w = WorkloadConfig::default();
        assert_eq!(w.transfers_per_tx, 100);
    }

    #[test]
    fn input_rate_conversion_matches_paper_examples() {
        // "a request rate of 1,000 transfers per second corresponds to a
        // batch of 5,000 transfers being submitted every 5 seconds".
        let w = WorkloadConfig::from_input_rate(1_000, 15);
        assert_eq!(w.transfers_per_window(), 5_000);
        assert_eq!(w.txs_per_window(), 50);
        assert_eq!(w.total_transfers, 75_000);
        assert!((w.input_rate_rps() - 1_000.0).abs() < f64::EPSILON);
    }

    #[test]
    fn window_computations_round_up() {
        let w = WorkloadConfig {
            total_transfers: 250,
            transfers_per_tx: 100,
            submission_blocks: 2,
            ..WorkloadConfig::default()
        };
        assert_eq!(w.transfers_per_window(), 125);
        assert_eq!(w.txs_per_window(), 2);
    }
}
