//! Named scenario registry: every table and figure of the paper, runnable by
//! name.
//!
//! Each entry pairs a parameter grid (quick and full ranges) with a renderer
//! that formats the sweep's outcomes the way the paper's table or figure
//! presents them. The bench binaries, the `figure` CLI and external callers
//! all go through this registry:
//!
//! ```rust,no_run
//! use xcc_framework::registry;
//! use xcc_framework::sweep::SweepMode;
//!
//! let entry = registry::get("fig8").expect("fig8 is registered");
//! let report = entry.report(SweepMode::Quick);
//! println!("{report}");
//! ```

use xcc_relayer::strategy::{ChannelPolicy, RelayerStrategy, SequenceTracking};
use xcc_sim::SimDuration;

use crate::fault::{FaultChain, FaultEvent, FaultPlan};
use crate::outcome::{keys, ScenarioOutcome};
use crate::report::ExecutionReport;
use crate::spec::ExperimentSpec;
use crate::sweep::{SweepGrid, SweepMode};
use crate::topology::Topology;

/// One named, registered scenario.
pub struct ScenarioEntry {
    /// The registry key (`fig6` … `fig13`, `table1`, `websocket_limit`, the
    /// `*_batched_pulls`-style strategy counterfactuals, `smoke`).
    pub name: &'static str,
    /// One-line description shown by `--list`.
    pub title: &'static str,
    grid: fn(SweepMode) -> SweepGrid,
    render: fn(&[ScenarioOutcome]) -> ExecutionReport,
}

impl ScenarioEntry {
    /// The parameter grid this scenario sweeps in `mode`.
    pub fn grid(&self, mode: SweepMode) -> SweepGrid {
        (self.grid)(mode)
    }

    /// Runs the sweep on the default worker pool and returns raw outcomes.
    pub fn run(&self, mode: SweepMode) -> Vec<ScenarioOutcome> {
        self.grid(mode).run()
    }

    /// Formats already-computed outcomes as this scenario's table.
    pub fn render(&self, outcomes: &[ScenarioOutcome]) -> ExecutionReport {
        (self.render)(outcomes)
    }

    /// Runs the sweep and renders the figure in one step.
    pub fn report(&self, mode: SweepMode) -> ExecutionReport {
        self.render(&self.run(mode))
    }
}

/// Every registered scenario, in paper order.
pub fn entries() -> &'static [ScenarioEntry] {
    &ENTRIES
}

/// The names of every registered scenario, in paper order.
pub fn names() -> Vec<&'static str> {
    ENTRIES.iter().map(|e| e.name).collect()
}

/// Looks a scenario up by name.
pub fn get(name: &str) -> Option<&'static ScenarioEntry> {
    ENTRIES.iter().find(|e| e.name == name)
}

/// The registered name closest to `name` (case-insensitive Levenshtein
/// distance), if any is close enough to plausibly be a typo. Drives the
/// `figure` CLI's "did you mean" hint.
pub fn suggest(name: &str) -> Option<&'static str> {
    let query = name.to_ascii_lowercase();
    ENTRIES
        .iter()
        .map(|e| (edit_distance(&query, e.name), e.name))
        .filter(|(distance, candidate)| *distance <= candidate.len().div_ceil(2))
        .min_by_key(|(distance, _)| *distance)
        .map(|(_, candidate)| candidate)
}

fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut previous: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut current = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let substitute = previous[j] + usize::from(ca != cb);
            current.push(substitute.min(previous[j + 1] + 1).min(current[j] + 1));
        }
        previous = current;
    }
    previous[b.len()]
}

static ENTRIES: [ScenarioEntry; 26] = [
    ScenarioEntry {
        name: "fig6",
        title: "Tendermint throughput (TFPS) vs input rate",
        grid: fig6_grid,
        render: fig6_render,
    },
    ScenarioEntry {
        name: "fig7",
        title: "Average block interval vs input rate",
        grid: fig7_grid,
        render: fig7_render,
    },
    ScenarioEntry {
        name: "fig8",
        title: "Cross-chain throughput with one relayer",
        grid: fig8_grid,
        render: relayer_throughput_render,
    },
    ScenarioEntry {
        name: "fig9",
        title: "Cross-chain throughput with two relayers",
        grid: fig9_grid,
        render: relayer_throughput_render,
    },
    ScenarioEntry {
        name: "fig10",
        title: "Completion status, one relayer, 200 ms RTT",
        grid: fig10_grid,
        render: completion_render,
    },
    ScenarioEntry {
        name: "fig11",
        title: "Completion status, two relayers, 200 ms RTT",
        grid: fig11_grid,
        render: completion_render,
    },
    ScenarioEntry {
        name: "fig12",
        title: "Latency breakdown of one large batch",
        grid: fig12_grid,
        render: fig12_render,
    },
    ScenarioEntry {
        name: "fig13",
        title: "Completion latency vs submission strategy",
        grid: fig13_grid,
        render: fig13_render,
    },
    ScenarioEntry {
        name: "table1",
        title: "Tendermint throughput execution summary",
        grid: table1_grid,
        render: table1_render,
    },
    ScenarioEntry {
        name: "websocket_limit",
        title: "WebSocket 16 MiB frame-limit challenge",
        grid: websocket_grid,
        render: websocket_render,
    },
    ScenarioEntry {
        name: "fig8_batched_pulls",
        title: "Fig. 8 counterfactual: batched data pulls",
        grid: fig8_batched_grid,
        render: relayer_throughput_render,
    },
    ScenarioEntry {
        name: "fig11_coordinated",
        title: "Fig. 11 counterfactual: partitioned relayers",
        grid: fig11_coordinated_grid,
        render: completion_render,
    },
    ScenarioEntry {
        name: "fig12_parallel_fetch",
        title: "Fig. 12 counterfactual: concurrent data pulls",
        grid: fig12_parallel_grid,
        render: fig12_render,
    },
    ScenarioEntry {
        name: "fig13_adaptive_submission",
        title: "Fig. 13 counterfactual: adaptive relayer batching",
        grid: fig13_adaptive_grid,
        render: fig13_render,
    },
    ScenarioEntry {
        name: "multi_channel_scaling",
        title: "Cross-chain throughput vs concurrent channel count",
        grid: multi_channel_grid,
        render: multi_channel_render,
    },
    ScenarioEntry {
        name: "frame_limit_sweep",
        title: "WebSocket frame limit × packet clearing as sweep axes",
        grid: frame_limit_grid,
        render: frame_limit_render,
    },
    ScenarioEntry {
        name: "channel_contention",
        title: "Weighted multi-channel load under channel policies",
        grid: channel_contention_grid,
        render: channel_contention_render,
    },
    ScenarioEntry {
        name: "sequence_race",
        title: "§V account-sequence race: resync vs mempool-aware tracking",
        grid: sequence_race_grid,
        render: sequence_race_render,
    },
    ScenarioEntry {
        name: "dedicated_scaling",
        title: "Dedicated per-channel relayer fleet vs one shared process",
        grid: dedicated_scaling_grid,
        render: dedicated_scaling_render,
    },
    ScenarioEntry {
        name: "batched_pull_calibration",
        title: "Batched-pull pagination surcharge calibration sweep",
        grid: batched_pull_calibration_grid,
        render: batched_pull_calibration_render,
    },
    ScenarioEntry {
        name: "relayer_crash",
        title: "Relayer crash/restart: recovery via packet clearing",
        grid: relayer_crash_grid,
        render: relayer_crash_render,
    },
    ScenarioEntry {
        name: "chain_halt",
        title: "Source-chain halt and block stretch vs steady state",
        grid: chain_halt_grid,
        render: chain_halt_render,
    },
    ScenarioEntry {
        name: "client_expiry",
        title: "Light-client expiry stranding a channel mid-run",
        grid: client_expiry_grid,
        render: client_expiry_render,
    },
    ScenarioEntry {
        name: "hub_spoke_scaling",
        title: "Hub-and-spoke topology with multi-hop relaying vs one pair",
        grid: hub_spoke_grid,
        render: hub_spoke_render,
    },
    ScenarioEntry {
        name: "mesh_contention",
        title: "Full-mesh topology under uniform load vs one pair",
        grid: mesh_contention_grid,
        render: mesh_contention_render,
    },
    ScenarioEntry {
        name: "smoke",
        title: "Cheap end-to-end run for CI smoke checks",
        grid: smoke_grid,
        render: completion_render,
    },
];

// ---------------------------------------------------------------------------
// Grids (the paper's parameter ranges; quick mode keeps CI fast)
// ---------------------------------------------------------------------------

fn tendermint_rates(mode: SweepMode) -> Vec<u64> {
    mode.pick(
        vec![250, 500, 1_000, 2_000, 3_000, 5_000, 9_000, 13_000],
        vec![
            250, 500, 750, 1_000, 2_000, 3_000, 4_000, 5_000, 6_000, 7_000, 8_000, 9_000, 10_000,
            11_000, 12_000, 13_000,
        ],
    )
}

fn relayer_rates(mode: SweepMode) -> Vec<u64> {
    mode.pick(
        vec![20, 60, 100, 140, 200, 300],
        vec![
            20, 40, 60, 80, 100, 120, 140, 160, 180, 200, 220, 240, 260, 280, 300,
        ],
    )
}

fn relayer_blocks(mode: SweepMode) -> u64 {
    mode.pick(15, 50)
}

fn fig6_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(ExperimentSpec::tendermint_throughput().named("fig6"))
        .input_rates(tendermint_rates(mode))
        .seeds(mode.pick((1..=3).collect::<Vec<u64>>(), (0..20).collect()))
}

fn fig7_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::tendermint_throughput()
            .named("fig7")
            .seed(42),
    )
    .input_rates(mode.pick(
        vec![250, 1_000, 3_000, 6_000, 9_000, 13_000],
        tendermint_rates(SweepMode::Full),
    ))
}

fn fig8_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::relayer_throughput()
            .named("fig8")
            .relayers(1)
            .measurement_blocks(relayer_blocks(mode))
            .seed(42),
    )
    .input_rates(relayer_rates(mode))
    .rtts_ms([0, 200])
}

fn fig9_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::relayer_throughput()
            .named("fig9")
            .relayers(2)
            .measurement_blocks(relayer_blocks(mode))
            .seed(42),
    )
    .input_rates(mode.pick(
        vec![20, 60, 100, 160, 240, 300],
        relayer_rates(SweepMode::Full),
    ))
    .rtts_ms([0, 200])
}

fn completion_grid(mode: SweepMode, name: &str, relayers: usize) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::relayer_throughput()
            .named(name)
            .relayers(relayers)
            .rtt_ms(200)
            .measurement_blocks(relayer_blocks(mode))
            .seed(42),
    )
    .input_rates(mode.pick(
        vec![20, 60, 100, 160, 240, 300],
        relayer_rates(SweepMode::Full),
    ))
}

fn fig10_grid(mode: SweepMode) -> SweepGrid {
    completion_grid(mode, "fig10", 1)
}

fn fig11_grid(mode: SweepMode) -> SweepGrid {
    completion_grid(mode, "fig11", 2)
}

fn fig12_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::latency()
            .named("fig12")
            .transfers(mode.pick(1_000, 5_000))
            .submission_blocks(1)
            .rtt_ms(200)
            .seed(42),
    )
}

fn fig13_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::latency()
            .named("fig13")
            .transfers(mode.pick(1_500, 5_000))
            .rtt_ms(200)
            .seed(42),
    )
    .submission_blocks(mode.pick(vec![1, 2, 4, 8, 16, 32], vec![1, 2, 4, 8, 16, 32, 64]))
}

fn table1_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::tendermint_throughput()
            .named("table1")
            .seed(42),
    )
    .input_rates(mode.pick(
        vec![250, 1_000, 3_000, 10_000, 12_000, 14_000],
        vec![
            250, 1_000, 3_000, 6_000, 9_000, 10_000, 11_000, 12_000, 13_000, 14_000,
        ],
    ))
}

fn websocket_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::websocket_limit()
            .named("websocket_limit")
            .transfers(mode.pick(60_000, 100_000))
            .seed(42),
    )
}

// -- strategy counterfactuals (the relayer-pipeline "what if?" scenarios) ---

/// Fig. 8's one-relayer sweep with the data pulls batched into one query per
/// flush — probing how much of the ~90 TFPS cap is the chunked block scans.
fn fig8_batched_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::relayer_throughput()
            .named("fig8_batched_pulls")
            .relayers(1)
            .strategy(RelayerStrategy::batched_pulls())
            .measurement_blocks(relayer_blocks(mode))
            .seed(42),
    )
    .input_rates(relayer_rates(mode))
    .rtts_ms([0, 200])
}

/// Fig. 11's two-relayer completion sweep with sequence-partitioned
/// instances — the redundant-message losses of Figs. 9/11 should vanish.
fn fig11_coordinated_grid(mode: SweepMode) -> SweepGrid {
    completion_grid(mode, "fig11_coordinated", 2).strategies([RelayerStrategy::coordinated()])
}

/// Fig. 12's latency breakdown with the chunked pulls issued concurrently —
/// probing the sequential-RPC share (~69%) of completion latency.
fn fig12_parallel_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::latency()
            .named("fig12_parallel_fetch")
            .transfers(mode.pick(1_000, 5_000))
            .submission_blocks(1)
            .rtt_ms(200)
            .strategy(RelayerStrategy::parallel_fetch())
            .seed(42),
    )
}

/// Fig. 13's submission sweep with the relayer batching adaptively on top —
/// relayer-side generalization of the client-side submission strategies.
fn fig13_adaptive_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::latency()
            .named("fig13_adaptive_submission")
            .transfers(mode.pick(1_500, 5_000))
            .rtt_ms(200)
            .strategy(RelayerStrategy::adaptive_submission(4))
            .seed(42),
    )
    .submission_blocks(mode.pick(vec![1, 2, 4, 8, 16, 32], vec![1, 2, 4, 8, 16, 32, 64]))
}

// -- multi-channel and deployment-limit scenarios (beyond the paper) --------

/// Does the ~90 TFPS single-relayer cap (Fig. 8) scale with channels, or is
/// it a per-relayer-process limit? One relayer serves 1/2/4 concurrent
/// channels under fair-share scheduling at the same total input rate.
fn multi_channel_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::relayer_throughput()
            .named("multi_channel_scaling")
            .relayers(1)
            .rtt_ms(200)
            .measurement_blocks(mode.pick(6, 15))
            .seed(42),
    )
    .input_rates(mode.pick(vec![60, 100, 140], vec![20, 60, 100, 140, 200, 300]))
    .channel_counts(mode.pick(vec![1, 2, 4], vec![1, 2, 4, 8]))
}

/// The §V deployment limits as sweep axes: the WebSocket frame limit (`0` =
/// the 16 MiB default) crossed with packet clearing on/off, over one
/// oversized submission window. Clearing is the knob that rescues the 81.8%
/// of transfers the paper reports stuck.
fn frame_limit_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::websocket_limit()
            .named("frame_limit_sweep")
            .transfers(mode.pick(6_000, 100_000))
            .seed(42),
    )
    .strategies([
        RelayerStrategy::default(),
        RelayerStrategy::default().packet_clearing(4),
    ])
    // Quick mode's 6,000-transfer window encodes to ~4 MiB of events: the
    // 1–2 MiB limits trip, the 16 MiB default and above pass.
    .frame_limits(mode.pick(
        vec![1 << 20, 2 << 20, 0, 64 << 20],
        vec![1 << 20, 4 << 20, 8 << 20, 0, 64 << 20, 256 << 20],
    ))
}

/// Three channels under a skewed 4:1:1 load, one `relayer_count` worth of
/// capacity under each channel policy: fair-share and priority are a single
/// process rotating (or prioritising) the three channels on one packet
/// worker, while `Dedicated` expands into a real fleet of three processes —
/// one per channel, each with its own RPC lanes — so the busy channel no
/// longer queues behind (or ahead of) the idle ones.
fn channel_contention_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::relayer_throughput()
            .named("channel_contention")
            .relayers(1)
            .channels(3)
            .channel_weights([4, 1, 1])
            .rtt_ms(200)
            .input_rate(mode.pick(60, 120))
            .measurement_blocks(mode.pick(6, 15))
            .seed(42),
    )
    .strategies([
        RelayerStrategy::default(),
        RelayerStrategy::with_channel_policy(ChannelPolicy::Priority),
        RelayerStrategy::with_channel_policy(ChannelPolicy::Dedicated),
    ])
}

/// Does the ~90 TFPS cap break once "more relayers" means more *processes*?
/// `ChannelPolicy` × `channel_count`: the shared arm is the paper's one
/// process serving N channels on one RPC lane pair (flat, as in
/// `multi_channel_scaling`); the dedicated arm deploys one relayer process
/// per channel, each with its own lanes, and scales with the channel count.
fn dedicated_scaling_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::relayer_throughput()
            .named("dedicated_scaling")
            .relayers(1)
            .rtt_ms(0)
            .input_rate(mode.pick(120, 200))
            .measurement_blocks(mode.pick(6, 15))
            .seed(42),
    )
    .channel_counts(mode.pick(vec![1, 2, 4], vec![1, 2, 4, 8]))
    .channel_policies([ChannelPolicy::FairShare, ChannelPolicy::Dedicated])
}

/// The PR 4 calibration axis as a scenario: how sensitive is the batched
/// fetcher's advantage (one block scan per flush instead of one per chunk)
/// to the per-item pagination surcharge? Sweeps
/// `DeploymentConfig::batched_pull_per_item_us` over the Fig. 12-shaped
/// latency run with `RelayerStrategy::batched_pulls`, from free pagination
/// through 8× the calibrated 120 µs.
fn batched_pull_calibration_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::latency()
            .named("batched_pull_calibration")
            .transfers(mode.pick(1_000, 5_000))
            .submission_blocks(1)
            .rtt_ms(200)
            .strategy(RelayerStrategy::batched_pulls())
            .seed(42),
    )
    .batched_pull_per_items(mode.pick(vec![0, 120, 480, 960], vec![0, 30, 60, 120, 240, 480, 960]))
}

/// The §V account-sequence race as a strategy comparison: a sustained load
/// whose relayer flushes straddle destination commits deterministically
/// (seeded), swept over both sequence-tracking arms. Under `Resync` every
/// straddle burns a submission window on a duplicate sequence; under
/// `MempoolAware` the relayer holds the batch one block instead, driving
/// `broadcast_failures` to zero.
fn sequence_race_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::relayer_throughput()
            .named("sequence_race")
            .relayers(1)
            .rtt_ms(200)
            .input_rate(mode.pick(60, 100))
            .measurement_blocks(mode.pick(6, 15))
            .seed(42),
    )
    .sequence_trackings([SequenceTracking::Resync, SequenceTracking::MempoolAware])
}

// -- fault-injection scenarios (dependability beyond the paper's testbed) ---

/// The canonical crash/restart plan every recovery artefact shares: relayer 0
/// dies at 16 s (mid-measurement, with packets in flight) and comes back cold
/// ten seconds — two source blocks — later.
fn crash_restart_plan() -> FaultPlan {
    FaultPlan::new([
        FaultEvent::RelayerCrash {
            relayer: 0,
            at: SimDuration::from_secs(16),
        },
        FaultEvent::RelayerRestart {
            relayer: 0,
            at: SimDuration::from_secs(26),
        },
    ])
}

/// One relayer crashing mid-run against the no-fault control arm, on a
/// fixed-batch run measured to full completion. Packet clearing every 2
/// blocks is the recovery mechanism under test: the restarted process
/// re-reads its sequences, replays missed block notices and clears whatever
/// the crash stranded, so every transfer still completes, `double_submitted`
/// and `stranded_packets` stay 0, and `recovery_secs` stays within one clear
/// interval plus a block.
fn relayer_crash_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::latency()
            .named("relayer_crash")
            .transfers(mode.pick(240, 1_000))
            .submission_blocks(4)
            // Far enough past the drain point that the completion cutoff
            // (measurement_end) covers the whole batch in both arms.
            .measurement_blocks(12)
            .rtt_ms(0)
            .packet_clearing(2)
            .seed(42),
    )
    .fault_plans([FaultPlan::none(), crash_restart_plan()])
}

/// The source chain halting outright for 20 s, and the gentler variant of the
/// same outage — a 4× block stretch over the same window — against the
/// no-fault control arm. Both push the average block interval up and the
/// measured TFPS down without losing a single transfer.
fn chain_halt_grid(mode: SweepMode) -> SweepGrid {
    let chain = FaultChain::Source;
    let from = SimDuration::from_secs(15);
    let duration = SimDuration::from_secs(20);
    SweepGrid::new(
        ExperimentSpec::relayer_throughput()
            .named("chain_halt")
            .relayers(1)
            .rtt_ms(0)
            .input_rate(mode.pick(20, 60))
            .measurement_blocks(mode.pick(8, 15))
            .seed(42),
    )
    .fault_plans([
        FaultPlan::none(),
        FaultPlan::new([FaultEvent::ChainHalt {
            chain,
            from,
            duration,
        }]),
        FaultPlan::new([FaultEvent::BlockStretch {
            chain,
            factor: 4,
            from,
            duration,
        }]),
    ])
}

/// The relay path's light client lapsing mid-run against the no-fault control
/// arm: every recv/ack proof fails from 15 s on, so transfers initiated after
/// that strand on the source chain. The timeout window (6 source blocks) is
/// the only rescue still open — as for a real trust-period expiry.
fn client_expiry_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::relayer_throughput()
            .named("client_expiry")
            .relayers(1)
            .rtt_ms(200)
            .input_rate(mode.pick(20, 60))
            .measurement_blocks(mode.pick(8, 15))
            .timeout_blocks(6)
            .seed(42),
    )
    .fault_plans([
        FaultPlan::none(),
        FaultPlan::new([FaultEvent::ClientExpiry {
            path: 0,
            at: SimDuration::from_secs(15),
        }]),
    ])
}

// -- topology scenarios (the chain graph as the experimental variable) ------

/// A hub and three spokes against the single-pair baseline: one batch,
/// submitted in one block window and measured to full completion, so the
/// stranding counter is a real invariant (everything must drain) and the
/// aggregate-throughput comparison is a drain-rate comparison. The workload
/// submits on the three spoke→hub channels only; the hop plan forwards every
/// first leg at the hub onto a hub→spoke channel, so each transfer is two
/// chained IBC legs. The pair arm keeps the same spec: its weight list
/// truncates to channel 0 and its hop routes reference channels it does not
/// have, so they deactivate — the legacy deployment, untouched. The batch
/// saturates the pair arm's single relayer process (~90 TFPS), which the hub
/// arm splits over three spoke relayers.
fn hub_spoke_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::latency()
            .named("hub_spoke_scaling")
            .transfers(mode.pick(600, 3_000))
            .submission_blocks(1)
            .measurement_blocks(12)
            .rtt_ms(0)
            .relayers(1)
            .channel_weights([1, 1, 1, 0, 0, 0])
            .hop_plan(Topology::hub_and_spoke_routes(3))
            .seed(42),
    )
    .topologies([Topology::pair(), Topology::hub_and_spoke(3)])
}

/// A 3-chain full mesh (six directed channels, each with its own relayer
/// process) against the single-pair baseline, the same fixed batch spread
/// uniformly over every channel and run to full completion. No hop plan:
/// the mesh arm measures pure per-edge contention, not multi-hop routing.
fn mesh_contention_grid(mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::latency()
            .named("mesh_contention")
            .transfers(mode.pick(600, 3_000))
            .submission_blocks(1)
            .measurement_blocks(12)
            .rtt_ms(0)
            .relayers(1)
            .seed(42),
    )
    .topologies([Topology::pair(), Topology::full_mesh(3)])
}

/// One cheap, representative end-to-end run (~seconds): CI's smoke check.
fn smoke_grid(_mode: SweepMode) -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::relayer_throughput()
            .named("smoke")
            .relayers(1)
            .rtt_ms(0)
            .input_rate(20)
            .measurement_blocks(4)
            .seed(42),
    )
}

// ---------------------------------------------------------------------------
// Renderers (the tables the old bench binaries printed)
// ---------------------------------------------------------------------------

fn rate_of(outcome: &ScenarioOutcome) -> u64 {
    outcome.input_rate_rps() as u64
}

/// Groups outcomes by input rate, preserving first-seen rate order.
fn group_by_rate(outcomes: &[ScenarioOutcome]) -> Vec<(u64, Vec<&ScenarioOutcome>)> {
    let mut groups: Vec<(u64, Vec<&ScenarioOutcome>)> = Vec::new();
    for outcome in outcomes {
        let rate = rate_of(outcome);
        match groups.iter_mut().find(|(r, _)| *r == rate) {
            Some((_, group)) => group.push(outcome),
            None => groups.push((rate, vec![outcome])),
        }
    }
    groups
}

fn fig6_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let groups = group_by_rate(outcomes);
    let seeds = groups.first().map(|(_, g)| g.len()).unwrap_or(0);
    let mut report = ExecutionReport::new("fig6");
    report.add_note(format!(
        "Fig. 6 — Tendermint throughput (TFPS) vs input rate, {seeds} seeds per rate"
    ));
    report.add_row(format!(
        "{:>12} | {:>10} | {:>10} | {:>10}",
        "rate (rps)", "median", "min", "max"
    ));
    for (rate, group) in groups {
        let mut samples: Vec<f64> = group
            .iter()
            .map(|o| o.tendermint_throughput_tfps())
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("throughput is never NaN"));
        let median = samples[samples.len() / 2];
        report.add_row(format!(
            "{:>12} | {:>10.0} | {:>10.0} | {:>10.0}",
            rate,
            median,
            samples[0],
            samples[samples.len() - 1]
        ));
        report.set_metric(format!("median_tfps_at_{rate}"), median);
    }
    report
}

fn fig7_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let mut report = ExecutionReport::new("fig7");
    report.add_note("Fig. 7 — average block interval vs input rate");
    report.add_row(format!("{:>12} | {:>16}", "rate (rps)", "interval (s)"));
    for outcome in outcomes {
        report.add_row(format!(
            "{:>12} | {:>16.1}",
            rate_of(outcome),
            outcome.avg_block_interval_secs()
        ));
        report.set_metric(
            format!("block_interval_secs_at_{}", rate_of(outcome)),
            outcome.avg_block_interval_secs(),
        );
    }
    report
}

/// Figs. 8 and 9: one row per rate with 0 ms and 200 ms columns (and the
/// redundant-message count when more than one relayer serves the channel).
fn relayer_throughput_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let name = outcomes.first().map(fig_name).unwrap_or_default();
    let relayers = outcomes
        .first()
        .map(|o| o.spec.deployment.relayer_count)
        .unwrap_or(1);
    let blocks = outcomes
        .first()
        .map(|o| o.spec.workload.measurement_blocks)
        .unwrap_or(0);
    let mut report = ExecutionReport::new(name.clone());
    report.add_note(format!(
        "{name} — throughput with {relayers} relayer(s) ({blocks} source blocks)"
    ));
    if relayers > 1 {
        report.add_row(format!(
            "{:>12} | {:>14} | {:>14} | {:>16}",
            "rate (rps)", "0 ms (TFPS)", "200 ms (TFPS)", "redundant msgs"
        ));
    } else {
        report.add_row(format!(
            "{:>12} | {:>14} | {:>14}",
            "rate (rps)", "0 ms (TFPS)", "200 ms (TFPS)"
        ));
    }
    for (rate, group) in group_by_rate(outcomes) {
        let at_rtt = |rtt: u64| {
            group
                .iter()
                .find(|o| o.spec.deployment.network_rtt_ms == rtt)
        };
        let lan = at_rtt(0).map(|o| o.throughput_tfps()).unwrap_or(0.0);
        let wan = at_rtt(200).map(|o| o.throughput_tfps()).unwrap_or(0.0);
        if relayers > 1 {
            let redundant = at_rtt(200)
                .map(|o| o.redundant_packet_errors())
                .unwrap_or(0);
            report.add_row(format!(
                "{rate:>12} | {lan:>14.1} | {wan:>14.1} | {redundant:>16}"
            ));
        } else {
            report.add_row(format!("{rate:>12} | {lan:>14.1} | {wan:>14.1}"));
        }
        report.set_metric(format!("tfps_lan_at_{rate}"), lan);
        report.set_metric(format!("tfps_wan_at_{rate}"), wan);
    }
    report
}

/// Figs. 10 and 11: completion-status breakdown per rate.
fn completion_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let name = outcomes.first().map(fig_name).unwrap_or_default();
    let relayers = outcomes
        .first()
        .map(|o| o.spec.deployment.relayer_count)
        .unwrap_or(1);
    let blocks = outcomes
        .first()
        .map(|o| o.spec.workload.measurement_blocks)
        .unwrap_or(0);
    let rtt = outcomes
        .first()
        .map(|o| o.spec.deployment.network_rtt_ms)
        .unwrap_or(0);
    let mut report = ExecutionReport::new(name.clone());
    report.add_note(format!(
        "{name} — completion status, {relayers} relayer(s), {rtt} ms ({blocks} blocks)"
    ));
    report.add_row(format!(
        "{:>12} | {:>10} | {:>10} | {:>10} | {:>14}",
        "rate (rps)", "completed", "partial", "initiated", "not committed"
    ));
    for outcome in outcomes {
        report.add_row(format!(
            "{:>12} | {:>10} | {:>10} | {:>10} | {:>14}",
            rate_of(outcome),
            outcome.completed(),
            outcome.partial(),
            outcome.initiated(),
            outcome.not_committed()
        ));
        report.set_metric(
            format!("completed_at_{}", rate_of(outcome)),
            outcome.completed() as f64,
        );
    }
    report
}

fn fig12_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let name = outcomes.first().map(fig_name).unwrap_or_default();
    let mut report = ExecutionReport::new(name.clone());
    let Some(o) = outcomes.first() else {
        return report;
    };
    report.add_note(format!(
        "{name} — latency breakdown for {} transfers submitted in one block \
         (paper baseline: Fig. 12)",
        o.spec.workload.total_transfers
    ));
    report.add_row(format!(
        "completion latency:    {:>8.1} s   (paper, 5,000 transfers: 455 s)",
        o.completion_latency_secs()
    ));
    report.add_row(format!(
        "transfer phase (1-4):  {:>8.1} s   (paper: 126 s / 27.6%)",
        o.transfer_phase_secs()
    ));
    report.add_row(format!(
        "receive phase  (5-9):  {:>8.1} s   (paper: 261 s / 57.3%)",
        o.recv_phase_secs()
    ));
    report.add_row(format!(
        "ack phase    (10-13):  {:>8.1} s   (paper:  68 s / 14.9%)",
        o.ack_phase_secs()
    ));
    report.add_row(format!(
        "transfer data pull:    {:>8.1} s   (paper: 110 s / 24%)",
        o.transfer_pull_secs()
    ));
    report.add_row(format!(
        "recv data pull:        {:>8.1} s   (paper: 207 s / 45%)",
        o.recv_pull_secs()
    ));
    report.add_row(format!(
        "data-pull share:       {:>8.0} %   (paper: ~69%)",
        o.data_pull_share() * 100.0
    ));
    for (key, value) in &o.metrics {
        report.set_metric(key.clone(), *value);
    }
    report
}

fn fig13_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let transfers = outcomes
        .first()
        .map(|o| o.spec.workload.total_transfers)
        .unwrap_or(0);
    let name = outcomes.first().map(fig_name).unwrap_or_default();
    let mut report = ExecutionReport::new(name.clone());
    report.add_note(format!(
        "{name} — completion latency vs submission strategy ({transfers} transfers, \
         paper baseline: Fig. 13)"
    ));
    report.add_row(format!(
        "{:>14} | {:>22}",
        "blocks", "completion latency (s)"
    ));
    for outcome in outcomes {
        let blocks = outcome.spec.workload.submission_blocks;
        report.add_row(format!(
            "{:>14} | {:>22.1}",
            blocks,
            outcome.completion_latency_secs()
        ));
        report.set_metric(
            format!("latency_secs_over_{blocks}_blocks"),
            outcome.completion_latency_secs(),
        );
    }
    report.add_note(
        "paper, 5,000 transfers: 455 / 286 / 219 / 143 / 138 / 240 / 441 s for 1..64 blocks",
    );
    report
}

fn table1_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let mut report = ExecutionReport::new("table1");
    report.add_note("Table I — Tendermint throughput execution summary (simulated)");
    report.add_row(format!(
        "{:>12} | {:>14} | {:>22} | {:>22}",
        "rate (rps)", "requests made", "submitted (%)", "committed of submitted (%)"
    ));
    for outcome in outcomes {
        let submitted_pct =
            100.0 * outcome.submitted() as f64 / outcome.requests_made().max(1) as f64;
        let committed_pct = 100.0 * outcome.committed() as f64 / outcome.submitted().max(1) as f64;
        report.add_row(format!(
            "{:>12} | {:>14} | {:>12} ({:>5.1}%) | {:>12} ({:>5.1}%)",
            rate_of(outcome),
            outcome.requests_made(),
            outcome.submitted(),
            submitted_pct,
            outcome.committed(),
            committed_pct
        ));
        report.set_metric(
            format!("committed_at_{}", rate_of(outcome)),
            outcome.committed() as f64,
        );
    }
    report
}

fn websocket_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let mut report = ExecutionReport::new("websocket_limit");
    let Some(o) = outcomes.first() else {
        return report;
    };
    let requested = o.requests_made().max(1);
    report.add_note(format!(
        "WebSocket frame-limit experiment ({} transfers in one block window)",
        o.requests_made()
    ));
    report.add_row(format!(
        "event collection failures: {}",
        o.event_collection_failures()
    ));
    report.add_row(format!(
        "completed: {} ({:.1}%)",
        o.completed(),
        100.0 * o.completed() as f64 / requested as f64
    ));
    report.add_row(format!(
        "stuck:     {} ({:.1}%)",
        o.stuck(),
        100.0 * o.stuck() as f64 / requested as f64
    ));
    report.add_note("paper: 2.5% completed, 15.7% timed out, 81.8% stuck");
    for (key, value) in &o.metrics {
        report.set_metric(key.clone(), *value);
    }
    report
}

/// `multi_channel_scaling`: one row per input rate, one TFPS column per
/// channel count.
fn multi_channel_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let mut report = ExecutionReport::new("multi_channel_scaling");
    let relayers = outcomes
        .first()
        .map(|o| o.spec.deployment.relayer_count)
        .unwrap_or(1);
    report.add_note(format!(
        "multi_channel_scaling — TFPS with {relayers} relayer serving N concurrent \
         channels (beyond the paper's single-channel testbed)"
    ));
    let mut channel_counts: Vec<usize> = outcomes.iter().map(|o| o.channel_count()).collect();
    channel_counts.sort_unstable();
    channel_counts.dedup();
    let mut header = format!("{:>12}", "rate (rps)");
    for n in &channel_counts {
        header.push_str(&format!(" | {:>12}", format!("{n} ch (TFPS)")));
    }
    report.add_row(header);
    for (rate, group) in group_by_rate(outcomes) {
        let mut row = format!("{rate:>12}");
        for n in &channel_counts {
            let tfps = group
                .iter()
                .find(|o| o.channel_count() == *n)
                .map(|o| o.throughput_tfps())
                .unwrap_or(0.0);
            row.push_str(&format!(" | {tfps:>12.1}"));
            report.set_metric(format!("tfps_at_{rate}_channels_{n}"), tfps);
        }
        report.add_row(row);
    }
    report
}

/// `frame_limit_sweep`: completion under each frame limit, with and without
/// packet clearing.
fn frame_limit_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let mut report = ExecutionReport::new("frame_limit_sweep");
    let transfers = outcomes
        .first()
        .map(|o| o.requests_made())
        .unwrap_or_default();
    report.add_note(format!(
        "frame_limit_sweep — {transfers} transfers in one window; the §V frame limit \
         and packet-clear interval as strategy knobs \
         (paper at 16 MiB, no clearing: 2.5% completed, 81.8% stuck)"
    ));
    report.add_row(format!(
        "{:>14} | {:>9} | {:>10} | {:>10} | {:>10} | {:>8}",
        "frame limit", "clearing", "completed", "stuck", "cleared", "failures"
    ));
    for outcome in outcomes {
        let strategy = outcome.spec.deployment.relayer_strategy;
        let frame = match strategy.ws_frame_limit_bytes {
            0 => "16MiB*".to_string(),
            bytes if bytes % (1 << 20) == 0 => format!("{}MiB", bytes >> 20),
            bytes => format!("{bytes}B"),
        };
        let clearing = if strategy.packet_clear_interval > 0 {
            format!("every {}", strategy.packet_clear_interval)
        } else {
            "off".to_string()
        };
        let requested = outcome.requests_made().max(1);
        report.add_row(format!(
            "{:>14} | {:>9} | {:>4} ({:>4.1}%) | {:>10} | {:>10} | {:>8}",
            frame,
            clearing,
            outcome.completed(),
            100.0 * outcome.completed() as f64 / requested as f64,
            outcome.stuck(),
            outcome.packets_cleared(),
            outcome.event_collection_failures()
        ));
        report.set_metric(
            format!(
                "completed_at_{}_clear_{}",
                strategy.ws_frame_limit_bytes, strategy.packet_clear_interval
            ),
            outcome.completed() as f64,
        );
    }
    report.add_note("* 0 = Tendermint's 16 MiB default frame limit");
    report
}

/// `channel_contention`: one row per channel policy with the aggregate and
/// per-channel completion under a skewed load.
fn channel_contention_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let mut report = ExecutionReport::new("channel_contention");
    let (relayers, channels, weights) = outcomes
        .first()
        .map(|o| {
            (
                o.spec.deployment.relayer_count,
                o.channel_count(),
                o.spec.workload.channel_weights.clone(),
            )
        })
        .unwrap_or((0, 0, Vec::new()));
    report.add_note(format!(
        "channel_contention — {channels} channels under weighted load {weights:?}: \
         fair-share / priority are {relayers} shared process(es), dedicated \
         expands into one relayer process per channel"
    ));
    let mut header = format!(
        "{:>12} | {:>10} | {:>14}",
        "policy", "completed", "redundant msgs"
    );
    for ch in 0..channels {
        header.push_str(&format!(" | {:>8}", format!("ch{ch}")));
    }
    report.add_row(header);
    for outcome in outcomes {
        let policy = match outcome.spec.deployment.relayer_strategy.channel_policy {
            ChannelPolicy::FairShare => "fair-share",
            ChannelPolicy::Priority => "priority",
            ChannelPolicy::Dedicated => "dedicated",
        };
        let mut row = format!(
            "{:>12} | {:>10} | {:>14}",
            policy,
            outcome.completed(),
            outcome.redundant_packet_errors()
        );
        for ch in 0..channels {
            row.push_str(&format!(" | {:>8}", outcome.completed_on(ch)));
        }
        report.add_row(row);
        report.set_metric(format!("completed_{policy}"), outcome.completed() as f64);
        report.set_metric(
            format!("redundant_{policy}"),
            outcome.redundant_packet_errors() as f64,
        );
    }
    report
}

/// `dedicated_scaling`: one row per channel count with the shared-process
/// and dedicated-fleet TFPS side by side, plus the scaling ratio.
fn dedicated_scaling_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let mut report = ExecutionReport::new("dedicated_scaling");
    let rate = outcomes
        .first()
        .map(|o| o.input_rate_rps() as u64)
        .unwrap_or(0);
    report.add_note(format!(
        "dedicated_scaling — {rate} rps split over N channels: one shared relayer \
         process (the paper's per-process ~90 TFPS cap) vs a dedicated fleet of \
         one process per channel, each with its own RPC lanes"
    ));
    report.add_row(format!(
        "{:>10} | {:>14} | {:>17} | {:>8}",
        "channels", "shared (TFPS)", "dedicated (TFPS)", "scaling"
    ));
    let mut channel_counts: Vec<usize> = outcomes.iter().map(|o| o.channel_count()).collect();
    channel_counts.sort_unstable();
    channel_counts.dedup();
    for n in channel_counts {
        let arm = |policy: ChannelPolicy| {
            outcomes
                .iter()
                .find(|o| {
                    o.channel_count() == n
                        && o.spec.deployment.relayer_strategy.channel_policy == policy
                })
                .map(|o| o.throughput_tfps())
                .unwrap_or(0.0)
        };
        let shared = arm(ChannelPolicy::FairShare);
        let dedicated = arm(ChannelPolicy::Dedicated);
        let scaling = if shared > 0.0 {
            dedicated / shared
        } else {
            0.0
        };
        report.add_row(format!(
            "{n:>10} | {shared:>14.1} | {dedicated:>17.1} | {scaling:>7.2}x"
        ));
        report.set_metric(format!("tfps_shared_channels_{n}"), shared);
        report.set_metric(format!("tfps_dedicated_channels_{n}"), dedicated);
        report.set_metric(format!("scaling_at_channels_{n}"), scaling);
    }
    report
}

/// `batched_pull_calibration`: one row per pagination surcharge with the
/// batch's completion latency and data-pull share.
fn batched_pull_calibration_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let mut report = ExecutionReport::new("batched_pull_calibration");
    let transfers = outcomes
        .first()
        .map(|o| o.spec.workload.total_transfers)
        .unwrap_or(0);
    report.add_note(format!(
        "batched_pull_calibration — {transfers} transfers in one window under \
         batched data pulls: the per-item pagination surcharge swept around the \
         calibrated 120 µs (0 = free pagination)"
    ));
    report.add_row(format!(
        "{:>16} | {:>22} | {:>15}",
        "surcharge (µs)", "completion latency (s)", "data-pull share"
    ));
    for outcome in outcomes {
        let surcharge = outcome.spec.deployment.batched_pull_per_item_us;
        report.add_row(format!(
            "{:>16} | {:>22.1} | {:>14.0}%",
            surcharge,
            outcome.completion_latency_secs(),
            outcome.data_pull_share() * 100.0
        ));
        report.set_metric(
            format!("latency_secs_at_{surcharge}us"),
            outcome.completion_latency_secs(),
        );
        report.set_metric(
            format!("data_pull_share_at_{surcharge}us"),
            outcome.data_pull_share(),
        );
    }
    report
}

/// `sequence_race`: one row per sequence-tracking arm, showing what the §V
/// race costs and that mempool-aware tracking eliminates it.
fn sequence_race_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let mut report = ExecutionReport::new("sequence_race");
    let (rate, blocks) = outcomes
        .first()
        .map(|o| (rate_of(o), o.spec.workload.measurement_blocks))
        .unwrap_or((0, 0));
    report.add_note(format!(
        "sequence_race — the §V account-sequence race at {rate} rps over {blocks} blocks: \
         relayer flushes that straddle a destination commit burn a submission window \
         under committed-state resync; mempool-aware tracking holds the batch instead"
    ));
    report.add_row(format!(
        "{:>10} | {:>10} | {:>10} | {:>18}",
        "tracking", "completed", "stuck", "broadcast failures"
    ));
    for outcome in outcomes {
        let tracking = outcome.spec.deployment.relayer_strategy.sequence_tracking;
        report.add_row(format!(
            "{:>10} | {:>10} | {:>10} | {:>18}",
            tracking.label(),
            outcome.completed(),
            outcome.stuck(),
            outcome.broadcast_failures()
        ));
        report.set_metric(
            format!("completed_{}", tracking.label()),
            outcome.completed() as f64,
        );
        report.set_metric(
            format!("broadcast_failures_{}", tracking.label()),
            outcome.broadcast_failures() as f64,
        );
    }
    report
}

/// Short per-arm tag for the fault scenarios' metric keys: `baseline` for the
/// empty plan, otherwise the kind of the plan's first event.
fn fault_arm(outcome: &ScenarioOutcome) -> &'static str {
    match outcome.spec.deployment.fault_plan.events.first() {
        None => "baseline",
        Some(FaultEvent::RelayerCrash { .. }) | Some(FaultEvent::RelayerRestart { .. }) => "crash",
        Some(FaultEvent::ChainHalt { .. }) => "halt",
        Some(FaultEvent::BlockStretch { .. }) => "stretch",
        Some(FaultEvent::ClientExpiry { .. }) => "expiry",
    }
}

/// `relayer_crash`: the recovery story in one table — the faulted arm next to
/// its control, with the double-submission and stranding counters that must
/// stay at zero and the recovery clock that must stay within one clear
/// interval.
fn relayer_crash_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let mut report = ExecutionReport::new("relayer_crash");
    let clear = outcomes
        .first()
        .map(|o| o.spec.deployment.relayer_strategy.packet_clear_interval)
        .unwrap_or(0);
    report.add_note(format!(
        "relayer_crash — one relayer crashing and restarting cold mid-run, \
         packet clearing every {clear} blocks as the recovery mechanism \
         (control arm: same batch, no fault)"
    ));
    report.add_row(format!(
        "{:>24} | {:>10} | {:>12} | {:>11} | {:>9} | {:>13}",
        "faults", "completed", "latency (s)", "double-sub", "stranded", "recovery (s)"
    ));
    for outcome in outcomes {
        let arm = fault_arm(outcome);
        let recovery = outcome
            .recovery_secs()
            .map(|s| format!("{s:>13.1}"))
            .unwrap_or_else(|| format!("{:>13}", "-"));
        report.add_row(format!(
            "{:>24} | {:>10} | {:>12.1} | {:>11} | {:>9} | {recovery}",
            outcome.spec.deployment.fault_plan.label(),
            outcome.completed(),
            outcome.completion_latency_secs(),
            outcome.double_submitted(),
            outcome.stranded_packets(),
        ));
        report.set_metric(format!("completed_{arm}"), outcome.completed() as f64);
        report.set_metric(
            format!("latency_secs_{arm}"),
            outcome.completion_latency_secs(),
        );
        if arm != "baseline" {
            report.set_metric("double_submitted", outcome.double_submitted() as f64);
            report.set_metric("stranded_packets", outcome.stranded_packets() as f64);
            if let Some(secs) = outcome.recovery_secs() {
                report.set_metric("recovery_secs", secs);
            }
        }
    }
    report
}

/// `chain_halt`: block-production faults against the control arm — a halt and
/// a stretch both push the average block interval up and the measured TFPS
/// down, while completion stays intact.
fn chain_halt_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let mut report = ExecutionReport::new("chain_halt");
    report.add_note(
        "chain_halt — the source chain halting for 20 s (and, gentler, \
         stretching its block interval 4x over the same window): transfers \
         slow down but none are lost",
    );
    report.add_row(format!(
        "{:>24} | {:>10} | {:>14} | {:>12}",
        "faults", "completed", "interval (s)", "TFPS"
    ));
    for outcome in outcomes {
        let arm = fault_arm(outcome);
        report.add_row(format!(
            "{:>24} | {:>10} | {:>14.1} | {:>12.1}",
            outcome.spec.deployment.fault_plan.label(),
            outcome.completed(),
            outcome.avg_block_interval_secs(),
            outcome.throughput_tfps(),
        ));
        report.set_metric(format!("completed_{arm}"), outcome.completed() as f64);
        report.set_metric(
            format!("block_interval_secs_{arm}"),
            outcome.avg_block_interval_secs(),
        );
        report.set_metric(format!("tfps_{arm}"), outcome.throughput_tfps());
    }
    report
}

/// `client_expiry`: the stranded channel against its control arm — completion
/// collapses after the lapse and the unacknowledged packets pile up on the
/// source chain, with the timeout window as the only rescue.
fn client_expiry_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let mut report = ExecutionReport::new("client_expiry");
    let timeout = outcomes
        .first()
        .map(|o| o.spec.workload.timeout_blocks)
        .unwrap_or(0);
    report.add_note(format!(
        "client_expiry — the relay path's light client lapsing at 15 s: recv \
         and ack proofs fail from then on, stranding the channel; transfers \
         can still time out after {timeout} source blocks"
    ));
    report.add_row(format!(
        "{:>24} | {:>10} | {:>9} | {:>9}",
        "faults", "completed", "stranded", "stuck"
    ));
    for outcome in outcomes {
        let arm = fault_arm(outcome);
        report.add_row(format!(
            "{:>24} | {:>10} | {:>9} | {:>9}",
            outcome.spec.deployment.fault_plan.label(),
            outcome.completed(),
            outcome.stranded_packets(),
            outcome.stuck(),
        ));
        report.set_metric(format!("completed_{arm}"), outcome.completed() as f64);
        report.set_metric(format!("stranded_{arm}"), outcome.stranded_packets() as f64);
        report.set_metric(format!("stuck_{arm}"), outcome.stuck() as f64);
    }
    report
}

/// `hub_spoke_scaling`: the hub arm next to its single-pair control — the
/// aggregate throughput the extra spokes buy, the hub's forwarding volume,
/// and the per-hop latency breakdown of the two chained legs.
fn hub_spoke_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let mut report = ExecutionReport::new("hub_spoke_scaling");
    let transfers = outcomes
        .first()
        .map(|o| o.spec.workload.total_transfers)
        .unwrap_or(0);
    report.add_note(format!(
        "hub_spoke_scaling — {transfers} transfers in one window over a hub \
         and three spokes, every transfer forwarded at the hub as a second \
         IBC leg, vs the same spec on the single-pair baseline"
    ));
    report.add_row(format!(
        "{:>8} | {:>10} | {:>10} | {:>10} | {:>9} | {:>9} | {:>8} | {:>9}",
        "topo", "completed", "TFPS", "forwarded", "hop1 (s)", "hop2 (s)", "lag (s)", "stranded"
    ));
    let mut tfps_pair = 0.0_f64;
    let mut tfps_hub = 0.0_f64;
    for outcome in outcomes {
        let label = outcome.spec.deployment.topology.label();
        let tfps = outcome.throughput_tfps();
        let opt = |value: Option<f64>| {
            value
                .map(|v| format!("{v:>9.1}"))
                .unwrap_or_else(|| format!("{:>9}", "-"))
        };
        let lag = outcome.metric(keys::FORWARD_LAG_SECS);
        report.add_row(format!(
            "{label:>8} | {:>10} | {tfps:>10.1} | {:>10} | {} | {} | {:>8} | {:>9}",
            outcome.completed(),
            outcome.forwarded(),
            opt(outcome.hop1_latency_secs()),
            opt(outcome.hop2_latency_secs()),
            lag.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
            outcome.stranded_packets(),
        ));
        report.set_metric(format!("completed_{label}"), outcome.completed() as f64);
        report.set_metric(format!("tfps_{label}"), tfps);
        report.set_metric(
            format!("stranded_{label}"),
            outcome.stranded_packets() as f64,
        );
        if outcome.spec.deployment.topology.is_legacy_pair() {
            tfps_pair = tfps;
        } else {
            tfps_hub = tfps;
            report.set_metric("forwarded", outcome.forwarded() as f64);
            if let Some(secs) = outcome.hop1_latency_secs() {
                report.set_metric("hop1_latency_secs", secs);
            }
            if let Some(secs) = outcome.hop2_latency_secs() {
                report.set_metric("hop2_latency_secs", secs);
            }
            if let Some(secs) = lag {
                report.set_metric("forward_lag_secs", secs);
            }
        }
    }
    if tfps_pair > 0.0 {
        let scaling = tfps_hub / tfps_pair;
        report.add_row(format!(
            "hub aggregate scaling: {scaling:.2}x over the single-pair baseline"
        ));
        report.set_metric("hub_scaling", scaling);
    }
    report
}

/// `mesh_contention`: the full-mesh arm next to its single-pair control —
/// six relayer fleets sharing the same total input rate, with the stranding
/// and redundancy counters that must stay at zero.
fn mesh_contention_render(outcomes: &[ScenarioOutcome]) -> ExecutionReport {
    let mut report = ExecutionReport::new("mesh_contention");
    let transfers = outcomes
        .first()
        .map(|o| o.spec.workload.total_transfers)
        .unwrap_or(0);
    report.add_note(format!(
        "mesh_contention — {transfers} transfers spread uniformly over a \
         3-chain full mesh (six directed channels, one relayer process each) \
         vs the same batch on the single-pair baseline"
    ));
    report.add_row(format!(
        "{:>8} | {:>10} | {:>10} | {:>14} | {:>9}",
        "topo", "completed", "TFPS", "redundant msgs", "stranded"
    ));
    for outcome in outcomes {
        let label = outcome.spec.deployment.topology.label();
        report.add_row(format!(
            "{label:>8} | {:>10} | {:>10.1} | {:>14} | {:>9}",
            outcome.completed(),
            outcome.throughput_tfps(),
            outcome.redundant_packet_errors(),
            outcome.stranded_packets(),
        ));
        report.set_metric(format!("completed_{label}"), outcome.completed() as f64);
        report.set_metric(format!("tfps_{label}"), outcome.throughput_tfps());
        report.set_metric(
            format!("stranded_{label}"),
            outcome.stranded_packets() as f64,
        );
    }
    report
}

/// The registry name embedded in a sweep point's name (`fig8/rate=60/...`).
fn fig_name(outcome: &ScenarioOutcome) -> String {
    outcome
        .spec
        .name
        .split('/')
        .next()
        .unwrap_or_default()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_parallel;

    #[test]
    fn registry_contains_every_figure_and_table() {
        let expected = [
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "table1",
            "websocket_limit",
            "fig8_batched_pulls",
            "fig11_coordinated",
            "fig12_parallel_fetch",
            "fig13_adaptive_submission",
            "multi_channel_scaling",
            "frame_limit_sweep",
            "channel_contention",
            "sequence_race",
            "dedicated_scaling",
            "batched_pull_calibration",
            "relayer_crash",
            "chain_halt",
            "client_expiry",
            "hub_spoke_scaling",
            "mesh_contention",
            "smoke",
        ];
        assert_eq!(names(), expected);
        for name in expected {
            let entry = get(name).unwrap_or_else(|| panic!("{name} not registered"));
            assert_eq!(entry.name, name);
            assert!(!entry.title.is_empty());
            // Every grid expands to at least one runnable point in both modes.
            for mode in [SweepMode::Quick, SweepMode::Full] {
                assert!(!entry.grid(mode).points().is_empty());
            }
        }
        assert!(get("fig99").is_none());
    }

    #[test]
    fn strategy_scenarios_carry_their_strategy_in_every_point() {
        let cases = [
            ("fig8_batched_pulls", RelayerStrategy::batched_pulls()),
            ("fig11_coordinated", RelayerStrategy::coordinated()),
            ("fig12_parallel_fetch", RelayerStrategy::parallel_fetch()),
            (
                "fig13_adaptive_submission",
                RelayerStrategy::adaptive_submission(4),
            ),
        ];
        for (name, strategy) in cases {
            let entry = get(name).unwrap_or_else(|| panic!("{name} not registered"));
            for point in entry.grid(SweepMode::Quick).points() {
                assert_eq!(
                    point.deployment.relayer_strategy, strategy,
                    "{name} point {} lost its strategy",
                    point.name
                );
            }
        }
        // The paper scenarios keep the default pipeline.
        for point in get("fig8").unwrap().grid(SweepMode::Quick).points() {
            assert_eq!(
                point.deployment.relayer_strategy,
                RelayerStrategy::default()
            );
        }
    }

    #[test]
    fn suggest_finds_close_names_and_rejects_nonsense() {
        assert_eq!(suggest("fig88"), Some("fig8"));
        assert_eq!(suggest("FIG12"), Some("fig12"));
        assert_eq!(suggest("websocket"), Some("websocket_limit"));
        assert_eq!(suggest("fig8_batched"), Some("fig8_batched_pulls"));
        assert_eq!(suggest("smok"), Some("smoke"));
        assert_eq!(suggest("completely-unrelated-zzz"), None);
    }

    #[test]
    fn full_grids_are_supersets_of_quick_grids() {
        for entry in entries() {
            let quick = entry.grid(SweepMode::Quick).points().len();
            let full = entry.grid(SweepMode::Full).points().len();
            assert!(full >= quick, "{}: full {full} < quick {quick}", entry.name);
        }
    }

    #[test]
    fn frame_limit_render_reports_the_cliff_and_the_rescue() {
        // A miniature frame_limit_sweep: one oversized window against a
        // 16 KiB frame, with and without clearing, plus a permissive limit.
        let entry = get("frame_limit_sweep").unwrap();
        let grid = SweepGrid::new(
            ExperimentSpec::websocket_limit()
                .named("frame_limit_sweep")
                .transfers(400)
                .seed(42),
        )
        .strategies([
            RelayerStrategy::default(),
            RelayerStrategy::default().packet_clearing(3),
        ])
        .frame_limits([16 << 10, 64 << 20]);
        let outcomes = run_parallel(&grid.points(), 2);
        assert_eq!(outcomes.len(), 4);
        let report = entry.render(&outcomes);
        assert_eq!(report.rows.len(), 5); // header + 4 rows
                                          // Tight frame, no clearing: stranded. Tight frame, clearing: rescued.
        let stranded = report.metric("completed_at_16384_clear_0").unwrap();
        let cleared = report.metric("completed_at_16384_clear_3").unwrap();
        let permissive = report.metric("completed_at_67108864_clear_0").unwrap();
        assert_eq!(stranded, 0.0);
        assert!(cleared > stranded);
        assert!(permissive > 0.0);
    }

    #[test]
    fn sequence_race_render_shows_the_race_and_the_fix() {
        // A miniature sequence_race: small enough for a unit test, still
        // deterministically straddling destination commits under Resync.
        let entry = get("sequence_race").unwrap();
        let grid = SweepGrid::new(
            ExperimentSpec::relayer_throughput()
                .named("sequence_race")
                .relayers(1)
                .rtt_ms(0)
                .input_rate(40)
                .measurement_blocks(6)
                .seed(42),
        )
        .sequence_trackings([SequenceTracking::Resync, SequenceTracking::MempoolAware]);
        let outcomes = run_parallel(&grid.points(), 2);
        assert_eq!(outcomes.len(), 2);
        let report = entry.render(&outcomes);
        assert_eq!(report.rows.len(), 3); // header + 2 arms
        let resync_failures = report.metric("broadcast_failures_resync").unwrap();
        let mempool_failures = report.metric("broadcast_failures_mempool").unwrap();
        assert!(resync_failures > 0.0, "the repro must exhibit the race");
        assert_eq!(mempool_failures, 0.0, "mempool-aware tracking never fails");
        let resync_completed = report.metric("completed_resync").unwrap();
        let mempool_completed = report.metric("completed_mempool").unwrap();
        assert!(
            mempool_completed >= resync_completed,
            "holding a straddled batch must not lose throughput \
             (mempool {mempool_completed} vs resync {resync_completed})"
        );
    }

    #[test]
    fn dedicated_scaling_render_pairs_the_policy_arms() {
        // A miniature dedicated_scaling point pair: cheap enough for a unit
        // test, the full ≥2× scaling claim is pinned by the fixture test.
        let entry = get("dedicated_scaling").unwrap();
        let grid = SweepGrid::new(
            ExperimentSpec::relayer_throughput()
                .named("dedicated_scaling")
                .relayers(1)
                .rtt_ms(0)
                .input_rate(40)
                .measurement_blocks(3)
                .seed(42),
        )
        .channel_counts([2])
        .channel_policies([ChannelPolicy::FairShare, ChannelPolicy::Dedicated]);
        let points = grid.points();
        assert_eq!(points.len(), 2);
        assert_eq!(
            points[0].name,
            "dedicated_scaling/channels=2/policy=fair-share"
        );
        assert_eq!(
            points[1].deployment.relayer_strategy.channel_policy,
            ChannelPolicy::Dedicated
        );
        let outcomes = run_parallel(&points, 2);
        let report = entry.render(&outcomes);
        assert_eq!(report.rows.len(), 2); // header + 1 channel count
        assert!(report.metric("tfps_shared_channels_2").unwrap() > 0.0);
        assert!(report.metric("tfps_dedicated_channels_2").unwrap() > 0.0);
        assert!(report.metric("scaling_at_channels_2").is_some());
    }

    #[test]
    fn batched_pull_calibration_render_orders_surcharges() {
        let entry = get("batched_pull_calibration").unwrap();
        let grid = SweepGrid::new(
            ExperimentSpec::latency()
                .named("batched_pull_calibration")
                .transfers(300)
                .submission_blocks(1)
                .rtt_ms(0)
                .strategy(RelayerStrategy::batched_pulls())
                .seed(42),
        )
        .batched_pull_per_items([0, 960]);
        let outcomes = run_parallel(&grid.points(), 2);
        assert_eq!(outcomes.len(), 2);
        let report = entry.render(&outcomes);
        assert_eq!(report.rows.len(), 3); // header + 2 surcharges
        let free = report.metric("latency_secs_at_0us").unwrap();
        let steep = report.metric("latency_secs_at_960us").unwrap();
        assert!(free > 0.0);
        assert!(
            steep >= free,
            "a steeper pagination surcharge cannot complete faster \
             ({steep} vs {free})"
        );
    }

    #[test]
    fn relayer_crash_render_recovers_without_double_submission() {
        // A miniature relayer_crash: crash after the first transfer block,
        // restart two blocks later, clearing on. The full-size recovery bound
        // is pinned by the fixture test; here we check the render contract.
        let entry = get("relayer_crash").unwrap();
        let plan = FaultPlan::new([
            FaultEvent::RelayerCrash {
                relayer: 0,
                at: SimDuration::from_secs(8),
            },
            FaultEvent::RelayerRestart {
                relayer: 0,
                at: SimDuration::from_secs(18),
            },
        ]);
        let grid = SweepGrid::new(
            ExperimentSpec::latency()
                .named("relayer_crash")
                .transfers(120)
                .submission_blocks(3)
                .measurement_blocks(10)
                .rtt_ms(0)
                .packet_clearing(2)
                .seed(42),
        )
        .fault_plans([FaultPlan::none(), plan]);
        let outcomes = run_parallel(&grid.points(), 2);
        assert_eq!(outcomes.len(), 2);
        let report = entry.render(&outcomes);
        assert_eq!(report.rows.len(), 3); // header + 2 arms
                                          // Both arms drain the whole batch: the crash delays, it does not lose.
        assert_eq!(report.metric("completed_baseline"), Some(120.0));
        assert_eq!(report.metric("completed_crash"), Some(120.0));
        assert_eq!(report.metric("double_submitted"), Some(0.0));
        assert_eq!(report.metric("stranded_packets"), Some(0.0));
        assert!(
            report.metric("recovery_secs").unwrap() > 0.0,
            "the crashed arm must observe a post-restart recovery"
        );
        // No cross-arm latency inequality: perhaps surprisingly, the crash
        // arm can beat its control on average latency, because the *baseline*
        // trips the §V account-sequence race (its failed receive txs wait for
        // the clear scan) while the restarted process resyncs its sequence
        // tracker cold and dodges the race. Both arms must report a latency.
        assert!(report.metric("latency_secs_baseline").unwrap() > 0.0);
        assert!(report.metric("latency_secs_crash").unwrap() > 0.0);
    }

    #[test]
    fn chain_halt_render_slows_blocks_but_loses_nothing() {
        let entry = get("chain_halt").unwrap();
        let from = SimDuration::from_secs(8);
        let duration = SimDuration::from_secs(15);
        let grid = SweepGrid::new(
            ExperimentSpec::relayer_throughput()
                .named("chain_halt")
                .relayers(1)
                .rtt_ms(0)
                .input_rate(20)
                .measurement_blocks(6)
                .seed(42),
        )
        .fault_plans([
            FaultPlan::none(),
            FaultPlan::new([FaultEvent::ChainHalt {
                chain: FaultChain::Source,
                from,
                duration,
            }]),
            FaultPlan::new([FaultEvent::BlockStretch {
                chain: FaultChain::Source,
                factor: 4,
                from,
                duration,
            }]),
        ]);
        let outcomes = run_parallel(&grid.points(), 2);
        assert_eq!(outcomes.len(), 3);
        let report = entry.render(&outcomes);
        assert_eq!(report.rows.len(), 4); // header + 3 arms
        let baseline = report.metric("block_interval_secs_baseline").unwrap();
        let halt = report.metric("block_interval_secs_halt").unwrap();
        let stretch = report.metric("block_interval_secs_stretch").unwrap();
        assert!(halt > baseline, "a 15 s halt must show up in the interval");
        assert!(
            stretch > baseline,
            "a 4x stretch must show up in the interval"
        );
        // Production faults delay commits but never lose them: every arm
        // still commits every submitted transfer.
        for outcome in &outcomes {
            assert!(
                outcome.completed() > 0,
                "{} completed nothing",
                outcome.spec.name
            );
            assert_eq!(
                outcome.committed(),
                outcome.submitted(),
                "{} lost committed transfers",
                outcome.spec.name
            );
        }
    }

    #[test]
    fn client_expiry_render_strands_the_faulted_arm_only() {
        let entry = get("client_expiry").unwrap();
        let grid = SweepGrid::new(
            ExperimentSpec::relayer_throughput()
                .named("client_expiry")
                .relayers(1)
                .rtt_ms(0)
                .input_rate(20)
                .measurement_blocks(6)
                .seed(42),
        )
        .fault_plans([
            FaultPlan::none(),
            FaultPlan::new([FaultEvent::ClientExpiry {
                path: 0,
                at: SimDuration::from_secs(8),
            }]),
        ]);
        let outcomes = run_parallel(&grid.points(), 2);
        assert_eq!(outcomes.len(), 2);
        let report = entry.render(&outcomes);
        assert_eq!(report.rows.len(), 3); // header + 2 arms
        assert_eq!(report.metric("stranded_baseline"), Some(0.0));
        assert!(
            report.metric("stranded_expiry").unwrap() > 0.0,
            "an expired client must strand in-flight packets"
        );
        assert!(
            report.metric("completed_expiry").unwrap()
                < report.metric("completed_baseline").unwrap(),
            "the stranded channel must complete fewer transfers than its control"
        );
    }

    #[test]
    fn hub_spoke_render_reports_forwarding_and_scaling() {
        // A miniature hub_spoke_scaling: two spokes instead of three, a low
        // rate and a short window. The full-size ≥3-spoke scaling claim is
        // pinned by the fixture test; here we check the render contract.
        let entry = get("hub_spoke_scaling").unwrap();
        let grid = SweepGrid::new(
            ExperimentSpec::latency()
                .named("hub_spoke_scaling")
                .transfers(120)
                .submission_blocks(1)
                .measurement_blocks(8)
                .rtt_ms(0)
                .relayers(1)
                .channel_weights([1, 1, 0, 0])
                .hop_plan(Topology::hub_and_spoke_routes(2))
                .seed(42),
        )
        .topologies([Topology::pair(), Topology::hub_and_spoke(2)]);
        let outcomes = run_parallel(&grid.points(), 2);
        assert_eq!(outcomes.len(), 2);
        let report = entry.render(&outcomes);
        assert!(report.metric("tfps_pair").unwrap() > 0.0);
        assert!(report.metric("tfps_hub-2").unwrap() > 0.0);
        assert!(
            report.metric("forwarded").unwrap() > 0.0,
            "the hub arm must forward second legs"
        );
        assert!(report.metric("hop1_latency_secs").is_some());
        assert!(report.metric("hop2_latency_secs").is_some());
        assert!(report.metric("hub_scaling").is_some());
        // No faults: nothing may strand in either arm.
        assert_eq!(report.metric("stranded_pair"), Some(0.0));
        assert_eq!(report.metric("stranded_hub-2"), Some(0.0));
    }

    #[test]
    fn mesh_contention_render_pairs_the_topology_arms() {
        let entry = get("mesh_contention").unwrap();
        let grid = SweepGrid::new(
            ExperimentSpec::latency()
                .named("mesh_contention")
                .transfers(120)
                .submission_blocks(1)
                .measurement_blocks(8)
                .rtt_ms(0)
                .relayers(1)
                .seed(42),
        )
        .topologies([Topology::pair(), Topology::full_mesh(3)]);
        let outcomes = run_parallel(&grid.points(), 2);
        assert_eq!(outcomes.len(), 2);
        let report = entry.render(&outcomes);
        assert_eq!(report.rows.len(), 3); // header + 2 arms
        assert!(report.metric("tfps_pair").unwrap() > 0.0);
        assert!(report.metric("tfps_mesh-3").unwrap() > 0.0);
        assert_eq!(report.metric("stranded_mesh-3"), Some(0.0));
    }

    #[test]
    fn rendering_uses_sweep_outcomes() {
        // Tiny synthetic sweep: run the cheapest entry end to end.
        let entry = get("fig7").unwrap();
        let grid = SweepGrid::new(
            ExperimentSpec::tendermint_throughput()
                .named("fig7")
                .seed(1),
        )
        .input_rates([20, 40]);
        let outcomes = run_parallel(&grid.points(), 2);
        let report = entry.render(&outcomes);
        assert_eq!(report.rows.len(), 3); // header + 2 rates
        assert!(report.metric("block_interval_secs_at_20").is_some());
    }
}
