//! The cross-chain performance evaluation framework — the paper's primary
//! contribution (Fig. 5).
//!
//! The framework has the three modules the paper describes:
//!
//! * **Setup** ([`testnet`]): deploys two simulated Cosmos Gaia chains,
//!   opens the IBC clients/connection/channel between them and instantiates
//!   the configured number of Hermes-like relayers (the Cross-chain
//!   Communicator).
//! * **Benchmark** ([`workload`], [`runner`]): the Cross-chain Workload
//!   Connector submits batched `MsgTransfer` workloads through the relayer
//!   CLI path while the experiment driver advances both chains and the
//!   relayers in virtual time.
//! * **Analysis** ([`analysis`], [`report`]): the Cross-chain Data and Event
//!   Connectors collect chain data and relayer telemetry; the Event Processor
//!   aggregates them into the throughput, latency, completion-status and
//!   scalability metrics the paper reports, emitted as execution reports.
//!
//! [`scenarios`] packages each of the paper's experiments (Table I,
//! Figs. 6–13, and the §V WebSocket-limit challenge) as a parameterised
//! function; the `bench` crate sweeps them to regenerate every table and
//! figure.
//!
//! # Example
//!
//! ```rust,no_run
//! use xcc_framework::scenarios;
//!
//! // One point of Fig. 8: 60 requests/second, one relayer, 200 ms RTT.
//! let result = scenarios::relayer_throughput(60, 1, 200, 10, 42);
//! println!("completed {} transfers at {:.1} TFPS", result.completed, result.throughput_tfps);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod config;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod testnet;
pub mod workload;
