//! Declarative experiment specifications.
//!
//! An [`ExperimentSpec`] bundles everything one experiment run needs — a
//! name, the scenario family it belongs to, a [`DeploymentConfig`] and a
//! [`WorkloadConfig`] — into one serializable value. Specs are built with a
//! fluent builder:
//!
//! ```rust
//! use xcc_framework::spec::ExperimentSpec;
//!
//! let spec = ExperimentSpec::relayer_throughput()
//!     .input_rate(60)
//!     .relayers(2)
//!     .rtt_ms(200)
//!     .seed(42);
//! assert_eq!(spec.deployment.relayer_count, 2);
//! assert_eq!(spec.workload.input_rate_rps(), 60.0);
//! ```
//!
//! Because a spec is plain serde data, it can be stored next to the figures
//! it produced, diffed between runs, and fed to the [`sweep`](crate::sweep)
//! engine, which expands parameter grids into lists of specs and executes
//! them in parallel.

use serde::{Deserialize, Serialize};

use xcc_relayer::strategy::{ChannelPolicy, RelayerStrategy, SequenceTracking};

use crate::config::{DeploymentConfig, WorkloadConfig};
use crate::fault::FaultPlan;
use crate::topology::{HopRoute, Topology};

/// The scenario family a spec belongs to — which of the paper's experiment
/// shapes it reproduces. The family selects builder defaults; every family's
/// run produces the same unified [`ScenarioOutcome`](crate::outcome::ScenarioOutcome).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Source-chain inclusion throughput, no relaying (Table I, Figs. 6–7).
    TendermintThroughput,
    /// Cross-chain throughput / completion with relayers (Figs. 8–11).
    RelayerThroughput,
    /// Batch completion latency measured to full completion (Figs. 12–13).
    Latency,
    /// The §V WebSocket 16 MiB frame-limit deployment challenge.
    WebSocketLimit,
}

impl ScenarioKind {
    /// Whether the workload of this family is expressed as a sustained input
    /// rate (transfers per second over the measurement window).
    pub fn is_rate_driven(&self) -> bool {
        matches!(
            self,
            ScenarioKind::TendermintThroughput | ScenarioKind::RelayerThroughput
        )
    }
}

/// A complete, serializable description of one experiment run.
///
/// `deployment.user_accounts == 0` means "size automatically": the runner
/// allocates one funded account per transaction per window, which is what
/// every paper experiment uses. The builder constructors start from that
/// automatic sizing; set an explicit count with
/// [`user_accounts`](ExperimentSpec::user_accounts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Human-readable name, used in reports and figure tables.
    pub name: String,
    /// The scenario family this spec reproduces.
    pub kind: ScenarioKind,
    /// Testnet deployment parameters.
    pub deployment: DeploymentConfig,
    /// Benchmark workload parameters.
    pub workload: WorkloadConfig,
}

impl ExperimentSpec {
    fn base(
        name: &str,
        kind: ScenarioKind,
        deployment: DeploymentConfig,
        workload: WorkloadConfig,
    ) -> Self {
        ExperimentSpec {
            name: name.to_string(),
            kind,
            deployment,
            workload,
        }
    }

    /// A Tendermint-throughput experiment (Table I, Figs. 6–7): sustained
    /// input rate over 15 blocks, no relayers, inclusion only.
    pub fn tendermint_throughput() -> Self {
        let workload = WorkloadConfig {
            run_to_completion: false,
            ..WorkloadConfig::from_input_rate(1_000, 15)
        };
        let deployment = DeploymentConfig {
            relayer_count: 0,
            user_accounts: 0,
            ..DeploymentConfig::default()
        };
        Self::base(
            "tendermint_throughput",
            ScenarioKind::TendermintThroughput,
            deployment,
            workload,
        )
    }

    /// A relayer-throughput experiment (Figs. 8–11): sustained input rate
    /// relayed across the channel, measured over a window of source blocks.
    pub fn relayer_throughput() -> Self {
        let workload = WorkloadConfig {
            run_to_completion: false,
            ..WorkloadConfig::from_input_rate(60, 50)
        };
        let deployment = DeploymentConfig {
            relayer_count: 1,
            user_accounts: 0,
            ..DeploymentConfig::default()
        };
        Self::base(
            "relayer_throughput",
            ScenarioKind::RelayerThroughput,
            deployment,
            workload,
        )
    }

    /// A latency experiment (Figs. 12–13): a fixed batch submitted over a
    /// number of block windows and measured to full completion.
    pub fn latency() -> Self {
        let workload = WorkloadConfig {
            total_transfers: 5_000,
            submission_blocks: 1,
            measurement_blocks: 1,
            run_to_completion: true,
            completion_grace_blocks: 600,
            ..WorkloadConfig::default()
        };
        let deployment = DeploymentConfig {
            relayer_count: 1,
            user_accounts: 0,
            ..DeploymentConfig::default()
        };
        Self::base("latency", ScenarioKind::Latency, deployment, workload)
    }

    /// The WebSocket frame-limit experiment (§V): one oversized block window,
    /// event collection failing at the 16 MiB frame.
    pub fn websocket_limit() -> Self {
        let workload = WorkloadConfig {
            total_transfers: 60_000,
            submission_blocks: 1,
            measurement_blocks: 12,
            timeout_blocks: 6,
            run_to_completion: false,
            ..WorkloadConfig::default()
        };
        let deployment = DeploymentConfig {
            relayer_count: 1,
            network_rtt_ms: 0,
            user_accounts: 0,
            ..DeploymentConfig::default()
        };
        Self::base(
            "websocket_limit",
            ScenarioKind::WebSocketLimit,
            deployment,
            workload,
        )
    }

    // -- fluent builder methods ---------------------------------------------

    /// Renames the spec (figure tables and reports show this name).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the sustained input rate in transfers per second, keeping the
    /// current number of measurement windows (the paper's "request rate").
    ///
    /// Only meaningful for the rate-driven families
    /// ([`TendermintThroughput`](ScenarioKind::TendermintThroughput),
    /// [`RelayerThroughput`](ScenarioKind::RelayerThroughput)); for the
    /// batch-defined families this is a no-op — use
    /// [`transfers`](ExperimentSpec::transfers) there instead.
    pub fn input_rate(mut self, rate_rps: u64) -> Self {
        if self.kind.is_rate_driven() {
            let windows = self.workload.measurement_blocks.max(1);
            let rated = WorkloadConfig::from_input_rate(rate_rps, windows);
            self.workload.total_transfers = rated.total_transfers;
            self.workload.submission_blocks = rated.submission_blocks;
        }
        self
    }

    /// Sets the measurement window length in source blocks. For rate-driven
    /// families the per-window transfer count is preserved, so this scales
    /// the total workload rather than diluting it.
    pub fn measurement_blocks(mut self, blocks: u64) -> Self {
        if self.kind.is_rate_driven() {
            let per_window = self.workload.transfers_per_window();
            self.workload.total_transfers = per_window * blocks.max(1);
            self.workload.submission_blocks = blocks.max(1);
        }
        self.workload.measurement_blocks = blocks.max(1);
        self
    }

    /// Sets the total number of transfers (latency / websocket families).
    pub fn transfers(mut self, total: u64) -> Self {
        self.workload.total_transfers = total;
        self
    }

    /// Sets the number of block windows the submission is spread over
    /// (Fig. 13's submission strategy). For the latency family the
    /// measurement window follows the submission window, as in the paper.
    pub fn submission_blocks(mut self, blocks: u64) -> Self {
        self.workload.submission_blocks = blocks;
        if self.kind == ScenarioKind::Latency {
            self.workload.measurement_blocks = blocks.max(1);
        }
        self
    }

    /// Sets the packet timeout in destination-chain blocks (0 disables it).
    pub fn timeout_blocks(mut self, blocks: u64) -> Self {
        self.workload.timeout_blocks = blocks;
        self
    }

    /// Sets the number of relayer instances serving the channels.
    pub fn relayers(mut self, count: usize) -> Self {
        self.deployment.relayer_count = count;
        self
    }

    /// Sets the number of concurrent transfer channels opened between the
    /// two chains (the paper's testbed uses 1).
    ///
    /// ```rust
    /// use xcc_framework::spec::ExperimentSpec;
    ///
    /// let spec = ExperimentSpec::relayer_throughput().channels(4);
    /// assert_eq!(spec.deployment.channel_count, 4);
    /// ```
    pub fn channels(mut self, count: usize) -> Self {
        self.deployment.channel_count = count.max(1);
        self
    }

    /// Sets the per-channel traffic weights the workload targets channels
    /// with (empty = uniform round-robin); see
    /// [`WorkloadConfig::channel_pattern`].
    pub fn channel_weights(mut self, weights: impl IntoIterator<Item = u64>) -> Self {
        self.workload.channel_weights = weights.into_iter().collect();
        self
    }

    /// Sets the strategy's channel policy — how relayer processes divide the
    /// deployment's channels. [`ChannelPolicy::Dedicated`] changes the fleet
    /// topology itself: the testnet builds one relayer process per channel
    /// (times `relayer_count` redundant replicas per channel), each with its
    /// own RPC lanes, instead of `relayer_count` shared processes.
    ///
    /// ```rust
    /// use xcc_framework::spec::ExperimentSpec;
    /// use xcc_relayer::strategy::ChannelPolicy;
    ///
    /// let spec = ExperimentSpec::relayer_throughput()
    ///     .channels(4)
    ///     .channel_policy(ChannelPolicy::Dedicated);
    /// assert_eq!(spec.deployment.relayer_strategy.label(), "dedicated");
    /// ```
    pub fn channel_policy(mut self, policy: ChannelPolicy) -> Self {
        self.deployment.relayer_strategy.channel_policy = policy;
        self
    }

    /// Sets the relayers' WebSocket frame limit in bytes (`0` restores
    /// Tendermint's 16 MiB default) — the §V deployment limit as a knob.
    pub fn frame_limit(mut self, bytes: u64) -> Self {
        self.deployment.relayer_strategy = self.deployment.relayer_strategy.frame_limit(bytes);
        self
    }

    /// Sets the relayers' packet-clear interval in source blocks (`0`
    /// disables clearing, the paper's deployment).
    pub fn packet_clearing(mut self, blocks: u64) -> Self {
        self.deployment.relayer_strategy = self.deployment.relayer_strategy.packet_clearing(blocks);
        self
    }

    /// Sets the relayers' account-sequence tracking across straddled commits
    /// (§V's sequence race) and switches on `broadcast_failures` reporting,
    /// so both arms of a tracking comparison expose the counter the race is
    /// measured by.
    ///
    /// ```rust
    /// use xcc_framework::spec::ExperimentSpec;
    /// use xcc_relayer::strategy::SequenceTracking;
    ///
    /// let spec = ExperimentSpec::relayer_throughput()
    ///     .sequence_tracking(SequenceTracking::MempoolAware);
    /// assert_eq!(spec.deployment.relayer_strategy.label(), "mempool-seq");
    /// assert!(spec.deployment.report_broadcast_failures);
    /// ```
    pub fn sequence_tracking(mut self, tracking: SequenceTracking) -> Self {
        self.deployment.relayer_strategy =
            self.deployment.relayer_strategy.sequence_tracking(tracking);
        self.deployment.report_broadcast_failures = true;
        self
    }

    /// Sets the RPC cost model's batched-pull pagination surcharge in
    /// microseconds (`0` models free pagination) — the PR 2 batched-pull
    /// cost as a sweepable calibration knob.
    pub fn batched_pull_per_item_us(mut self, micros: u64) -> Self {
        self.deployment.batched_pull_per_item_us = micros;
        self
    }

    /// Sets the relayer pipeline strategy (event source, data fetcher,
    /// submission policy, coordination) every instance runs.
    ///
    /// ```rust
    /// use xcc_framework::spec::ExperimentSpec;
    /// use xcc_relayer::strategy::RelayerStrategy;
    ///
    /// let spec = ExperimentSpec::relayer_throughput()
    ///     .input_rate(60)
    ///     .strategy(RelayerStrategy::batched_pulls());
    /// assert_eq!(spec.deployment.relayer_strategy.label(), "batched");
    /// ```
    pub fn strategy(mut self, strategy: RelayerStrategy) -> Self {
        self.deployment.relayer_strategy = strategy;
        self
    }

    /// Sets the deterministic fault schedule the runner injects (relayer
    /// crashes/restarts, chain halts, block stretches, client expiries).
    /// The default is the empty plan, which schedules nothing.
    ///
    /// ```rust
    /// use xcc_framework::fault::{FaultEvent, FaultPlan};
    /// use xcc_framework::spec::ExperimentSpec;
    /// use xcc_sim::SimDuration;
    ///
    /// let spec = ExperimentSpec::relayer_throughput().fault_plan(FaultPlan::new([
    ///     FaultEvent::RelayerCrash { relayer: 0, at: SimDuration::from_secs(16) },
    ///     FaultEvent::RelayerRestart { relayer: 0, at: SimDuration::from_secs(26) },
    /// ]));
    /// assert_eq!(spec.deployment.fault_plan.label(), "crash0@16s+restart0@26s");
    /// ```
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.deployment.fault_plan = plan;
        self
    }

    /// Sets the deployment's chain topology (the default sentinel is the
    /// paper's two-chain pair).
    ///
    /// ```rust
    /// use xcc_framework::spec::ExperimentSpec;
    /// use xcc_framework::topology::Topology;
    ///
    /// let spec = ExperimentSpec::relayer_throughput().topology(Topology::hub_and_spoke(3));
    /// assert_eq!(spec.deployment.topology.chains.len(), 4);
    /// ```
    pub fn topology(mut self, topology: Topology) -> Self {
        self.deployment.topology = topology;
        self
    }

    /// Sets the workload's multi-hop plan: each route chains a second
    /// transfer leg onto completed first legs (src → hub → dst). Routes
    /// whose channel indices are out of the deployment's range are ignored
    /// at run time, so one plan can be swept across topologies.
    ///
    /// ```rust
    /// use xcc_framework::spec::ExperimentSpec;
    /// use xcc_framework::topology::Topology;
    ///
    /// let spec = ExperimentSpec::relayer_throughput()
    ///     .topology(Topology::hub_and_spoke(3))
    ///     .hop_plan(Topology::hub_and_spoke_routes(3));
    /// assert_eq!(spec.workload.hop_plan.len(), 3);
    /// ```
    pub fn hop_plan(mut self, routes: impl IntoIterator<Item = HopRoute>) -> Self {
        self.workload.hop_plan = routes.into_iter().collect();
        self
    }

    /// Sets the emulated network round-trip time in milliseconds.
    pub fn rtt_ms(mut self, rtt: u64) -> Self {
        self.deployment.network_rtt_ms = rtt;
        self
    }

    /// Sets the experiment seed (all randomness derives from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.deployment.seed = seed;
        self
    }

    /// Overrides the automatic funded-account sizing.
    pub fn user_accounts(mut self, accounts: usize) -> Self {
        self.deployment.user_accounts = accounts;
        self
    }

    // -- resolution ---------------------------------------------------------

    /// The deployment with automatic account sizing resolved: when
    /// `user_accounts` is 0, one funded account per transaction per window is
    /// allocated (so no account is reused within a window).
    pub fn resolved_deployment(&self) -> DeploymentConfig {
        let mut deployment = self.deployment.clone();
        if deployment.user_accounts == 0 {
            deployment.user_accounts = self.workload.txs_per_window().max(1) as usize;
        }
        deployment
    }

    /// Serializes the spec to pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics only if serialization fails, which would indicate a bug in the
    /// spec structure itself.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialisation cannot fail")
    }

    /// Parses a spec from JSON text.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_reproduces_the_paper_configurations() {
        let spec = ExperimentSpec::relayer_throughput()
            .input_rate(60)
            .relayers(2)
            .rtt_ms(200)
            .measurement_blocks(10)
            .seed(7);
        assert_eq!(spec.workload.total_transfers, 60 * 5 * 10);
        assert_eq!(spec.workload.submission_blocks, 10);
        assert_eq!(spec.workload.measurement_blocks, 10);
        assert!(!spec.workload.run_to_completion);
        assert_eq!(spec.deployment.relayer_count, 2);
        assert_eq!(spec.deployment.network_rtt_ms, 200);
        assert_eq!(spec.deployment.seed, 7);
    }

    #[test]
    fn builder_is_order_insensitive_for_rate_and_window() {
        let a = ExperimentSpec::relayer_throughput()
            .input_rate(80)
            .measurement_blocks(20);
        let b = ExperimentSpec::relayer_throughput()
            .measurement_blocks(20)
            .input_rate(80);
        assert_eq!(a.workload, b.workload);
    }

    #[test]
    fn latency_submission_blocks_drive_measurement_window() {
        let spec = ExperimentSpec::latency()
            .transfers(1_200)
            .submission_blocks(4);
        assert_eq!(spec.workload.total_transfers, 1_200);
        assert_eq!(spec.workload.submission_blocks, 4);
        assert_eq!(spec.workload.measurement_blocks, 4);
        assert!(spec.workload.run_to_completion);
    }

    #[test]
    fn automatic_account_sizing_matches_the_window() {
        let spec = ExperimentSpec::tendermint_throughput().input_rate(1_000);
        // 5,000 transfers per window at 100 per tx = 50 accounts.
        assert_eq!(spec.resolved_deployment().user_accounts, 50);
        let explicit = spec.user_accounts(7);
        assert_eq!(explicit.resolved_deployment().user_accounts, 7);
    }

    #[test]
    fn multi_channel_and_limit_knobs_build_into_the_spec() {
        let spec = ExperimentSpec::relayer_throughput()
            .channels(3)
            .channel_weights([4, 1, 1])
            .frame_limit(1 << 20)
            .packet_clearing(5);
        assert_eq!(spec.deployment.channel_count, 3);
        assert_eq!(spec.workload.channel_weights, vec![4, 1, 1]);
        assert_eq!(
            spec.deployment.relayer_strategy.ws_frame_limit_bytes,
            1 << 20
        );
        assert_eq!(spec.deployment.relayer_strategy.packet_clear_interval, 5);
        // Channel counts are clamped to at least one.
        assert_eq!(
            ExperimentSpec::relayer_throughput()
                .channels(0)
                .deployment
                .channel_count,
            1
        );
        // The knobs survive a JSON round trip.
        let back = ExperimentSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn specs_round_trip_through_json_identically() {
        let spec = ExperimentSpec::websocket_limit()
            .transfers(123)
            .seed(9)
            .named("ws-test");
        let json = spec.to_json();
        let back = ExperimentSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), json);
    }
}
