//! The paper's experiments, packaged as reusable scenario functions.
//!
//! Each function deploys a fresh testnet, executes one configuration of one
//! experiment and returns the metrics that the corresponding table or figure
//! reports. The `bench` crate sweeps these functions over the paper's
//! parameter ranges to regenerate every table and figure.

use serde::{Deserialize, Serialize};

use crate::analysis;
use crate::config::{DeploymentConfig, WorkloadConfig};
use crate::report::ExecutionReport;
use crate::runner::{run_experiment, RunOutput};

/// One row of the Tendermint throughput experiments (Table I, Figs. 6 and 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TendermintRunResult {
    /// The configured input rate in requests (transfers) per second.
    pub input_rate_rps: u64,
    /// Committed transfer messages per second over the window (Fig. 6).
    pub throughput_tfps: f64,
    /// Average block interval in seconds (Fig. 7).
    pub avg_block_interval_secs: f64,
    /// Transfers requested from the CLI (Table I "Requests made").
    pub requests_made: u64,
    /// Transfers accepted into the mempool (Table I "Submitted").
    pub submitted: u64,
    /// Transfers committed on chain (Table I "Committed").
    pub committed: u64,
}

/// Runs one Tendermint-throughput configuration: `input_rate_rps` sustained
/// for 15 consecutive blocks, no relaying (the paper only measures inclusion
/// of `MsgTransfer`).
pub fn tendermint_throughput(input_rate_rps: u64, rtt_ms: u64, seed: u64) -> TendermintRunResult {
    let workload = WorkloadConfig {
        run_to_completion: false,
        ..WorkloadConfig::from_input_rate(input_rate_rps, 15)
    };
    let deployment = DeploymentConfig {
        relayer_count: 0,
        network_rtt_ms: rtt_ms,
        user_accounts: workload.txs_per_window().max(1) as usize,
        seed,
        ..DeploymentConfig::default()
    };
    let run = run_experiment(&deployment, &workload);
    TendermintRunResult {
        input_rate_rps,
        throughput_tfps: analysis::tendermint_throughput_tfps(&run),
        avg_block_interval_secs: analysis::average_block_interval_secs(&run),
        requests_made: run.submission.requests_made,
        submitted: run.submission.submitted,
        committed: analysis::committed_transfers(&run),
    }
}

/// One data point of the relayer throughput / completion experiments
/// (Figs. 8–11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelayerRunResult {
    /// The configured input rate in transfers per second.
    pub input_rate_rps: u64,
    /// Number of relayer instances serving the channel.
    pub relayer_count: usize,
    /// Emulated round-trip latency in milliseconds.
    pub rtt_ms: u64,
    /// Completed transfers per second over the 50-block window (Figs. 8/9).
    pub throughput_tfps: f64,
    /// Transfer completion breakdown at the end of the window (Figs. 10/11).
    pub completed: u64,
    /// Partially completed transfers (transfer + receive only).
    pub partial: u64,
    /// Transfers that were only initiated.
    pub initiated: u64,
    /// Transfers never committed to the source chain.
    pub not_committed: u64,
    /// Occurrences of redundant packet messages (multi-relayer effect).
    pub redundant_packet_errors: u64,
}

/// Runs one relayer-throughput configuration: `input_rate_rps` sustained over
/// `measurement_blocks` source blocks with `relayer_count` relayers.
pub fn relayer_throughput(
    input_rate_rps: u64,
    relayer_count: usize,
    rtt_ms: u64,
    measurement_blocks: u64,
    seed: u64,
) -> RelayerRunResult {
    let workload = WorkloadConfig {
        run_to_completion: false,
        ..WorkloadConfig::from_input_rate(input_rate_rps, measurement_blocks)
    };
    let deployment = DeploymentConfig {
        relayer_count,
        network_rtt_ms: rtt_ms,
        user_accounts: workload.txs_per_window().max(1) as usize,
        seed,
        ..DeploymentConfig::default()
    };
    let run = run_experiment(&deployment, &workload);
    let breakdown = analysis::completion_breakdown(&run);
    RelayerRunResult {
        input_rate_rps,
        relayer_count,
        rtt_ms,
        throughput_tfps: analysis::throughput_tfps(&run),
        completed: breakdown.completed,
        partial: breakdown.partial,
        initiated: breakdown.initiated,
        not_committed: breakdown.not_committed,
        redundant_packet_errors: analysis::redundant_packet_errors(&run),
    }
}

/// The result of the latency-breakdown experiment (Fig. 12) and of each point
/// of the submission-strategy experiment (Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyRunResult {
    /// Number of transfers submitted.
    pub transfers: u64,
    /// Number of block windows the submission was spread over.
    pub submission_blocks: u64,
    /// Completion latency of the whole batch in seconds.
    pub completion_latency_secs: f64,
    /// Duration of the transfer phase (steps 1–4) in seconds.
    pub transfer_phase_secs: f64,
    /// Duration of the receive phase (steps 5–9) in seconds.
    pub recv_phase_secs: f64,
    /// Duration of the acknowledgement phase (steps 10–13) in seconds.
    pub ack_phase_secs: f64,
    /// Time spent in the transfer data-pull step, in seconds.
    pub transfer_pull_secs: f64,
    /// Time spent in the receive data-pull step, in seconds.
    pub recv_pull_secs: f64,
    /// Fraction of the total time spent in RPC data pulls (the paper reports
    /// ≈0.69 for the 5,000-transfer single-block case).
    pub data_pull_share: f64,
}

/// Runs the latency experiment: `transfers` cross-chain transfers submitted
/// over `submission_blocks` block windows, measured to full completion
/// (Figs. 12 and 13).
pub fn latency_run(transfers: u64, submission_blocks: u64, rtt_ms: u64, seed: u64) -> LatencyRunResult {
    let workload = WorkloadConfig {
        total_transfers: transfers,
        submission_blocks,
        measurement_blocks: submission_blocks.max(1),
        run_to_completion: true,
        completion_grace_blocks: 600,
        ..WorkloadConfig::default()
    };
    let deployment = DeploymentConfig {
        relayer_count: 1,
        network_rtt_ms: rtt_ms,
        user_accounts: workload.txs_per_window().max(1) as usize,
        seed,
        ..DeploymentConfig::default()
    };
    let run = run_experiment(&deployment, &workload);
    let steps = analysis::step_breakdown(&run);
    LatencyRunResult {
        transfers,
        submission_blocks,
        completion_latency_secs: analysis::completion_latency(&run).unwrap_or(steps.total_secs),
        transfer_phase_secs: steps.transfer_phase_secs,
        recv_phase_secs: steps.recv_phase_secs,
        ack_phase_secs: steps.ack_phase_secs,
        transfer_pull_secs: steps.transfer_pull_secs,
        recv_pull_secs: steps.recv_pull_secs,
        data_pull_share: steps.data_pull_share(),
    }
}

/// Result of the WebSocket frame-limit experiment (§V, "WebSocket space
/// limit").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WebSocketLimitResult {
    /// Transfers requested.
    pub requested: u64,
    /// Transfers that completed despite the failure.
    pub completed: u64,
    /// Transfers stuck: committed on the source chain but neither relayed nor
    /// timed out.
    pub stuck: u64,
    /// How many blocks failed event collection.
    pub event_collection_failures: u64,
}

/// Reproduces the WebSocket-limit deployment challenge: a block carrying far
/// more IBC events than the 16 MiB frame limit allows, with the packet-clear
/// interval disabled, leaving most transfers stuck.
pub fn websocket_limit_run(transfers: u64, seed: u64) -> WebSocketLimitResult {
    let workload = WorkloadConfig {
        total_transfers: transfers,
        submission_blocks: 1,
        measurement_blocks: 12,
        timeout_blocks: 6,
        run_to_completion: false,
        ..WorkloadConfig::default()
    };
    let deployment = DeploymentConfig {
        relayer_count: 1,
        network_rtt_ms: 0,
        user_accounts: workload.txs_per_window().max(1) as usize,
        seed,
        ..DeploymentConfig::default()
    };
    let run = run_experiment(&deployment, &workload);
    let breakdown = analysis::completion_breakdown(&run);
    WebSocketLimitResult {
        requested: run.submission.requests_made,
        completed: breakdown.completed,
        stuck: breakdown.initiated + breakdown.partial,
        event_collection_failures: run.relayer_stats.iter().map(|s| s.event_collection_failures).sum(),
    }
}

/// Builds an [`ExecutionReport`] from any run output, used by examples and by
/// the report binaries.
pub fn report_for(name: &str, run: &RunOutput) -> ExecutionReport {
    let mut report = ExecutionReport::new(name);
    let breakdown = analysis::completion_breakdown(run);
    report.set_metric("throughput_tfps", analysis::throughput_tfps(run));
    report.set_metric("tendermint_throughput_tfps", analysis::tendermint_throughput_tfps(run));
    report.set_metric("avg_block_interval_secs", analysis::average_block_interval_secs(run));
    report.set_metric("completed", breakdown.completed as f64);
    report.set_metric("partial", breakdown.partial as f64);
    report.set_metric("initiated", breakdown.initiated as f64);
    report.set_metric("not_committed", breakdown.not_committed as f64);
    report.set_metric("requests_made", run.submission.requests_made as f64);
    report.set_metric("submitted", run.submission.submitted as f64);
    report.set_metric("redundant_packet_errors", analysis::redundant_packet_errors(run) as f64);
    report.add_note(format!(
        "{} relayer(s), {} ms RTT, seed {}",
        run.deployment.relayer_count, run.deployment.network_rtt_ms, run.deployment.seed
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_tendermint_run_commits_requested_transfers() {
        let result = tendermint_throughput(40, 0, 1);
        assert_eq!(result.requests_made, 40 * 5 * 15);
        assert_eq!(result.submitted, result.requests_made);
        assert!(result.committed > 0);
        assert!(result.throughput_tfps > 0.0);
        assert!(result.avg_block_interval_secs >= 5.0);
    }

    #[test]
    fn small_relayer_run_completes_transfers() {
        let result = relayer_throughput(20, 1, 0, 6, 1);
        assert!(result.completed > 0, "completed = {}", result.completed);
        assert!(result.throughput_tfps > 0.0);
        assert_eq!(
            result.completed + result.partial + result.initiated + result.not_committed,
            20 * 5 * 6
        );
    }

    #[test]
    fn latency_run_reports_phase_breakdown() {
        let result = latency_run(300, 1, 0, 1);
        assert!(result.completion_latency_secs > 0.0);
        assert!(result.recv_phase_secs >= 0.0);
        assert!(result.data_pull_share > 0.0 && result.data_pull_share < 1.0);
    }

    #[test]
    fn splitting_submission_reduces_latency_for_large_batches() {
        let single = latency_run(1_200, 1, 0, 7);
        let split = latency_run(1_200, 4, 0, 7);
        assert!(
            split.completion_latency_secs < single.completion_latency_secs,
            "split {} vs single {}",
            split.completion_latency_secs,
            single.completion_latency_secs
        );
    }
}
