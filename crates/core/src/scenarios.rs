//! Spec-driven scenario execution.
//!
//! [`run`] takes an [`ExperimentSpec`], deploys a fresh testnet, executes the
//! configured workload and returns the unified
//! [`crate::outcome::ScenarioOutcome`] carrying every metric
//! the paper reports. The positional-argument functions that earlier
//! revisions exposed (`relayer_throughput(60, 1, 200, 10, 42)` — which one
//! is the RTT?) survive as thin `#[deprecated]` wrappers over the builder
//! API so old call sites keep compiling.

use serde::{Deserialize, Serialize};

use crate::analysis;
use crate::outcome::{keys, ScenarioOutcome};
use crate::report::ExecutionReport;
use crate::runner::{run_experiment, RunOutput};
use crate::spec::ExperimentSpec;
use crate::testnet::SetupError;

/// Executes a spec end to end and returns its raw data for custom analysis,
/// or the [`SetupError`] when the deployment cannot be built.
pub fn try_run_raw(spec: &ExperimentSpec) -> Result<RunOutput, SetupError> {
    run_experiment(&spec.resolved_deployment(), &spec.workload)
}

/// Executes a spec end to end and returns its raw data for custom analysis.
///
/// Most callers want [`run`]; this entry point exists for examples and tests
/// that inspect chains, telemetry or block records directly. Specs whose
/// deployment can fail to set up (hand-written topologies) should use
/// [`try_run_raw`].
pub fn run_raw(spec: &ExperimentSpec) -> RunOutput {
    // xcc-lint: allow(panic-in-library, reason = "convenience front end for tests and examples; the fallible path is try_run_raw")
    try_run_raw(spec).expect("experiment setup succeeds for this spec")
}

/// Computes the unified outcome of a finished run.
///
/// Every metric is computed for every scenario family — the spec's kind
/// picks defaults at build time, never the shape of the result.
pub fn outcome_from(spec: &ExperimentSpec, run: &RunOutput) -> ScenarioOutcome {
    let mut outcome = ScenarioOutcome::new(spec.clone());
    let breakdown = analysis::completion_breakdown(run);
    let steps = analysis::step_breakdown(run);

    outcome.set(keys::THROUGHPUT_TFPS, analysis::throughput_tfps(run));
    outcome.set(
        keys::TENDERMINT_THROUGHPUT_TFPS,
        analysis::tendermint_throughput_tfps(run),
    );
    outcome.set(
        keys::AVG_BLOCK_INTERVAL_SECS,
        analysis::average_block_interval_secs(run),
    );
    outcome.set(keys::REQUESTS_MADE, run.submission.requests_made as f64);
    outcome.set(keys::SUBMITTED, run.submission.submitted as f64);
    outcome.set(keys::COMMITTED, analysis::committed_transfers(run) as f64);
    outcome.set(keys::COMPLETED, breakdown.completed as f64);
    outcome.set(keys::PARTIAL, breakdown.partial as f64);
    outcome.set(keys::INITIATED, breakdown.initiated as f64);
    outcome.set(keys::NOT_COMMITTED, breakdown.not_committed as f64);
    outcome.set(
        keys::REDUNDANT_PACKET_ERRORS,
        analysis::redundant_packet_errors(run) as f64,
    );
    outcome.set(
        keys::EVENT_COLLECTION_FAILURES,
        run.relayer_stats
            .iter()
            .map(|s| s.event_collection_failures)
            .sum::<u64>() as f64,
    );
    outcome.set(
        keys::COMPLETION_LATENCY_SECS,
        analysis::completion_latency(run).unwrap_or(steps.total_secs),
    );
    outcome.set(keys::TRANSFER_PHASE_SECS, steps.transfer_phase_secs);
    outcome.set(keys::RECV_PHASE_SECS, steps.recv_phase_secs);
    outcome.set(keys::ACK_PHASE_SECS, steps.ack_phase_secs);
    outcome.set(keys::TRANSFER_PULL_SECS, steps.transfer_pull_secs);
    outcome.set(keys::RECV_PULL_SECS, steps.recv_pull_secs);
    outcome.set(keys::DATA_PULL_SHARE, steps.data_pull_share());
    // Clearing-enabled runs report how many packets the clear scan rescued;
    // runs without clearing (the paper's deployment, and every golden
    // fixture) keep their metric maps unchanged.
    if run.deployment.relayer_strategy.packet_clear_interval > 0 {
        outcome.set(
            keys::PACKETS_CLEARED,
            run.relayer_stats
                .iter()
                .map(|s| s.packets_cleared)
                .sum::<u64>() as f64,
        );
    }
    // Runs that opted into the sequence-tracking comparison (either arm, via
    // the spec builder / sweep axis) or run mempool-aware tracking report the
    // relayers' failed broadcast attempts — the counter the §V sequence race
    // is measured by. Runs that never asked, the golden fixtures included,
    // keep their metric maps unchanged.
    if run.deployment.report_broadcast_failures
        || run.deployment.relayer_strategy.sequence_tracking
            == xcc_relayer::strategy::SequenceTracking::MempoolAware
    {
        outcome.set(
            keys::BROADCAST_FAILURES,
            run.relayer_stats
                .iter()
                .map(|s| s.broadcast_failures)
                .sum::<u64>() as f64,
        );
    }

    // Fault-injected runs report the recovery metrics; runs with an empty
    // fault plan — every pre-fault scenario and golden fixture — keep their
    // metric maps unchanged. The two recovery clocks are omitted (not zero)
    // when the run never recovered, so a stranded run is distinguishable
    // from an instant recovery.
    if !run.deployment.fault_plan.is_empty() {
        outcome.set(
            keys::DOUBLE_SUBMITTED,
            analysis::double_submitted_packets(run) as f64,
        );
        outcome.set(
            keys::STRANDED_PACKETS,
            analysis::stranded_packets(run) as f64,
        );
        if let Some(secs) = analysis::time_to_first_completed_after_fault(run) {
            outcome.set(keys::FIRST_COMPLETION_AFTER_FAULT_SECS, secs);
        }
        if let Some(secs) = analysis::recovery_secs(run) {
            outcome.set(keys::RECOVERY_SECS, secs);
        }
    }

    // Topology runs (more than the legacy chain pair) always report the
    // stranded-packet count, fault plan or not: a healthy multi-chain run
    // must drain to zero and the CI smoke job pins exactly that. Two-chain
    // fault-free runs — every pre-existing golden fixture — keep their
    // metric maps unchanged.
    if run.chains.len() > 2 && run.deployment.fault_plan.is_empty() {
        outcome.set(
            keys::STRANDED_PACKETS,
            analysis::stranded_packets(run) as f64,
        );
    }

    // Hop-plan runs surface the multi-hop decomposition: how many second
    // legs the forwarder spawned and how long each leg (and the forwarding
    // gap between them) took, aggregated and per route. Hop-free runs keep
    // their metric maps unchanged.
    if !run.hop_routes.is_empty() {
        outcome.set(keys::FORWARDED, run.forward_stats.submitted as f64);
        let mut hop1 = Vec::new();
        let mut hop2 = Vec::new();
        let mut lag = Vec::new();
        for (ri, route) in run.hop_routes.iter().enumerate() {
            if let Some(secs) = analysis::channel_completion_latency(run, route.first_leg) {
                outcome.set(&keys::on_route(keys::HOP1_LATENCY_SECS, ri), secs);
                hop1.push(secs);
            }
            if let Some(secs) = analysis::channel_completion_latency(run, route.second_leg) {
                outcome.set(&keys::on_route(keys::HOP2_LATENCY_SECS, ri), secs);
                hop2.push(secs);
            }
            if let Some(secs) = analysis::forward_lag_secs(run, ri) {
                outcome.set(&keys::on_route(keys::FORWARD_LAG_SECS, ri), secs);
                lag.push(secs);
            }
        }
        let mean = |values: &[f64]| values.iter().sum::<f64>() / values.len() as f64;
        if !hop1.is_empty() {
            outcome.set(keys::HOP1_LATENCY_SECS, mean(&hop1));
        }
        if !hop2.is_empty() {
            outcome.set(keys::HOP2_LATENCY_SECS, mean(&hop2));
        }
        if !lag.is_empty() {
            outcome.set(keys::FORWARD_LAG_SECS, mean(&lag));
        }
    }

    // Profiling runs surface the deterministic work counters so sweeps and
    // the bench harness can regress on exact work, not wall-clock. Runs that
    // never asked — every golden fixture — keep their metric maps unchanged.
    if run.deployment.profile_work {
        let work = &run.work;
        outcome.set(keys::WORK_EVENTS_SCHEDULED, work.events_scheduled as f64);
        outcome.set(keys::WORK_EVENTS_POPPED, work.events_popped as f64);
        outcome.set(keys::WORK_RPC_CALLS, work.total_rpc_calls() as f64);
        for (kind, count) in &work.rpc_calls {
            outcome.set(&keys::on_rpc_kind(kind), *count as f64);
        }
        outcome.set(keys::WORK_TXS_ENCODED, work.txs_encoded as f64);
        outcome.set(keys::WORK_TXS_DECODED, work.txs_decoded as f64);
        outcome.set(keys::WORK_BYTES_SERIALIZED, work.bytes_serialized as f64);
        outcome.set(keys::WORK_TELEMETRY_RECORDS, work.telemetry_records as f64);
        outcome.set(keys::WORK_RELAYER_WAKES, work.relayer_wakes as f64);
        outcome.set(keys::WORK_CLEAR_SCAN_VISITS, work.clear_scan_visits as f64);
    }

    // Multi-channel runs additionally emit the completion metrics once per
    // channel; single-channel runs emit only the aggregates so that the
    // paper scenarios' metric maps (and the golden fixtures) are unchanged.
    if run.paths.len() > 1 {
        let window = (run.measurement_end - run.measurement_start).as_secs_f64();
        for channel in 0..run.paths.len() {
            let b = analysis::completion_breakdown_on(run, channel);
            outcome.set(
                &keys::on_channel(keys::COMPLETED, channel),
                b.completed as f64,
            );
            outcome.set(&keys::on_channel(keys::PARTIAL, channel), b.partial as f64);
            outcome.set(
                &keys::on_channel(keys::INITIATED, channel),
                b.initiated as f64,
            );
            outcome.set(
                &keys::on_channel(keys::NOT_COMMITTED, channel),
                b.not_committed as f64,
            );
            outcome.set(
                &keys::on_channel(keys::COMMITTED, channel),
                analysis::committed_transfers_on(run, channel) as f64,
            );
            let tfps = if window > 0.0 {
                b.completed as f64 / window
            } else {
                0.0
            };
            outcome.set(&keys::on_channel(keys::THROUGHPUT_TFPS, channel), tfps);
        }
    }
    outcome
}

/// Deploys, executes and analyses one spec, or reports why setup failed.
pub fn try_run(spec: &ExperimentSpec) -> Result<ScenarioOutcome, SetupError> {
    let raw = try_run_raw(spec)?;
    Ok(outcome_from(spec, &raw))
}

/// Deploys, executes and analyses one spec: the single entry point every
/// figure, sweep and test goes through.
///
/// A spec whose deployment cannot set up (an invalid hand-written topology,
/// a failed handshake) still yields an outcome — with the single
/// `setup_failed` metric set — instead of panicking, so one bad point cannot
/// take down a whole sweep.
pub fn run(spec: &ExperimentSpec) -> ScenarioOutcome {
    match try_run(spec) {
        Ok(outcome) => outcome,
        Err(_) => {
            let mut outcome = ScenarioOutcome::new(spec.clone());
            outcome.set(keys::SETUP_FAILED, 1.0);
            outcome
        }
    }
}

/// Builds an [`ExecutionReport`] from any run output.
#[deprecated(
    since = "0.1.0",
    note = "use `scenarios::outcome_from(spec, run).to_report()` — outcomes carry the full metric set"
)]
pub fn report_for(name: &str, run: &RunOutput) -> ExecutionReport {
    let mut report = ExecutionReport::new(name);
    let breakdown = analysis::completion_breakdown(run);
    report.set_metric(keys::THROUGHPUT_TFPS, analysis::throughput_tfps(run));
    report.set_metric(
        keys::TENDERMINT_THROUGHPUT_TFPS,
        analysis::tendermint_throughput_tfps(run),
    );
    report.set_metric(
        keys::AVG_BLOCK_INTERVAL_SECS,
        analysis::average_block_interval_secs(run),
    );
    report.set_metric(keys::COMPLETED, breakdown.completed as f64);
    report.set_metric(keys::PARTIAL, breakdown.partial as f64);
    report.set_metric(keys::INITIATED, breakdown.initiated as f64);
    report.set_metric(keys::NOT_COMMITTED, breakdown.not_committed as f64);
    report.set_metric(keys::REQUESTS_MADE, run.submission.requests_made as f64);
    report.set_metric(keys::SUBMITTED, run.submission.submitted as f64);
    report.set_metric(
        keys::REDUNDANT_PACKET_ERRORS,
        analysis::redundant_packet_errors(run) as f64,
    );
    report.add_note(format!(
        "{} relayer(s), {} ms RTT, seed {}",
        run.deployment.relayer_count, run.deployment.network_rtt_ms, run.deployment.seed
    ));
    report
}

// ---------------------------------------------------------------------------
// Deprecated positional-argument API
// ---------------------------------------------------------------------------

/// One row of the Tendermint throughput experiments — registered as the
/// `fig6`, `fig7` and `table1` scenarios in [`crate::registry`]
/// (`figure fig6` on the CLI).
#[deprecated(
    since = "0.1.0",
    note = "use `ExperimentSpec` + `scenarios::run` and read `ScenarioOutcome` accessors"
)]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TendermintRunResult {
    /// The configured input rate in requests (transfers) per second.
    pub input_rate_rps: u64,
    /// Committed transfer messages per second over the window (Fig. 6).
    pub throughput_tfps: f64,
    /// Average block interval in seconds (Fig. 7).
    pub avg_block_interval_secs: f64,
    /// Transfers requested from the CLI (Table I "Requests made").
    pub requests_made: u64,
    /// Transfers accepted into the mempool (Table I "Submitted").
    pub submitted: u64,
    /// Transfers committed on chain (Table I "Committed").
    pub committed: u64,
}

/// Runs one point of the registry's `fig6` / `fig7` / `table1` scenarios
/// (run the full sweeps with `figure fig6` etc., or
/// [`crate::registry::get`]`("fig6")` programmatically).
#[deprecated(
    since = "0.1.0",
    note = "use `ExperimentSpec::tendermint_throughput().input_rate(..).rtt_ms(..).seed(..)` with `scenarios::run`, or run the registered `fig6`/`fig7`/`table1` scenarios by name"
)]
#[allow(deprecated)]
pub fn tendermint_throughput(input_rate_rps: u64, rtt_ms: u64, seed: u64) -> TendermintRunResult {
    let outcome = run(&ExperimentSpec::tendermint_throughput()
        .input_rate(input_rate_rps)
        .rtt_ms(rtt_ms)
        .seed(seed));
    TendermintRunResult {
        input_rate_rps,
        throughput_tfps: outcome.tendermint_throughput_tfps(),
        avg_block_interval_secs: outcome.avg_block_interval_secs(),
        requests_made: outcome.requests_made(),
        submitted: outcome.submitted(),
        committed: outcome.committed(),
    }
}

/// One data point of the relayer throughput / completion experiments —
/// registered as the `fig8`, `fig9`, `fig10` and `fig11` scenarios in
/// [`crate::registry`] (`figure fig8` on the CLI).
#[deprecated(
    since = "0.1.0",
    note = "use `ExperimentSpec` + `scenarios::run` and read `ScenarioOutcome` accessors"
)]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelayerRunResult {
    /// The configured input rate in transfers per second.
    pub input_rate_rps: u64,
    /// Number of relayer instances serving the channel.
    pub relayer_count: usize,
    /// Emulated round-trip latency in milliseconds.
    pub rtt_ms: u64,
    /// Completed transfers per second over the window (Figs. 8/9).
    pub throughput_tfps: f64,
    /// Transfer completion breakdown at the end of the window (Figs. 10/11).
    pub completed: u64,
    /// Partially completed transfers (transfer + receive only).
    pub partial: u64,
    /// Transfers that were only initiated.
    pub initiated: u64,
    /// Transfers never committed to the source chain.
    pub not_committed: u64,
    /// Occurrences of redundant packet messages (multi-relayer effect).
    pub redundant_packet_errors: u64,
}

/// Runs one point of the registry's `fig8`–`fig11` scenarios (run the full
/// sweeps with `figure fig8` etc., or [`crate::registry::get`]`("fig8")`
/// programmatically).
#[deprecated(
    since = "0.1.0",
    note = "use `ExperimentSpec::relayer_throughput().input_rate(..).relayers(..).rtt_ms(..).measurement_blocks(..).seed(..)` with `scenarios::run`, or run the registered `fig8`/`fig9`/`fig10`/`fig11` scenarios by name"
)]
#[allow(deprecated)]
pub fn relayer_throughput(
    input_rate_rps: u64,
    relayer_count: usize,
    rtt_ms: u64,
    measurement_blocks: u64,
    seed: u64,
) -> RelayerRunResult {
    let outcome = run(&ExperimentSpec::relayer_throughput()
        .input_rate(input_rate_rps)
        .relayers(relayer_count)
        .rtt_ms(rtt_ms)
        .measurement_blocks(measurement_blocks)
        .seed(seed));
    RelayerRunResult {
        input_rate_rps,
        relayer_count,
        rtt_ms,
        throughput_tfps: outcome.throughput_tfps(),
        completed: outcome.completed(),
        partial: outcome.partial(),
        initiated: outcome.initiated(),
        not_committed: outcome.not_committed(),
        redundant_packet_errors: outcome.redundant_packet_errors(),
    }
}

/// The result of the latency-breakdown experiment and of each point of the
/// submission-strategy experiment — registered as the `fig12` and `fig13`
/// scenarios in [`crate::registry`] (`figure fig12` on the CLI).
#[deprecated(
    since = "0.1.0",
    note = "use `ExperimentSpec` + `scenarios::run` and read `ScenarioOutcome` accessors"
)]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyRunResult {
    /// Number of transfers submitted.
    pub transfers: u64,
    /// Number of block windows the submission was spread over.
    pub submission_blocks: u64,
    /// Completion latency of the whole batch in seconds.
    pub completion_latency_secs: f64,
    /// Duration of the transfer phase (steps 1–4) in seconds.
    pub transfer_phase_secs: f64,
    /// Duration of the receive phase (steps 5–9) in seconds.
    pub recv_phase_secs: f64,
    /// Duration of the acknowledgement phase (steps 10–13) in seconds.
    pub ack_phase_secs: f64,
    /// Time spent in the transfer data-pull step, in seconds.
    pub transfer_pull_secs: f64,
    /// Time spent in the receive data-pull step, in seconds.
    pub recv_pull_secs: f64,
    /// Fraction of the total time spent in RPC data pulls.
    pub data_pull_share: f64,
}

/// Runs one point of the registry's `fig12` / `fig13` scenarios (run the
/// full sweeps with `figure fig12` etc., or
/// [`crate::registry::get`]`("fig12")` programmatically).
#[deprecated(
    since = "0.1.0",
    note = "use `ExperimentSpec::latency().transfers(..).submission_blocks(..).rtt_ms(..).seed(..)` with `scenarios::run`, or run the registered `fig12`/`fig13` scenarios by name"
)]
#[allow(deprecated)]
pub fn latency_run(
    transfers: u64,
    submission_blocks: u64,
    rtt_ms: u64,
    seed: u64,
) -> LatencyRunResult {
    let outcome = run(&ExperimentSpec::latency()
        .transfers(transfers)
        .submission_blocks(submission_blocks)
        .rtt_ms(rtt_ms)
        .seed(seed));
    LatencyRunResult {
        transfers,
        submission_blocks,
        completion_latency_secs: outcome.completion_latency_secs(),
        transfer_phase_secs: outcome.transfer_phase_secs(),
        recv_phase_secs: outcome.recv_phase_secs(),
        ack_phase_secs: outcome.ack_phase_secs(),
        transfer_pull_secs: outcome.transfer_pull_secs(),
        recv_pull_secs: outcome.recv_pull_secs(),
        data_pull_share: outcome.data_pull_share(),
    }
}

/// Result of the WebSocket frame-limit experiment (§V) — registered as the
/// `websocket_limit` scenario in [`crate::registry`], superseded as a sweep
/// by `frame_limit_sweep` (`figure websocket_limit` on the CLI).
#[deprecated(
    since = "0.1.0",
    note = "use `ExperimentSpec` + `scenarios::run` and read `ScenarioOutcome` accessors"
)]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WebSocketLimitResult {
    /// Transfers requested.
    pub requested: u64,
    /// Transfers that completed despite the failure.
    pub completed: u64,
    /// Transfers stuck: committed on the source chain but neither relayed nor
    /// timed out.
    pub stuck: u64,
    /// How many blocks failed event collection.
    pub event_collection_failures: u64,
}

/// Runs one point of the registry's `websocket_limit` scenario; the
/// `frame_limit_sweep` scenario sweeps the same limit as a strategy knob
/// (run either with the `figure` CLI, or via [`crate::registry::get`]).
#[deprecated(
    since = "0.1.0",
    note = "use `ExperimentSpec::websocket_limit().transfers(..).seed(..)` with `scenarios::run`, or run the registered `websocket_limit`/`frame_limit_sweep` scenarios by name"
)]
#[allow(deprecated)]
pub fn websocket_limit_run(transfers: u64, seed: u64) -> WebSocketLimitResult {
    let outcome = run(&ExperimentSpec::websocket_limit()
        .transfers(transfers)
        .seed(seed));
    WebSocketLimitResult {
        requested: outcome.requests_made(),
        completed: outcome.completed(),
        stuck: outcome.stuck(),
        event_collection_failures: outcome.event_collection_failures(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_tendermint_run_commits_requested_transfers() {
        let outcome = run(&ExperimentSpec::tendermint_throughput()
            .input_rate(40)
            .rtt_ms(0)
            .seed(1));
        assert_eq!(outcome.requests_made(), 40 * 5 * 15);
        assert_eq!(outcome.submitted(), outcome.requests_made());
        assert!(outcome.committed() > 0);
        assert!(outcome.tendermint_throughput_tfps() > 0.0);
        assert!(outcome.avg_block_interval_secs() >= 5.0);
    }

    #[test]
    fn small_relayer_run_completes_transfers() {
        let outcome = run(&ExperimentSpec::relayer_throughput()
            .input_rate(20)
            .relayers(1)
            .rtt_ms(0)
            .measurement_blocks(6)
            .seed(1));
        assert!(
            outcome.completed() > 0,
            "completed = {}",
            outcome.completed()
        );
        assert!(outcome.throughput_tfps() > 0.0);
        assert_eq!(
            outcome.completed() + outcome.partial() + outcome.initiated() + outcome.not_committed(),
            20 * 5 * 6
        );
    }

    #[test]
    fn latency_run_reports_phase_breakdown() {
        let outcome = run(&ExperimentSpec::latency()
            .transfers(300)
            .submission_blocks(1)
            .rtt_ms(0)
            .seed(1));
        assert!(outcome.completion_latency_secs() > 0.0);
        assert!(outcome.recv_phase_secs() >= 0.0);
        assert!(outcome.data_pull_share() > 0.0 && outcome.data_pull_share() < 1.0);
    }

    #[test]
    fn splitting_submission_reduces_latency_for_large_batches() {
        let base = ExperimentSpec::latency().transfers(1_200).rtt_ms(0).seed(7);
        let single = run(&base.clone().submission_blocks(1));
        let split = run(&base.submission_blocks(4));
        assert!(
            split.completion_latency_secs() < single.completion_latency_secs(),
            "split {} vs single {}",
            split.completion_latency_secs(),
            single.completion_latency_secs()
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_the_spec_api() {
        let legacy = relayer_throughput(20, 1, 0, 4, 3);
        let outcome = run(&ExperimentSpec::relayer_throughput()
            .input_rate(20)
            .relayers(1)
            .rtt_ms(0)
            .measurement_blocks(4)
            .seed(3));
        assert_eq!(legacy.throughput_tfps, outcome.throughput_tfps());
        assert_eq!(legacy.completed, outcome.completed());
        assert_eq!(legacy.partial, outcome.partial());
        assert_eq!(legacy.not_committed, outcome.not_committed());
    }
}
