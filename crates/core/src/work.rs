//! Named, serializable view of the xcc-prof deterministic work counters.
//!
//! [`xcc_sim::prof`] accumulates raw per-run counters in positional slots so
//! the sim crate never has to know domain names. This module is the naming
//! surface: the runner snapshots the raw [`WorkCounters`] at the end of every
//! run and converts them into a [`WorkProfile`], labelling each RPC slot with
//! its [`RequestKind`] name. The profile is what `goldens --bench` writes
//! into `BENCH_golden.json` and what the bench compare mode exact-matches in
//! CI — counters are pure functions of the event sequence, so any drift is a
//! behaviour change, not noise (see docs/PERFORMANCE.md).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use xcc_rpc::cost::RequestKind;
use xcc_sim::prof::WorkCounters;

/// RPC-call counts that landed in overflow slots beyond the kinds named by
/// [`RequestKind::ALL`] are reported under this key. A non-zero value means a
/// new request kind exists that [`RequestKind::index`] does not map yet.
pub const RPC_OTHER_KEY: &str = "other";

/// The deterministic work profile of one experiment run.
///
/// Every field is an exact count of work performed, independent of host
/// speed: two runs of the same spec on any machines produce identical
/// profiles. Wall-clock time is deliberately *not* part of this struct —
/// the bench harness reports it separately, as a human-facing signal only.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WorkProfile {
    /// Events inserted into the simulation scheduler.
    pub events_scheduled: u64,
    /// Events popped from the simulation scheduler.
    pub events_popped: u64,
    /// RPC requests served, keyed by [`RequestKind::name`] (zero-count kinds
    /// are omitted so profiles stay compact and insertion-free).
    pub rpc_calls: BTreeMap<String, u64>,
    /// Transactions encoded to their wire form (cache misses only: a
    /// [`Tx::hash`](xcc_chain::tx::Tx::hash) served from the encode cache
    /// does not count).
    pub txs_encoded: u64,
    /// Transactions decoded from their wire form.
    pub txs_decoded: u64,
    /// Bytes produced by wire encoding (currently tx encodes).
    pub bytes_serialized: u64,
    /// Telemetry step/error records written across all relayers.
    pub telemetry_records: u64,
    /// Relayer wake events processed by the experiment driver.
    pub relayer_wakes: u64,
    /// Packet-clear scan visits (per packet considered by a clear pass).
    pub clear_scan_visits: u64,
}

impl WorkProfile {
    /// Names the positional slots of a raw counter snapshot.
    pub fn from_counters(counters: &WorkCounters) -> Self {
        let mut rpc_calls = BTreeMap::new();
        let mut named = 0u64;
        for kind in RequestKind::ALL {
            let count = counters.rpc_calls[kind.index()];
            named += count;
            if count > 0 {
                rpc_calls.insert(kind.name().to_string(), count);
            }
        }
        let overflow = counters.total_rpc_calls() - named;
        if overflow > 0 {
            rpc_calls.insert(RPC_OTHER_KEY.to_string(), overflow);
        }
        WorkProfile {
            events_scheduled: counters.events_scheduled,
            events_popped: counters.events_popped,
            rpc_calls,
            txs_encoded: counters.txs_encoded,
            txs_decoded: counters.txs_decoded,
            bytes_serialized: counters.bytes_serialized,
            telemetry_records: counters.telemetry_records,
            relayer_wakes: counters.relayer_wakes,
            clear_scan_visits: counters.clear_scan_visits,
        }
    }

    /// Total RPC calls across every kind.
    pub fn total_rpc_calls(&self) -> u64 {
        self.rpc_calls.values().sum()
    }

    /// The element-wise sum of two profiles — how `goldens --bench`
    /// aggregates per-scenario profiles into a fixture-set profile.
    pub fn merged(&self, other: &WorkProfile) -> WorkProfile {
        let mut rpc_calls = self.rpc_calls.clone();
        for (kind, count) in &other.rpc_calls {
            *rpc_calls.entry(kind.clone()).or_insert(0) += count;
        }
        WorkProfile {
            events_scheduled: self.events_scheduled + other.events_scheduled,
            events_popped: self.events_popped + other.events_popped,
            rpc_calls,
            txs_encoded: self.txs_encoded + other.txs_encoded,
            txs_decoded: self.txs_decoded + other.txs_decoded,
            bytes_serialized: self.bytes_serialized + other.bytes_serialized,
            telemetry_records: self.telemetry_records + other.telemetry_records,
            relayer_wakes: self.relayer_wakes + other.relayer_wakes,
            clear_scan_visits: self.clear_scan_visits + other.clear_scan_visits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naming_follows_request_kind_slots() {
        let mut counters = WorkCounters::default();
        counters.rpc_calls[RequestKind::Status.index()] = 7;
        counters.rpc_calls[RequestKind::BroadcastTxSync.index()] = 3;
        // An unmapped overflow slot surfaces as "other" instead of vanishing.
        counters.rpc_calls[xcc_sim::prof::RPC_KIND_SLOTS - 1] = 2;
        let profile = WorkProfile::from_counters(&counters);
        assert_eq!(profile.rpc_calls.get("status"), Some(&7));
        assert_eq!(profile.rpc_calls.get("broadcast_tx_sync"), Some(&3));
        assert_eq!(profile.rpc_calls.get(RPC_OTHER_KEY), Some(&2));
        assert_eq!(profile.rpc_calls.get("proof_query"), None);
        assert_eq!(profile.total_rpc_calls(), 12);
    }

    #[test]
    fn merge_sums_every_field() {
        let mut a = WorkProfile {
            events_scheduled: 10,
            ..WorkProfile::default()
        };
        a.rpc_calls.insert("status".to_string(), 4);
        let mut b = WorkProfile {
            events_scheduled: 5,
            ..WorkProfile::default()
        };
        b.rpc_calls.insert("status".to_string(), 1);
        b.rpc_calls.insert("proof_query".to_string(), 9);
        let m = a.merged(&b);
        assert_eq!(m.events_scheduled, 15);
        assert_eq!(m.rpc_calls.get("status"), Some(&5));
        assert_eq!(m.rpc_calls.get("proof_query"), Some(&9));
    }

    #[test]
    fn profiles_round_trip_through_json() {
        let mut p = WorkProfile {
            events_scheduled: 123,
            bytes_serialized: 9_999,
            ..WorkProfile::default()
        };
        p.rpc_calls.insert("status".to_string(), 4);
        let json = serde_json::to_string(&p).unwrap();
        let back: WorkProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
