//! The Benchmark module's Cross-chain Workload Connector.
//!
//! Submits cross-chain fungible-token transfer requests to the source chain
//! the way the paper's tool does: through the relayer CLI path, batching 100
//! `MsgTransfer` messages per transaction, using one account per transaction
//! within a block window to work around the per-account sequence limitation.
//!
//! In multi-channel deployments each transaction targets one channel, picked
//! by the deterministic (weighted) round-robin pattern of
//! [`WorkloadConfig::channel_pattern`] — uniform rotation by default, or a
//! skewed load for the `channel_contention` scenario.

use std::collections::BTreeMap;

use xcc_chain::account::AccountId;
use xcc_chain::msg::Msg;
use xcc_chain::tx::Tx;
use xcc_ibc::height::Height;
use xcc_ibc::module::TransferParams;
use xcc_rpc::endpoint::RpcEndpoint;
use xcc_sim::{SimDuration, SimTime};
use xcc_tendermint::hash::Hash;

use crate::config::WorkloadConfig;
use crate::topology::HopRoute;
use xcc_ibc::events as ibc_events;
use xcc_relayer::relayer::RelayPath;

/// The record of one submitted (or attempted) transfer transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmissionRecord {
    /// Hash of the transaction (present even if the broadcast failed).
    pub tx_hash: Hash,
    /// When the CLI broadcast the transaction.
    pub broadcast_at: SimTime,
    /// Number of transfer messages inside.
    pub transfers: usize,
    /// Index of the channel the transaction's transfers target.
    pub channel: usize,
    /// Whether `broadcast_tx_sync` accepted it into the mempool.
    pub accepted: bool,
    /// The error message when the broadcast was rejected.
    pub error: Option<String>,
}

/// Aggregate submission statistics (the "Requests made / Submitted" columns
/// of Table I).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmissionStats {
    /// Transfers the workload asked the CLI to make.
    pub requests_made: u64,
    /// Transfers accepted into the source chain's mempool.
    pub submitted: u64,
    /// Transfers whose broadcast was rejected.
    pub rejected: u64,
}

/// The workload generator bound to the relayer CLI / source-chain RPCs.
///
/// In topology deployments a channel's packets originate on that channel's
/// own source chain, so the connector holds one RPC endpoint per distinct
/// source chain and routes each transaction through the endpoint of the
/// targeted channel. The single-CLI cost model is unchanged: one sequential
/// CLI process signs and broadcasts every transaction, whichever chain it
/// lands on.
pub struct WorkloadConnector {
    config: WorkloadConfig,
    paths: Vec<RelayPath>,
    /// The channel-targeting pattern: transaction `i` targets
    /// `pattern[i % pattern.len()]`.
    channel_pattern: Vec<usize>,
    next_tx: usize,
    /// One RPC endpoint per distinct source chain; `path_rpc[channel]`
    /// indexes the endpoint serving that channel's source chain.
    rpcs: Vec<RpcEndpoint>,
    path_rpc: Vec<usize>,
    users: Vec<AccountId>,
    next_user: usize,
    /// The fee denom of each endpoint's chain, parallel to `rpcs`.
    fee_denoms: Vec<String>,
    /// The CLI is a single sequential process; this is when it next becomes
    /// free.
    cli_free: SimTime,
    remaining: u64,
    windows_submitted: u64,
    records: Vec<SubmissionRecord>,
    stats: SubmissionStats,
    /// Locally cached account sequences, refreshed through the RPC; keyed by
    /// `(endpoint index, account)` since the same account name exists on
    /// every chain.
    cached_seqs: BTreeMap<(usize, AccountId), u64>,
}

impl WorkloadConnector {
    /// Creates a workload connector for a single-channel deployment (the
    /// paper's testbed), submitting through `rpc` (a full node of the source
    /// chain).
    pub fn new(
        config: WorkloadConfig,
        path: RelayPath,
        rpc: RpcEndpoint,
        user_count: usize,
    ) -> Self {
        Self::with_paths(config, vec![path], rpc, user_count)
    }

    /// Creates a workload connector targeting `paths` (one per open
    /// channel, in channel order) according to the config's channel pattern.
    ///
    /// # Panics
    ///
    /// Panics when `paths` is empty — the workload needs at least one
    /// channel to target.
    pub fn with_paths(
        config: WorkloadConfig,
        paths: Vec<RelayPath>,
        rpc: RpcEndpoint,
        user_count: usize,
    ) -> Self {
        let path_rpc = vec![0; paths.len()];
        Self::for_topology(config, paths, path_rpc, vec![rpc], user_count)
    }

    /// Creates a workload connector for a topology deployment: `rpcs` holds
    /// one endpoint per distinct source chain and `path_rpc[channel]` names
    /// the endpoint whose chain is that channel's packet source.
    ///
    /// # Panics
    ///
    /// Panics when `paths` is empty, when `path_rpc` is not parallel to
    /// `paths`, or when an entry of `path_rpc` is out of `rpcs`' range.
    pub fn for_topology(
        config: WorkloadConfig,
        paths: Vec<RelayPath>,
        path_rpc: Vec<usize>,
        rpcs: Vec<RpcEndpoint>,
        user_count: usize,
    ) -> Self {
        assert!(
            !paths.is_empty(),
            "the workload targets at least one channel"
        );
        assert_eq!(
            paths.len(),
            path_rpc.len(),
            "path_rpc maps every channel to its source-chain endpoint"
        );
        assert!(
            path_rpc.iter().all(|&r| r < rpcs.len()),
            "every path_rpc entry indexes into rpcs"
        );
        let fee_denoms: Vec<String> = rpcs
            .iter()
            .map(|rpc| rpc.chain().borrow().app().fee_denom().to_string())
            .collect();
        let channel_pattern = config.channel_pattern(paths.len());
        WorkloadConnector {
            remaining: config.total_transfers,
            config,
            paths,
            channel_pattern,
            next_tx: 0,
            rpcs,
            path_rpc,
            users: (0..user_count.max(1))
                .map(|i| AccountId::new(format!("user-{i}")))
                .collect(),
            next_user: 0,
            fee_denoms,
            cli_free: SimTime::ZERO,
            windows_submitted: 0,
            records: Vec::new(),
            stats: SubmissionStats::default(),
            cached_seqs: BTreeMap::new(),
        }
    }

    /// Whether all configured submission windows have been issued.
    pub fn finished_submitting(&self) -> bool {
        self.windows_submitted >= self.config.submission_blocks || self.remaining == 0
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> SubmissionStats {
        self.stats
    }

    /// The per-transaction submission log.
    pub fn records(&self) -> &[SubmissionRecord] {
        &self.records
    }

    /// Submits the next window's worth of transfers, starting no earlier than
    /// `window_start`. `dest_height` is the destination chain's current
    /// height, used to derive packet timeouts.
    pub fn submit_window(&mut self, window_start: SimTime, dest_height: u64) {
        if self.finished_submitting() {
            return;
        }
        self.windows_submitted += 1;
        let mut to_submit = self.config.transfers_per_window().min(self.remaining);
        let timeout_height = if self.config.timeout_blocks == 0 {
            Height::ZERO
        } else {
            Height::at(dest_height + self.config.timeout_blocks)
        };

        let mut t = self.cli_free.max(window_start);
        while to_submit > 0 {
            let batch = (self.config.transfers_per_tx as u64).min(to_submit) as usize;
            to_submit -= batch as u64;
            self.remaining -= batch as u64;

            let user = self.users[self.next_user % self.users.len()].clone();
            self.next_user += 1;
            let channel = self.channel_pattern[self.next_tx % self.channel_pattern.len()];
            self.next_tx += 1;
            let path = &self.paths[channel];
            let endpoint = self.path_rpc[channel];
            let fee_denom = self.fee_denoms[endpoint].clone();

            // The CLI queries the account's committed sequence before signing,
            // exactly like `hermes tx ft-transfer`. A transaction still waiting
            // in the mempool is invisible to this query, which is what causes
            // the account-sequence errors the paper describes (§V) when an
            // account is reused before its previous transaction commits.
            let seq_resp = self.rpcs[endpoint].account_sequence(t, &user);
            t = seq_resp.ready_at;
            let sequence = seq_resp.value;
            self.cached_seqs.insert((endpoint, user.clone()), sequence);

            // Building and signing the transaction costs CLI time.
            t += self.config.cli_cost_per_tx + SimDuration::from_micros(40) * batch as u64;

            let msgs: Vec<Msg> = (0..batch)
                .map(|_| {
                    Msg::IbcTransfer(TransferParams {
                        source_port: path.port.clone(),
                        source_channel: path.src_channel.clone(),
                        denom: fee_denom.clone(),
                        amount: 1,
                        sender: user.to_string(),
                        receiver: "user-0".to_string(),
                        timeout_height,
                        timeout_timestamp: SimTime::ZERO,
                    })
                })
                .collect();
            let tx = Tx::new(user.clone(), sequence, msgs, &fee_denom);
            let tx_hash = tx.hash();
            let resp = self.rpcs[endpoint].broadcast_tx_sync(t, &tx);
            t = resp.ready_at;

            self.stats.requests_made += batch as u64;
            match resp.value {
                Ok(_) => {
                    self.stats.submitted += batch as u64;
                    self.cached_seqs
                        .insert((endpoint, user.clone()), sequence + 1);
                    self.records.push(SubmissionRecord {
                        tx_hash,
                        broadcast_at: t,
                        transfers: batch,
                        channel,
                        accepted: true,
                        error: None,
                    });
                }
                Err(err) => {
                    self.stats.rejected += batch as u64;
                    self.records.push(SubmissionRecord {
                        tx_hash,
                        broadcast_at: t,
                        transfers: batch,
                        channel,
                        accepted: false,
                        error: Some(err.to_string()),
                    });
                }
            }
        }
        self.cli_free = t;
    }
}

/// The record of one forwarded (second-leg) transfer transaction of a
/// multi-hop route.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardRecord {
    /// Index of the hop route (into the run's active route list).
    pub route: usize,
    /// Hash of the second-leg transaction.
    pub tx_hash: Hash,
    /// Commit time of the first-leg acknowledgement that triggered it.
    pub triggered_at: SimTime,
    /// When the forwarder CLI broadcast the second-leg transaction.
    pub submitted_at: SimTime,
    /// Number of transfer messages inside.
    pub transfers: usize,
    /// Global channel index of the second-leg path.
    pub channel: usize,
    /// Whether `broadcast_tx_sync` accepted it into the mempool.
    pub accepted: bool,
    /// The error message when the broadcast was rejected.
    pub error: Option<String>,
}

/// The multi-hop forwarder: chains a second IBC transfer leg onto every
/// completed first leg of the workload's hop routes.
///
/// The forwarder models the paper-style application-level relaying service a
/// hub operator runs: it watches the first-leg source chain for packet
/// acknowledgements and, the moment an ack commits, submits a fresh
/// fee-denom transfer of equal size on the second leg's source chain (the
/// hub). It deliberately does **not** chain vouchers — the hub forwards out
/// of its own liquidity, which keeps the two legs independent IBC transfers
/// and makes per-hop latency separable in analysis.
///
/// Like the workload CLI it is one sequential process with its own
/// virtual-time lane (`cli_free`); it shares the `user-<i>` accounts, which
/// is safe because its transactions target chains the workload's direct
/// traffic does not originate on in hop-plan scenarios.
pub struct HopForwarder {
    /// Active routes (in-range entries of the workload's hop plan).
    routes: Vec<HopRoute>,
    paths: Vec<RelayPath>,
    /// Per global path, the chain index its packets originate on.
    path_src: Vec<usize>,
    /// One endpoint per second-leg source chain, keyed by chain index.
    rpcs: BTreeMap<usize, RpcEndpoint>,
    fee_denoms: BTreeMap<usize, String>,
    users: Vec<AccountId>,
    next_user: usize,
    transfers_per_tx: usize,
    cli_cost_per_tx: SimDuration,
    cli_free: SimTime,
    records: Vec<ForwardRecord>,
    triggered_per_route: Vec<u64>,
    accepted_per_route: Vec<u64>,
    stats: SubmissionStats,
}

impl HopForwarder {
    /// Creates a forwarder for `routes`. `path_src` maps every global path
    /// to its source-chain index and `rpcs` holds one endpoint per
    /// second-leg source chain (keyed by chain index). An empty route list
    /// produces an inert forwarder that performs no work at all.
    pub fn new(
        config: &WorkloadConfig,
        routes: Vec<HopRoute>,
        paths: Vec<RelayPath>,
        path_src: Vec<usize>,
        rpcs: BTreeMap<usize, RpcEndpoint>,
        user_count: usize,
    ) -> Self {
        let fee_denoms = rpcs
            .iter()
            .map(|(chain, rpc)| {
                let denom = rpc.chain().borrow().app().fee_denom().to_string();
                (*chain, denom)
            })
            .collect();
        let route_count = routes.len();
        HopForwarder {
            routes,
            paths,
            path_src,
            rpcs,
            fee_denoms,
            users: (0..user_count.max(1))
                .map(|i| AccountId::new(format!("user-{i}")))
                .collect(),
            next_user: 0,
            transfers_per_tx: config.transfers_per_tx,
            cli_cost_per_tx: config.cli_cost_per_tx,
            cli_free: SimTime::ZERO,
            records: Vec::new(),
            triggered_per_route: vec![0; route_count],
            accepted_per_route: vec![0; route_count],
            stats: SubmissionStats::default(),
        }
    }

    /// The active hop routes.
    pub fn routes(&self) -> &[HopRoute] {
        &self.routes
    }

    /// The per-transaction forward log.
    pub fn records(&self) -> &[ForwardRecord] {
        &self.records
    }

    /// Aggregate second-leg submission statistics.
    pub fn stats(&self) -> SubmissionStats {
        self.stats
    }

    /// First-leg acknowledgements observed for route `route`, i.e. the
    /// number of second-leg transfers that should eventually exist.
    pub fn triggered_transfers(&self, route: usize) -> u64 {
        self.triggered_per_route.get(route).copied().unwrap_or(0)
    }

    /// Second-leg transfers accepted into a mempool for route `route`.
    pub fn accepted_transfers(&self, route: usize) -> u64 {
        self.accepted_per_route.get(route).copied().unwrap_or(0)
    }

    /// Reacts to a block committing on chain `chain_idx`: scans the block
    /// for first-leg `ACK_PACKET` events of the active routes and submits
    /// one second-leg transfer per acknowledged packet (batched like the
    /// workload CLI). A forwarder with no routes returns immediately.
    pub fn on_block_commit(
        &mut self,
        chain_idx: usize,
        height: u64,
        committed_at: SimTime,
        chain: &xcc_chain::chain::SharedChain,
    ) {
        if self.routes.is_empty() {
            return;
        }
        let mut acked: Vec<u64> = vec![0; self.routes.len()];
        {
            let chain = chain.borrow();
            let Some(block) = chain.block_at(height) else {
                return;
            };
            for result in &block.results {
                if !result.is_ok() {
                    continue;
                }
                for event in &result.events {
                    if event.kind != ibc_events::ACK_PACKET {
                        continue;
                    }
                    for (ri, route) in self.routes.iter().enumerate() {
                        if self.path_src[route.first_leg] != chain_idx {
                            continue;
                        }
                        let path = &self.paths[route.first_leg];
                        if ibc_events::is_for_channel(event, &path.port, &path.src_channel) {
                            acked[ri] += 1;
                            break;
                        }
                    }
                }
            }
        }

        let mut t = self.cli_free.max(committed_at);
        let mut submitted_any = false;
        for (ri, &route_acks) in acked.iter().enumerate() {
            let mut remaining = route_acks;
            if remaining == 0 {
                continue;
            }
            self.triggered_per_route[ri] += remaining;
            let route = self.routes[ri];
            let second = route.second_leg;
            let src = self.path_src[second];
            let Some(fee_denom) = self.fee_denoms.get(&src).cloned() else {
                continue;
            };
            while remaining > 0 {
                let batch = (self.transfers_per_tx as u64).min(remaining) as usize;
                remaining -= batch as u64;
                submitted_any = true;

                let user = self.users[self.next_user % self.users.len()].clone();
                self.next_user += 1;
                let path = self.paths[second].clone();
                let Some(rpc) = self.rpcs.get_mut(&src) else {
                    break;
                };
                let seq_resp = rpc.account_sequence(t, &user);
                t = seq_resp.ready_at;
                let sequence = seq_resp.value;
                t += self.cli_cost_per_tx + SimDuration::from_micros(40) * batch as u64;

                let msgs: Vec<Msg> = (0..batch)
                    .map(|_| {
                        Msg::IbcTransfer(TransferParams {
                            source_port: path.port.clone(),
                            source_channel: path.src_channel.clone(),
                            denom: fee_denom.clone(),
                            amount: 1,
                            sender: user.to_string(),
                            receiver: "user-0".to_string(),
                            timeout_height: Height::ZERO,
                            timeout_timestamp: SimTime::ZERO,
                        })
                    })
                    .collect();
                let tx = Tx::new(user.clone(), sequence, msgs, &fee_denom);
                let tx_hash = tx.hash();
                let resp = rpc.broadcast_tx_sync(t, &tx);
                t = resp.ready_at;

                self.stats.requests_made += batch as u64;
                let accepted = resp.value.is_ok();
                let error = resp.value.err().map(|e| e.to_string());
                if accepted {
                    self.stats.submitted += batch as u64;
                    self.accepted_per_route[ri] += batch as u64;
                } else {
                    self.stats.rejected += batch as u64;
                }
                self.records.push(ForwardRecord {
                    route: ri,
                    tx_hash,
                    triggered_at: committed_at,
                    submitted_at: t,
                    transfers: batch,
                    channel: second,
                    accepted,
                    error,
                });
            }
        }
        if submitted_any {
            self.cli_free = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeploymentConfig;
    use crate::testnet::{make_rpc, Testnet};

    fn small_testnet(users: usize) -> (Testnet, RpcEndpoint) {
        let deployment = DeploymentConfig {
            user_accounts: users,
            relayer_count: 1,
            network_rtt_ms: 0,
            ..DeploymentConfig::default()
        };
        let testnet = Testnet::build(&deployment);
        let rpc = make_rpc(&testnet.chain_a, &deployment, &testnet.rng, "workload");
        (testnet, rpc)
    }

    #[test]
    fn submits_batches_of_one_hundred_transfers() {
        let (testnet, rpc) = small_testnet(8);
        let config = WorkloadConfig {
            total_transfers: 300,
            submission_blocks: 1,
            ..WorkloadConfig::default()
        };
        let mut workload = WorkloadConnector::new(config, testnet.path.clone(), rpc, 8);
        workload.submit_window(SimTime::from_secs(5), 1);
        assert!(workload.finished_submitting());
        let stats = workload.stats();
        assert_eq!(stats.requests_made, 300);
        assert_eq!(stats.submitted, 300);
        assert_eq!(stats.rejected, 0);
        assert_eq!(workload.records().len(), 3);
        assert!(workload.records().iter().all(|r| r.accepted));
        // The transactions actually sit in the source chain's mempool.
        assert_eq!(testnet.chain_a.borrow().mempool_size(), 3);
    }

    #[test]
    fn reusing_an_account_within_a_window_hits_sequence_mismatch() {
        let (testnet, rpc) = small_testnet(1);
        let config = WorkloadConfig {
            total_transfers: 200,
            submission_blocks: 1,
            ..WorkloadConfig::default()
        };
        // Only one user for two transactions in the same window: the second
        // broadcast reuses the committed sequence and is rejected.
        let mut workload = WorkloadConnector::new(config, testnet.path.clone(), rpc, 1);
        workload.submit_window(SimTime::from_secs(5), 1);
        let stats = workload.stats();
        assert_eq!(stats.requests_made, 200);
        assert_eq!(stats.submitted, 100);
        assert_eq!(stats.rejected, 100);
        let error = workload.records()[1].error.as_ref().unwrap();
        assert!(error.contains("account sequence mismatch"), "{error}");
        drop(testnet);
    }

    #[test]
    fn weighted_pattern_targets_channels_deterministically() {
        let deployment = DeploymentConfig {
            user_accounts: 8,
            relayer_count: 1,
            channel_count: 2,
            network_rtt_ms: 0,
            ..DeploymentConfig::default()
        };
        let testnet = Testnet::build(&deployment);
        let rpc = make_rpc(&testnet.chain_a, &deployment, &testnet.rng, "workload");
        let config = WorkloadConfig {
            total_transfers: 600,
            submission_blocks: 1,
            channel_weights: vec![2, 1],
            ..WorkloadConfig::default()
        };
        let mut workload = WorkloadConnector::with_paths(config, testnet.paths.clone(), rpc, 8);
        workload.submit_window(SimTime::from_secs(5), 1);
        // Six transactions, pattern [0, 0, 1] → channels 0,0,1,0,0,1.
        let channels: Vec<usize> = workload.records().iter().map(|r| r.channel).collect();
        assert_eq!(channels, vec![0, 0, 1, 0, 0, 1]);
        assert_eq!(workload.stats().submitted, 600);
    }

    #[test]
    fn spreads_submission_over_multiple_windows() {
        let (testnet, rpc) = small_testnet(4);
        let config = WorkloadConfig {
            total_transfers: 400,
            submission_blocks: 4,
            ..WorkloadConfig::default()
        };
        let mut workload = WorkloadConnector::new(config, testnet.path.clone(), rpc, 4);
        for w in 0..4 {
            assert!(!workload.finished_submitting());
            workload.submit_window(SimTime::from_secs(5 * (w + 1)), 1);
        }
        assert!(workload.finished_submitting());
        assert_eq!(workload.stats().requests_made, 400);
        assert_eq!(workload.records().len(), 4);
        drop(testnet);
    }
}
