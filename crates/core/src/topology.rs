//! The testnet topology graph: chains as nodes, relay edges between them.
//!
//! The paper's testbed is a hard-wired chain pair; production IBC is a mesh
//! (a hub chain forwarding packets between dozens of zones). A [`Topology`]
//! on [`DeploymentConfig`](crate::config::DeploymentConfig) describes the
//! graph declaratively: named chains plus directed [`TopologyEdge`]s, each of
//! which the testnet opens as a full client/connection/channel stack and the
//! fleet planner staffs with relayer processes.
//!
//! The **default** topology is the empty sentinel: no chains, no edges. It
//! resolves to the legacy two-chain line derived from the deployment's
//! `source_chain_id`/`destination_chain_id`/`channel_count` knobs, so every
//! pre-topology spec JSON (where the field is simply missing) parses to a
//! configuration that behaves bit-identically to the old pair path.
//!
//! Multi-hop routing is described separately by [`HopRoute`]s on
//! [`WorkloadConfig`](crate::config::WorkloadConfig): a route names a first-
//! and second-leg channel (global channel indices, edge-major), and the
//! runner submits the second leg once the first leg's acknowledgement lands.

use serde::{de_field, Deserialize, Error, Serialize, Value};
use std::fmt;
use std::str::FromStr;
use xcc_ibc::ids::ChainId;

/// One directed relay edge of the topology: packets flow `src → dst` over
/// `channels` parallel channels (0 = inherit the deployment's
/// `channel_count`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyEdge {
    /// Name of the chain transfers originate from (must appear in
    /// [`Topology::chains`]).
    pub src: String,
    /// Name of the chain transfers are delivered to.
    pub dst: String,
    /// Parallel channels opened on this edge; `0` inherits the deployment's
    /// `channel_count` knob.
    pub channels: usize,
}

impl TopologyEdge {
    /// An edge between two named chains inheriting the deployment channel
    /// count.
    pub fn new(src: impl Into<String>, dst: impl Into<String>) -> Self {
        TopologyEdge {
            src: src.into(),
            dst: dst.into(),
            channels: 0,
        }
    }
}

impl Serialize for TopologyEdge {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("src".to_string(), self.src.to_value()),
            ("dst".to_string(), self.dst.to_value()),
            ("channels".to_string(), self.channels.to_value()),
        ])
    }
}

impl Deserialize for TopologyEdge {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom("expected object for TopologyEdge"))?;
        Ok(TopologyEdge {
            src: de_field(map, "src")?,
            dst: de_field(map, "dst")?,
            channels: de_field(map, "channels")?,
        })
    }
}

/// The deployment's chain graph. The default (empty) topology is a sentinel
/// for the legacy two-chain line; see the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Topology {
    /// Chain names in index order (index 0 is the primary chain: it anchors
    /// measurement windows and drives the workload submission clock).
    pub chains: Vec<String>,
    /// Directed relay edges; the global channel index space is edge-major in
    /// this order.
    pub edges: Vec<TopologyEdge>,
}

impl Topology {
    /// The legacy-pair sentinel (same as `Topology::default()`).
    pub fn pair() -> Self {
        Topology::default()
    }

    /// A line of `n` chains `ibc-0 → ibc-1 → … → ibc-{n-1}` with one edge
    /// between each consecutive pair. `line(2)` is the explicit spelling of
    /// the default pair.
    pub fn line(n: usize) -> Self {
        let chains: Vec<String> = (0..n).map(|i| format!("ibc-{i}")).collect();
        let edges = (0..n.saturating_sub(1))
            .map(|i| TopologyEdge::new(format!("ibc-{i}"), format!("ibc-{}", i + 1)))
            .collect();
        Topology { chains, edges }
    }

    /// A hub with `spokes` leaf chains. Chain 0 is `ibc-hub` (the primary /
    /// measurement chain); spokes are `ibc-1 … ibc-{spokes}`. Edges are
    /// edge-major: first every inbound `spoke → hub` edge (channels
    /// `0..spokes`), then every outbound `hub → spoke` edge (channels
    /// `spokes..2*spokes`), so [`Topology::hub_and_spoke_routes`] can name
    /// the channel pairs of a spoke→hub→spoke hop plan.
    pub fn hub_and_spoke(spokes: usize) -> Self {
        let mut chains = vec!["ibc-hub".to_string()];
        chains.extend((1..=spokes).map(|i| format!("ibc-{i}")));
        let mut edges: Vec<TopologyEdge> = (1..=spokes)
            .map(|i| TopologyEdge::new(format!("ibc-{i}"), "ibc-hub"))
            .collect();
        edges.extend((1..=spokes).map(|i| TopologyEdge::new("ibc-hub", format!("ibc-{i}"))));
        Topology { chains, edges }
    }

    /// The hop plan matching [`Topology::hub_and_spoke`]: each spoke sends
    /// into the hub on its inbound channel and the hub forwards to the next
    /// spoke (round-robin) on that spoke's outbound channel.
    pub fn hub_and_spoke_routes(spokes: usize) -> Vec<HopRoute> {
        (0..spokes)
            .map(|i| HopRoute {
                first_leg: i,
                second_leg: spokes + ((i + 1) % spokes.max(1)),
            })
            .collect()
    }

    /// A full mesh over `n` chains `ibc-0 … ibc-{n-1}`: one directed edge
    /// per ordered pair, row-major (`(0,1), (0,2), …, (1,0), (1,2), …`).
    pub fn full_mesh(n: usize) -> Self {
        let chains: Vec<String> = (0..n).map(|i| format!("ibc-{i}")).collect();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    edges.push(TopologyEdge::new(format!("ibc-{i}"), format!("ibc-{j}")));
                }
            }
        }
        Topology { chains, edges }
    }

    /// Whether this is the legacy-pair sentinel.
    pub fn is_legacy_pair(&self) -> bool {
        self.chains.is_empty()
    }

    /// Compact label used in sweep point names and fixture names: `pair`
    /// for the sentinel, `line-n`/`hub-n`/`mesh-n` for the presets, and
    /// `custom-{chains}x{edges}` otherwise.
    pub fn label(&self) -> String {
        let n = self.chains.len();
        if self.is_legacy_pair() {
            return "pair".to_string();
        }
        if *self == Topology::line(n) {
            return format!("line-{n}");
        }
        if n >= 1 && *self == Topology::hub_and_spoke(n - 1) {
            return format!("hub-{}", n - 1);
        }
        if *self == Topology::full_mesh(n) {
            return format!("mesh-{n}");
        }
        format!("custom-{n}x{}", self.edges.len())
    }

    /// Resolves chain names to indices and fills in inherited channel
    /// counts. The sentinel resolves to `default_src → default_dst` with
    /// `default_channels` channels; explicit topologies are validated
    /// (ICS-24 chain ids, unique names, known endpoints, no self-loops,
    /// at least one edge).
    pub fn resolve(
        &self,
        default_src: &str,
        default_dst: &str,
        default_channels: usize,
    ) -> Result<ResolvedTopology, TopologyError> {
        let channels = default_channels.max(1);
        if self.is_legacy_pair() {
            return ResolvedTopology::from_names(
                &[default_src.to_string(), default_dst.to_string()],
                &[TopologyEdge {
                    src: default_src.to_string(),
                    dst: default_dst.to_string(),
                    channels,
                }],
                channels,
            );
        }
        if self.chains.len() < 2 {
            return Err(TopologyError::TooFewChains {
                count: self.chains.len(),
            });
        }
        if self.edges.is_empty() {
            return Err(TopologyError::NoEdges);
        }
        ResolvedTopology::from_names(&self.chains, &self.edges, channels)
    }
}

impl Serialize for Topology {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("chains".to_string(), self.chains.to_value()),
            ("edges".to_string(), self.edges.to_value()),
        ])
    }
}

impl Deserialize for Topology {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom("expected object for Topology"))?;
        Ok(Topology {
            chains: de_field(map, "chains")?,
            edges: de_field(map, "edges")?,
        })
    }
}

/// One multi-hop route of the workload: transfers submitted on channel
/// `first_leg` are forwarded on channel `second_leg` once their
/// acknowledgement lands on the first leg's source chain. Channel indices
/// are global (edge-major). Routes whose channels are out of range for the
/// resolved topology are ignored, so a hop plan survives being swept against
/// a pair baseline the same way an out-of-range fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRoute {
    /// Global channel index of the first leg (src → hub).
    pub first_leg: usize,
    /// Global channel index of the second leg (hub → dst).
    pub second_leg: usize,
}

impl Serialize for HopRoute {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("first_leg".to_string(), self.first_leg.to_value()),
            ("second_leg".to_string(), self.second_leg.to_value()),
        ])
    }
}

impl Deserialize for HopRoute {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom("expected object for HopRoute"))?;
        Ok(HopRoute {
            first_leg: de_field(map, "first_leg")?,
            second_leg: de_field(map, "second_leg")?,
        })
    }
}

/// A validated topology with chain names resolved to indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedTopology {
    /// Chain identifiers in index order.
    pub chains: Vec<ChainId>,
    /// Directed edges as chain-index pairs with concrete channel counts.
    pub edges: Vec<ResolvedEdge>,
}

/// One resolved edge: chain indices plus the concrete channel count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedEdge {
    /// Index of the source chain in [`ResolvedTopology::chains`].
    pub src: usize,
    /// Index of the destination chain.
    pub dst: usize,
    /// Number of parallel channels opened on this edge (≥ 1).
    pub channels: usize,
}

impl ResolvedTopology {
    fn from_names(
        chains: &[String],
        edges: &[TopologyEdge],
        default_channels: usize,
    ) -> Result<Self, TopologyError> {
        let mut ids = Vec::with_capacity(chains.len());
        for name in chains {
            let id = ChainId::from_str(name)
                .map_err(|_| TopologyError::InvalidChainId { name: name.clone() })?;
            if ids.contains(&id) {
                return Err(TopologyError::DuplicateChain { name: name.clone() });
            }
            ids.push(id);
        }
        let index_of = |name: &str| chains.iter().position(|c| c == name);
        let mut resolved = Vec::with_capacity(edges.len());
        for (i, edge) in edges.iter().enumerate() {
            let src = index_of(&edge.src).ok_or_else(|| TopologyError::UnknownChain {
                edge: i,
                name: edge.src.clone(),
            })?;
            let dst = index_of(&edge.dst).ok_or_else(|| TopologyError::UnknownChain {
                edge: i,
                name: edge.dst.clone(),
            })?;
            if src == dst {
                return Err(TopologyError::SelfLoop { edge: i });
            }
            resolved.push(ResolvedEdge {
                src,
                dst,
                channels: if edge.channels == 0 {
                    default_channels
                } else {
                    edge.channels
                },
            });
        }
        Ok(ResolvedTopology {
            chains: ids,
            edges: resolved,
        })
    }

    /// Total number of channels across all edges (the size of the global
    /// channel index space).
    pub fn total_channels(&self) -> usize {
        self.edges.iter().map(|e| e.channels).sum()
    }

    /// The global channel index of the first channel of edge `edge`
    /// (edge-major numbering).
    pub fn channel_offset(&self, edge: usize) -> usize {
        self.edges[..edge].iter().map(|e| e.channels).sum()
    }
}

/// Why a [`Topology`] failed to resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A chain name is not a valid ICS-24 identifier.
    InvalidChainId {
        /// The rejected name.
        name: String,
    },
    /// The same chain name appears twice.
    DuplicateChain {
        /// The duplicated name.
        name: String,
    },
    /// An explicit topology names fewer than two chains.
    TooFewChains {
        /// How many chains it names.
        count: usize,
    },
    /// An explicit topology has no edges to relay over.
    NoEdges,
    /// An edge references a chain that is not in the node list.
    UnknownChain {
        /// Index of the offending edge.
        edge: usize,
        /// The unknown chain name.
        name: String,
    },
    /// An edge connects a chain to itself.
    SelfLoop {
        /// Index of the offending edge.
        edge: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidChainId { name } => {
                write!(f, "chain name {name:?} is not a valid ICS-24 identifier")
            }
            TopologyError::DuplicateChain { name } => {
                write!(f, "chain name {name:?} appears more than once")
            }
            TopologyError::TooFewChains { count } => {
                write!(f, "a topology needs at least 2 chains, got {count}")
            }
            TopologyError::NoEdges => write!(f, "a topology needs at least one edge"),
            TopologyError::UnknownChain { edge, name } => {
                write!(f, "edge {edge} references unknown chain {name:?}")
            }
            TopologyError::SelfLoop { edge } => {
                write!(f, "edge {edge} connects a chain to itself")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_default_is_the_legacy_pair_sentinel() {
        let topo = Topology::default();
        assert!(topo.is_legacy_pair());
        assert_eq!(topo.label(), "pair");
        let resolved = topo.resolve("ibc-0", "ibc-1", 3).unwrap();
        assert_eq!(resolved.chains.len(), 2);
        assert_eq!(resolved.chains[0].as_str(), "ibc-0");
        assert_eq!(resolved.chains[1].as_str(), "ibc-1");
        assert_eq!(
            resolved.edges,
            vec![ResolvedEdge {
                src: 0,
                dst: 1,
                channels: 3
            }]
        );
    }

    #[test]
    fn line_two_resolves_like_the_default_pair() {
        let explicit = Topology::line(2).resolve("ibc-0", "ibc-1", 1).unwrap();
        let sentinel = Topology::default().resolve("ibc-0", "ibc-1", 1).unwrap();
        assert_eq!(explicit, sentinel);
        assert_eq!(Topology::line(2).label(), "line-2");
    }

    #[test]
    fn hub_and_spoke_is_edge_major_inbound_then_outbound() {
        let topo = Topology::hub_and_spoke(3);
        assert_eq!(topo.label(), "hub-3");
        assert_eq!(topo.chains[0], "ibc-hub");
        let resolved = topo.resolve("ibc-0", "ibc-1", 1).unwrap();
        assert_eq!(resolved.chains.len(), 4);
        assert_eq!(resolved.edges.len(), 6);
        // Inbound spoke→hub edges first…
        for (i, edge) in resolved.edges[..3].iter().enumerate() {
            assert_eq!((edge.src, edge.dst), (i + 1, 0));
        }
        // …then outbound hub→spoke edges.
        for (i, edge) in resolved.edges[3..].iter().enumerate() {
            assert_eq!((edge.src, edge.dst), (0, i + 1));
        }
        assert_eq!(resolved.total_channels(), 6);
        assert_eq!(resolved.channel_offset(3), 3);
        // The matching hop plan pairs each inbound channel with the next
        // spoke's outbound channel.
        let routes = Topology::hub_and_spoke_routes(3);
        assert_eq!(
            routes,
            vec![
                HopRoute {
                    first_leg: 0,
                    second_leg: 4
                },
                HopRoute {
                    first_leg: 1,
                    second_leg: 5
                },
                HopRoute {
                    first_leg: 2,
                    second_leg: 3
                },
            ]
        );
    }

    #[test]
    fn full_mesh_has_an_edge_per_ordered_pair() {
        let topo = Topology::full_mesh(3);
        assert_eq!(topo.label(), "mesh-3");
        let resolved = topo.resolve("ibc-0", "ibc-1", 2).unwrap();
        assert_eq!(resolved.edges.len(), 6);
        assert_eq!(resolved.total_channels(), 12);
        assert_eq!((resolved.edges[0].src, resolved.edges[0].dst), (0, 1));
        assert_eq!((resolved.edges[5].src, resolved.edges[5].dst), (2, 1));
    }

    #[test]
    fn resolution_rejects_malformed_topologies() {
        let unknown = Topology {
            chains: vec!["ibc-0".into(), "ibc-1".into()],
            edges: vec![TopologyEdge::new("ibc-0", "ibc-9")],
        };
        assert!(matches!(
            unknown.resolve("ibc-0", "ibc-1", 1),
            Err(TopologyError::UnknownChain { edge: 0, .. })
        ));
        let dup = Topology {
            chains: vec!["ibc-0".into(), "ibc-0".into()],
            edges: vec![TopologyEdge::new("ibc-0", "ibc-0")],
        };
        assert!(matches!(
            dup.resolve("ibc-0", "ibc-1", 1),
            Err(TopologyError::DuplicateChain { .. })
        ));
        let invalid = Topology {
            chains: vec!["BAD".into(), "ibc-1".into()],
            edges: vec![TopologyEdge::new("BAD", "ibc-1")],
        };
        assert!(matches!(
            invalid.resolve("ibc-0", "ibc-1", 1),
            Err(TopologyError::InvalidChainId { .. })
        ));
        let lonely = Topology {
            chains: vec!["ibc-0".into()],
            edges: vec![],
        };
        assert!(matches!(
            lonely.resolve("ibc-0", "ibc-1", 1),
            Err(TopologyError::TooFewChains { count: 1 })
        ));
        let edgeless = Topology {
            chains: vec!["ibc-0".into(), "ibc-1".into()],
            edges: vec![],
        };
        assert!(matches!(
            edgeless.resolve("ibc-0", "ibc-1", 1),
            Err(TopologyError::NoEdges)
        ));
        let loopy = Topology {
            chains: vec!["ibc-0".into(), "ibc-1".into()],
            edges: vec![TopologyEdge::new("ibc-1", "ibc-1")],
        };
        assert!(matches!(
            loopy.resolve("ibc-0", "ibc-1", 1),
            Err(TopologyError::SelfLoop { edge: 0 })
        ));
    }

    #[test]
    fn topologies_and_hop_routes_round_trip_through_serde_values() {
        let topo = Topology::hub_and_spoke(2);
        assert_eq!(Topology::from_value(&topo.to_value()).unwrap(), topo);
        let pair = Topology::default();
        assert_eq!(Topology::from_value(&pair.to_value()).unwrap(), pair);
        let route = HopRoute {
            first_leg: 1,
            second_leg: 3,
        };
        assert_eq!(HopRoute::from_value(&route.to_value()).unwrap(), route);
    }

    #[test]
    fn labels_distinguish_presets_from_custom_graphs() {
        assert_eq!(Topology::line(4).label(), "line-4");
        assert_eq!(Topology::hub_and_spoke(5).label(), "hub-5");
        assert_eq!(Topology::full_mesh(4).label(), "mesh-4");
        let custom = Topology {
            chains: vec!["ibc-0".into(), "ibc-1".into(), "ibc-2".into()],
            edges: vec![
                TopologyEdge::new("ibc-0", "ibc-1"),
                TopologyEdge::new("ibc-2", "ibc-1"),
            ],
        };
        assert_eq!(custom.label(), "custom-3x2");
    }
}
