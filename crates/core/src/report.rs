//! Execution reports: machine-readable summaries of an experiment run, the
//! framework's equivalent of the paper tool's benchmark reports.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A named experiment report: scalar metrics plus free-form notes.
///
/// # Example
///
/// ```rust
/// use xcc_framework::report::ExecutionReport;
///
/// let mut report = ExecutionReport::new("fig8-one-relayer");
/// report.set_metric("throughput_tfps", 80.0);
/// report.add_note("input rate 140 rps, 200 ms RTT");
/// assert!(report.to_json().contains("throughput_tfps"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Name of the experiment (e.g. `fig12-latency-breakdown`).
    pub name: String,
    /// Scalar metrics keyed by name.
    pub metrics: BTreeMap<String, f64>,
    /// Free-form notes (parameters, caveats).
    pub notes: Vec<String>,
    /// Tabular rows (already formatted) for table-style outputs.
    pub rows: Vec<String>,
}

impl ExecutionReport {
    /// Creates an empty report.
    pub fn new(name: impl Into<String>) -> Self {
        ExecutionReport {
            name: name.into(),
            metrics: BTreeMap::new(),
            notes: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets (or replaces) a scalar metric.
    pub fn set_metric(&mut self, key: impl Into<String>, value: f64) {
        self.metrics.insert(key.into(), value);
    }

    /// Reads a metric back, if present.
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.get(key).copied()
    }

    /// Appends a note.
    pub fn add_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Appends a pre-formatted table row.
    pub fn add_row(&mut self, row: impl Into<String>) {
        self.rows.push(row.into());
    }

    /// Serialises the report to pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics only if serialisation fails, which would indicate a bug in the
    /// report structure itself.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }

    /// Serialises the metrics as a two-column CSV table (`metric,value`),
    /// prefixed by a `name` row, for spreadsheet-friendly consumption.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        out.push_str(&format!("name,{}\n", self.name.replace(',', ";")));
        for (key, value) in &self.metrics {
            out.push_str(&format!("{key},{value}\n"));
        }
        out
    }
}

impl fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.name)?;
        for (key, value) in &self.metrics {
            writeln!(f, "  {key}: {value:.3}")?;
        }
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        for note in &self.notes {
            writeln!(f, "  # {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_json() {
        let mut report = ExecutionReport::new("test");
        report.set_metric("x", 1.5);
        report.add_note("note");
        report.add_row("a | b | c");
        let parsed: ExecutionReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(parsed.metric("x"), Some(1.5));
        assert_eq!(parsed.metric("missing"), None);
    }

    #[test]
    fn csv_lists_metrics_in_key_order() {
        let mut report = ExecutionReport::new("csv-test");
        report.set_metric("b", 2.0);
        report.set_metric("a", 1.5);
        assert_eq!(report.to_csv(), "metric,value\nname,csv-test\na,1.5\nb,2\n");
    }

    #[test]
    fn display_includes_all_sections() {
        let mut report = ExecutionReport::new("demo");
        report.set_metric("throughput", 90.0);
        report.add_row("row-1");
        report.add_note("caveat");
        let text = report.to_string();
        assert!(text.contains("== demo =="));
        assert!(text.contains("throughput"));
        assert!(text.contains("row-1"));
        assert!(text.contains("# caveat"));
    }
}
