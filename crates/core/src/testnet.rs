//! The Setup module: deploys two chains, opens the configured number of IBC
//! channels between them and instantiates the relayers — the automated
//! equivalent of the paper's testnet deployment scripts.

use xcc_chain::chain::{Chain, SharedChain};
use xcc_chain::genesis::GenesisConfig;
use xcc_ibc::channel::Order;
use xcc_ibc::error::IbcError;
use xcc_ibc::ids::PortId;
use xcc_relayer::config::RelayerConfig;
use xcc_relayer::relayer::{RelayPath, Relayer};
use xcc_relayer::strategy::ChannelPolicy;
use xcc_rpc::cost::RpcCostModel;
use xcc_rpc::endpoint::RpcEndpoint;
use xcc_sim::{DetRng, LatencyModel, SimTime};
use xcc_tendermint::mempool::MempoolConfig;
use xcc_tendermint::params::{ConsensusParams, ConsensusTimingModel};

use crate::config::DeploymentConfig;

/// A fully deployed cross-chain testnet: two chains, one or more open
/// transfer channels, and the configured number of relayer instances.
pub struct Testnet {
    /// The source chain (transfers originate here).
    pub chain_a: SharedChain,
    /// The destination chain.
    pub chain_b: SharedChain,
    /// The relayer instances serving the channels.
    pub relayers: Vec<Relayer>,
    /// The primary relay path (channel 0) — the only one in the paper's
    /// single-channel deployments.
    pub path: RelayPath,
    /// Every open relay path, in channel order (`paths[0] == path`).
    pub paths: Vec<RelayPath>,
    /// The deployment configuration used.
    pub deployment: DeploymentConfig,
    /// The experiment's root random stream.
    pub rng: DetRng,
}

/// Builds an RPC endpoint for a chain using the deployment's latency model
/// and cost-calibration knobs.
pub fn make_rpc(
    chain: &SharedChain,
    deployment: &DeploymentConfig,
    rng: &DetRng,
    label: &str,
) -> RpcEndpoint {
    let cost = RpcCostModel {
        batched_pull_per_item: xcc_sim::SimDuration::from_micros(
            deployment.batched_pull_per_item_us,
        ),
        ..RpcCostModel::default()
    };
    RpcEndpoint::new(
        chain.clone(),
        cost,
        LatencyModel::constant_rtt_ms(deployment.network_rtt_ms),
        rng.fork(label),
    )
}

/// The relayer-process topology a deployment expands to: one entry per
/// simulated process. Under [`ChannelPolicy::Dedicated`] the fleet has one
/// process per channel, times `relayer_count` redundant replicas per channel
/// (the paper's "more Hermes instances" as real processes); every other
/// policy keeps the paper's shape of `relayer_count` processes each serving
/// every channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSlot {
    /// The process id (index into `Testnet::relayers`, and the account
    /// suffix `relayer-<id>`).
    pub process: usize,
    /// The single channel this process is pinned to, for dedicated fleets.
    pub channel: Option<usize>,
    /// The process's replica index within its coordination group.
    pub coordination_id: usize,
    /// The size of the process's coordination group (the divisor work is
    /// partitioned by).
    pub group_size: usize,
}

/// Expands a deployment into its relayer-process fleet, in process-id order.
///
/// `Dedicated` builds `channel_count * relayer_count` processes: process `p`
/// serves channel `p % channel_count` as replica `p / channel_count` of that
/// channel's `relayer_count`-strong group. With `channel_count == 1` this
/// degenerates to exactly the non-dedicated shape, so single-channel
/// dedicated deployments equal the baseline by construction.
pub fn fleet_plan(deployment: &DeploymentConfig) -> Vec<FleetSlot> {
    let replicas = deployment.relayer_count;
    let channels = deployment.channel_count.max(1);
    if deployment.relayer_strategy.channel_policy == ChannelPolicy::Dedicated {
        (0..channels * replicas)
            .map(|p| FleetSlot {
                process: p,
                channel: Some(p % channels),
                coordination_id: p / channels,
                group_size: replicas,
            })
            .collect()
    } else {
        (0..replicas)
            .map(|p| FleetSlot {
                process: p,
                channel: None,
                coordination_id: p,
                group_size: replicas,
            })
            .collect()
    }
}

impl Testnet {
    /// Deploys the testnet described by `deployment`.
    ///
    /// Both chains produce their first (empty) block, light clients of each
    /// other are created from those headers, and the connection and channel
    /// handshakes are executed so that `deployment.channel_count` transfer
    /// channels are `Open` on both ends before the benchmark starts — the
    /// work the paper's Setup module automates. The relayer fleet follows
    /// [`fleet_plan`]: `relayer_count` shared processes, or one process per
    /// channel (times `relayer_count` replicas) under
    /// [`ChannelPolicy::Dedicated`].
    pub fn build(deployment: &DeploymentConfig) -> Self {
        let rng = DetRng::new(deployment.seed);
        let fleet = fleet_plan(deployment);

        let mut genesis_a = GenesisConfig::new(deployment.source_chain_id.clone())
            .with_validators(deployment.validators_per_chain)
            .with_funded_accounts("user", deployment.user_accounts, deployment.account_balance);
        let mut genesis_b = GenesisConfig::new(deployment.destination_chain_id.clone())
            .with_validators(deployment.validators_per_chain)
            .with_funded_accounts("user", deployment.user_accounts, deployment.account_balance);
        for r in 0..fleet.len().max(1) {
            genesis_a = genesis_a.with_account(format!("relayer-{r}"), deployment.account_balance);
            genesis_b = genesis_b.with_account(format!("relayer-{r}"), deployment.account_balance);
        }

        let params = ConsensusParams {
            min_block_interval: deployment.min_block_interval,
            ..ConsensusParams::default()
        };
        let chain_a = Chain::with_params(
            genesis_a,
            params.clone(),
            ConsensusTimingModel::default(),
            MempoolConfig::default(),
        )
        .into_shared();
        let chain_b = Chain::with_params(
            genesis_b,
            params,
            ConsensusTimingModel::default(),
            MempoolConfig::default(),
        )
        .into_shared();

        // Both chains commit their genesis block so that light clients can be
        // bootstrapped from a real header.
        chain_a.borrow_mut().produce_block(SimTime::ZERO);
        chain_b.borrow_mut().produce_block(SimTime::ZERO);

        let paths = open_channels(&chain_a, &chain_b, deployment.channel_count.max(1));
        let path = paths[0].clone();

        let mut relayers = Vec::with_capacity(fleet.len());
        for slot in &fleet {
            let r = slot.process;
            let config = RelayerConfig {
                source_account: format!("relayer-{r}").into(),
                destination_account: format!("relayer-{r}").into(),
                strategy: deployment.relayer_strategy,
                instances: slot.group_size.max(1),
                channel_assignment: slot.channel,
                coordination_id: Some(slot.coordination_id),
                ..RelayerConfig::default()
            };
            let src_rpc = make_rpc(&chain_a, deployment, &rng, &format!("relayer-{r}-src"));
            let dst_rpc = make_rpc(&chain_b, deployment, &rng, &format!("relayer-{r}-dst"));
            relayers.push(Relayer::with_paths(
                r,
                config,
                paths.clone(),
                src_rpc,
                dst_rpc,
            ));
        }

        Testnet {
            chain_a,
            chain_b,
            relayers,
            path,
            paths,
            deployment: deployment.clone(),
            rng,
        }
    }
}

/// Why testnet setup failed: a precondition of the client/connection/channel
/// handshake sequence did not hold.
#[derive(Debug, Clone, PartialEq)]
pub enum SetupError {
    /// A chain has not committed the genesis block the light clients
    /// bootstrap from (`produce_block` was never called before setup).
    MissingGenesisBlock {
        /// The id of the chain missing its block.
        chain: String,
    },
    /// An IBC handshake step was rejected by the host chain.
    Handshake {
        /// The handshake step that failed (e.g. `conn_open_try`).
        step: &'static str,
        /// The rejection reported by the IBC module.
        source: IbcError,
    },
}

impl std::fmt::Display for SetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetupError::MissingGenesisBlock { chain } => write!(
                f,
                "chain {chain} has no committed genesis block to bootstrap light clients from"
            ),
            SetupError::Handshake { step, source } => {
                write!(f, "IBC handshake step {step} failed: {source}")
            }
        }
    }
}

impl std::error::Error for SetupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SetupError::MissingGenesisBlock { .. } => None,
            SetupError::Handshake { source, .. } => Some(source),
        }
    }
}

/// Creates the clients, connection and a single unordered transfer channel
/// between two freshly started chains, returning the relay path — the
/// paper's deployment.
pub fn open_channel(chain_a: &SharedChain, chain_b: &SharedChain) -> RelayPath {
    open_channels(chain_a, chain_b, 1).remove(0)
}

/// Infallible front end of [`try_open_channels`], for the common case of
/// chains this module itself deployed (where the preconditions hold by
/// construction).
pub fn open_channels(chain_a: &SharedChain, chain_b: &SharedChain, count: usize) -> Vec<RelayPath> {
    // xcc-lint: allow(panic-in-library, reason = "deployment invariant: Testnet::build commits genesis on both chains before handshaking, and handshake steps are sequenced in protocol order")
    try_open_channels(chain_a, chain_b, count).expect("handshake preconditions hold")
}

/// Creates the clients, one connection, and `count` unordered transfer
/// channels between two freshly started chains, returning one relay path per
/// channel in channel-index order.
///
/// All channels share the same client pair and connection — as on production
/// Cosmos hubs, where one connection carries many channels — so per-channel
/// work differs only in the channel ends themselves.
///
/// Fails with [`SetupError`] if either chain has not committed its genesis
/// block, or if any handshake step is rejected.
pub fn try_open_channels(
    chain_a: &SharedChain,
    chain_b: &SharedChain,
    count: usize,
) -> Result<Vec<RelayPath>, SetupError> {
    let missing = |chain: &SharedChain| SetupError::MissingGenesisBlock {
        chain: chain.borrow().id().to_string(),
    };
    let step = |step: &'static str| move |source: IbcError| SetupError::Handshake { step, source };

    let header_a = match chain_a.borrow().block_at(1) {
        Some(committed) => committed.block.header.clone(),
        None => return Err(missing(chain_a)),
    };
    let header_b = match chain_b.borrow().block_at(1) {
        Some(committed) => committed.block.header.clone(),
        None => return Err(missing(chain_b)),
    };
    let root_a = chain_a.borrow().app().ibc().commitment_root();
    let root_b = chain_b.borrow().app().ibc().commitment_root();

    let mut a = chain_a.borrow_mut();
    let mut b = chain_b.borrow_mut();
    let ibc_a = a.app_mut().ibc_mut();
    let ibc_b = b.app_mut().ibc_mut();

    // ICS-02: clients of each other.
    let (client_on_a, _) = ibc_a.create_client(&header_b, root_b);
    let (client_on_b, _) = ibc_b.create_client(&header_a, root_a);

    // ICS-03: connection handshake.
    let (conn_a, _) = ibc_a
        .conn_open_init(&client_on_a, &client_on_b)
        .map_err(step("conn_open_init"))?;
    let (conn_b, _) = ibc_b
        .conn_open_try(&client_on_b, &client_on_a, &conn_a)
        .map_err(step("conn_open_try"))?;
    ibc_a
        .conn_open_ack(&conn_a, &conn_b)
        .map_err(step("conn_open_ack"))?;
    ibc_b
        .conn_open_confirm(&conn_b)
        .map_err(step("conn_open_confirm"))?;

    // ICS-04: unordered transfer channels, as in the paper's deployment
    // (which opens exactly one).
    let port = PortId::transfer();
    let mut paths = Vec::with_capacity(count.max(1));
    for _ in 0..count.max(1) {
        let (chan_a, _) = ibc_a
            .chan_open_init(&port, &conn_a, &port, Order::Unordered)
            .map_err(step("chan_open_init"))?;
        let (chan_b, _) = ibc_b
            .chan_open_try(&port, &conn_b, &port, &chan_a, Order::Unordered)
            .map_err(step("chan_open_try"))?;
        ibc_a
            .chan_open_ack(&port, &chan_a, &chan_b)
            .map_err(step("chan_open_ack"))?;
        ibc_b
            .chan_open_confirm(&port, &chan_b)
            .map_err(step("chan_open_confirm"))?;
        paths.push(RelayPath {
            port: port.clone(),
            src_channel: chan_a,
            dst_channel: chan_b,
            client_on_dst: client_on_b.clone(),
            client_on_src: client_on_a.clone(),
        });
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_opens_the_channel_on_both_ends() {
        let deployment = DeploymentConfig {
            relayer_count: 2,
            user_accounts: 4,
            ..DeploymentConfig::default()
        };
        let testnet = Testnet::build(&deployment);
        let a = testnet.chain_a.borrow();
        let b = testnet.chain_b.borrow();
        assert_eq!(a.height(), 1);
        assert_eq!(b.height(), 1);
        assert!(a
            .app()
            .ibc()
            .channel(&testnet.path.port, &testnet.path.src_channel)
            .unwrap()
            .is_open());
        assert!(b
            .app()
            .ibc()
            .channel(&testnet.path.port, &testnet.path.dst_channel)
            .unwrap()
            .is_open());
        assert_eq!(testnet.relayers.len(), 2);
        assert_eq!(testnet.paths.len(), 1);
        assert_eq!(testnet.paths[0], testnet.path);
        // Relayer accounts are funded on both chains.
        assert!(a.app().bank().balance(&"relayer-0".into(), "uatom") > 0);
        assert!(b.app().bank().balance(&"relayer-1".into(), "uatom") > 0);
    }

    #[test]
    fn build_opens_every_configured_channel() {
        let deployment = DeploymentConfig {
            relayer_count: 1,
            channel_count: 3,
            user_accounts: 2,
            ..DeploymentConfig::default()
        };
        let testnet = Testnet::build(&deployment);
        assert_eq!(testnet.paths.len(), 3);
        let a = testnet.chain_a.borrow();
        let b = testnet.chain_b.borrow();
        for (i, path) in testnet.paths.iter().enumerate() {
            assert_eq!(path.src_channel.index(), Some(i as u64));
            assert!(a
                .app()
                .ibc()
                .channel(&path.port, &path.src_channel)
                .unwrap()
                .is_open());
            assert!(b
                .app()
                .ibc()
                .channel(&path.port, &path.dst_channel)
                .unwrap()
                .is_open());
            // One connection, one client pair, shared by every channel.
            assert_eq!(path.client_on_dst, testnet.paths[0].client_on_dst);
            assert_eq!(path.client_on_src, testnet.paths[0].client_on_src);
        }
        assert_eq!(a.app().ibc().channels_on_port(&testnet.path.port).len(), 3);
        // Every relayer serves every channel.
        assert_eq!(testnet.relayers[0].paths().len(), 3);
    }

    #[test]
    fn setup_without_genesis_block_reports_which_chain() {
        let fresh = |id: &str| {
            Chain::with_params(
                GenesisConfig::new(id).with_validators(1),
                ConsensusParams::default(),
                ConsensusTimingModel::default(),
                MempoolConfig::default(),
            )
            .into_shared()
        };
        let a = fresh("chain-a");
        let b = fresh("chain-b");
        // Neither chain has produced a block: the source chain is reported.
        let err = try_open_channels(&a, &b, 1).unwrap_err();
        match &err {
            SetupError::MissingGenesisBlock { chain } => assert_eq!(chain, "chain-a"),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("chain-a"));
        // With the source chain bootstrapped, the destination is next.
        a.borrow_mut().produce_block(SimTime::ZERO);
        let err = try_open_channels(&a, &b, 1).unwrap_err();
        assert_eq!(
            err,
            SetupError::MissingGenesisBlock {
                chain: "chain-b".into()
            }
        );
        // Both bootstrapped: the handshake succeeds end to end.
        b.borrow_mut().produce_block(SimTime::ZERO);
        let paths = try_open_channels(&a, &b, 2).unwrap();
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn fleet_plan_expands_dedicated_deployments_per_channel() {
        // Default policies keep the paper's shape: relayer_count processes.
        let shared = DeploymentConfig {
            relayer_count: 2,
            channel_count: 3,
            ..DeploymentConfig::default()
        };
        let plan = fleet_plan(&shared);
        assert_eq!(plan.len(), 2);
        assert!(plan.iter().all(|s| s.channel.is_none()));
        assert_eq!(plan[1].coordination_id, 1);
        assert_eq!(plan[1].group_size, 2);

        // Dedicated: one process per channel, times the replica count, with
        // coordination scoped to each channel's replica group.
        let dedicated = DeploymentConfig {
            relayer_count: 2,
            channel_count: 3,
            relayer_strategy: xcc_relayer::strategy::RelayerStrategy::with_channel_policy(
                ChannelPolicy::Dedicated,
            ),
            ..DeploymentConfig::default()
        };
        let plan = fleet_plan(&dedicated);
        assert_eq!(plan.len(), 6, "3 channels × 2 replicas");
        for slot in &plan {
            assert_eq!(slot.channel, Some(slot.process % 3));
            assert_eq!(slot.coordination_id, slot.process / 3);
            assert_eq!(slot.group_size, 2);
        }
        // Exactly `relayer_count` replicas own each channel.
        for channel in 0..3 {
            let replicas = plan.iter().filter(|s| s.channel == Some(channel)).count();
            assert_eq!(replicas, 2);
        }

        // One channel degenerates to the non-dedicated shape.
        let single = DeploymentConfig {
            relayer_count: 2,
            channel_count: 1,
            relayer_strategy: dedicated.relayer_strategy,
            ..DeploymentConfig::default()
        };
        let plan = fleet_plan(&single);
        assert_eq!(plan.len(), 2);
        for slot in &plan {
            assert_eq!(slot.channel, Some(0));
            assert_eq!(slot.coordination_id, slot.process);
        }

        // No relayers means no fleet, dedicated or not.
        let none = DeploymentConfig {
            relayer_count: 0,
            channel_count: 4,
            relayer_strategy: dedicated.relayer_strategy,
            ..DeploymentConfig::default()
        };
        assert!(fleet_plan(&none).is_empty());
    }

    #[test]
    fn build_deploys_the_dedicated_fleet_with_funded_accounts() {
        let deployment = DeploymentConfig {
            relayer_count: 1,
            channel_count: 3,
            user_accounts: 2,
            relayer_strategy: xcc_relayer::strategy::RelayerStrategy::with_channel_policy(
                ChannelPolicy::Dedicated,
            ),
            ..DeploymentConfig::default()
        };
        let testnet = Testnet::build(&deployment);
        assert_eq!(testnet.relayers.len(), 3, "one process per channel");
        for (channel, relayer) in testnet.relayers.iter().enumerate() {
            assert_eq!(relayer.id(), channel);
            assert_eq!(relayer.channel_assignment(), Some(channel));
            // Every process still maps the full path list, so telemetry and
            // clear scans key channels by deployment index.
            assert_eq!(relayer.paths().len(), 3);
        }
        // Every process's account is funded on both chains.
        let a = testnet.chain_a.borrow();
        let b = testnet.chain_b.borrow();
        for r in 0..3 {
            assert!(
                a.app()
                    .bank()
                    .balance(&format!("relayer-{r}").into(), "uatom")
                    > 0
            );
            assert!(
                b.app()
                    .bank()
                    .balance(&format!("relayer-{r}").into(), "uatom")
                    > 0
            );
        }
    }

    #[test]
    fn builds_are_deterministic_for_a_seed() {
        let deployment = DeploymentConfig {
            user_accounts: 2,
            ..DeploymentConfig::default()
        };
        let t1 = Testnet::build(&deployment);
        let t2 = Testnet::build(&deployment);
        assert_eq!(
            t1.chain_a
                .borrow()
                .latest_block()
                .unwrap()
                .block
                .header
                .hash(),
            t2.chain_a
                .borrow()
                .latest_block()
                .unwrap()
                .block
                .header
                .hash()
        );
        assert_eq!(t1.path, t2.path);
    }
}
