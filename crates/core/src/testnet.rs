//! The Setup module: deploys the chains of the configured topology graph,
//! opens the client/connection/channel stack of every edge and instantiates
//! the relayer fleet — the automated equivalent of the paper's testnet
//! deployment scripts, generalized from the paper's hard-wired chain pair to
//! an N-chain graph.
//!
//! The deployment's [`Topology`](crate::topology::Topology) names the chains
//! (nodes) and relay edges; every edge gets its own light-client pair, one
//! connection, and `channels` transfer channels, opened in edge-major order
//! so the global channel index space is stable. The default (sentinel)
//! topology deploys exactly the legacy `source → destination` pair, and the
//! whole construction is routed through [`Testnet::try_build`] /
//! [`SetupError`] — nothing on the production path panics.

use std::str::FromStr;

use xcc_chain::chain::{Chain, SharedChain};
use xcc_chain::genesis::GenesisConfig;
use xcc_ibc::channel::Order;
use xcc_ibc::error::IbcError;
use xcc_ibc::ids::{ChainId, PortId};
use xcc_relayer::config::RelayerConfig;
use xcc_relayer::relayer::{RelayPath, Relayer};
use xcc_relayer::strategy::ChannelPolicy;
use xcc_rpc::cost::RpcCostModel;
use xcc_rpc::endpoint::RpcEndpoint;
use xcc_sim::{DetRng, LatencyModel, SimTime};
use xcc_tendermint::mempool::MempoolConfig;
use xcc_tendermint::params::{ConsensusParams, ConsensusTimingModel};

use crate::config::DeploymentConfig;
use crate::topology::{ResolvedTopology, TopologyError};

/// A fully deployed cross-chain testnet: the topology's chains, one open
/// client/connection/channel stack per edge, and the relayer fleet staffing
/// every edge.
pub struct Testnet {
    /// The primary chain (`chains[0]`): it anchors the measurement window,
    /// drives the workload submission clock, and is the source chain of the
    /// legacy pair.
    pub chain_a: SharedChain,
    /// The second chain (`chains[1]`) — the destination of the legacy pair.
    pub chain_b: SharedChain,
    /// Every deployed chain, in topology order.
    pub chains: Vec<SharedChain>,
    /// The relayer instances serving the edges, in process-id order.
    pub relayers: Vec<Relayer>,
    /// Per relayer process, the `(src, dst)` chain indices of the edge it
    /// serves (indices into [`Testnet::chains`]).
    pub relayer_chains: Vec<(usize, usize)>,
    /// Per relayer process, the global index of its edge's first channel —
    /// the offset that maps the process's edge-local channel numbering into
    /// the global (edge-major) channel index space.
    pub relayer_channel_offset: Vec<usize>,
    /// The primary relay path (global channel 0) — the only one in the
    /// paper's single-channel deployments.
    pub path: RelayPath,
    /// Every open relay path in global channel order, edge-major
    /// (`paths[0] == path`).
    pub paths: Vec<RelayPath>,
    /// Per global path, the `(src, dst)` chain indices of its edge.
    pub path_ends: Vec<(usize, usize)>,
    /// The deployment configuration used.
    pub deployment: DeploymentConfig,
    /// The experiment's root random stream.
    pub rng: DetRng,
}

/// Builds an RPC endpoint for a chain using the deployment's latency model
/// and cost-calibration knobs.
pub fn make_rpc(
    chain: &SharedChain,
    deployment: &DeploymentConfig,
    rng: &DetRng,
    label: &str,
) -> RpcEndpoint {
    let cost = RpcCostModel {
        batched_pull_per_item: xcc_sim::SimDuration::from_micros(
            deployment.batched_pull_per_item_us,
        ),
        ..RpcCostModel::default()
    };
    RpcEndpoint::new(
        chain.clone(),
        cost,
        LatencyModel::constant_rtt_ms(deployment.network_rtt_ms),
        rng.fork(label),
    )
}

/// The relayer-process topology a deployment expands to: one entry per
/// simulated process. Every edge of the topology is staffed independently:
/// under [`ChannelPolicy::Dedicated`] an edge has one process per channel,
/// times `relayer_count` redundant replicas per channel (the paper's "more
/// Hermes instances" as real processes); every other policy keeps the
/// paper's shape of `relayer_count` processes per edge, each serving every
/// channel of that edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSlot {
    /// The process id (index into `Testnet::relayers`, and the account
    /// suffix `relayer-<id>`), unique across the whole fleet.
    pub process: usize,
    /// The topology edge this process serves (index into the resolved
    /// topology's edge list).
    pub edge: usize,
    /// The single **edge-local** channel this process is pinned to, for
    /// dedicated fleets.
    pub channel: Option<usize>,
    /// The process's replica index within its coordination group.
    pub coordination_id: usize,
    /// The size of the process's coordination group (the divisor work is
    /// partitioned by).
    pub group_size: usize,
}

/// Expands a deployment into its relayer-process fleet, in process-id order.
///
/// Resolves the deployment's topology and delegates to [`fleet_plan_for`];
/// a deployment whose topology fails to resolve gets the legacy-pair plan
/// (the error itself surfaces from [`Testnet::try_build`]).
pub fn fleet_plan(deployment: &DeploymentConfig) -> Vec<FleetSlot> {
    let resolved = deployment
        .topology
        .resolve(
            &deployment.source_chain_id,
            &deployment.destination_chain_id,
            deployment.channel_count,
        )
        .unwrap_or_else(|_| {
            crate::topology::Topology::default()
                .resolve(
                    &deployment.source_chain_id,
                    &deployment.destination_chain_id,
                    deployment.channel_count,
                )
                .unwrap_or(ResolvedTopology {
                    chains: vec![ChainId::with_index(0), ChainId::with_index(1)],
                    edges: vec![crate::topology::ResolvedEdge {
                        src: 0,
                        dst: 1,
                        channels: deployment.channel_count.max(1),
                    }],
                })
        });
    fleet_plan_for(&resolved, deployment)
}

/// Expands a resolved topology into its relayer-process fleet, edge-major.
///
/// Per edge, `Dedicated` builds `channels × relayer_count` processes:
/// within an edge, process `p` serves edge-local channel `p % channels` as
/// replica `p / channels` of that channel's `relayer_count`-strong group.
/// With one edge and one channel this degenerates to exactly the
/// non-dedicated shape, so single-channel dedicated deployments equal the
/// baseline by construction.
pub fn fleet_plan_for(
    topology: &ResolvedTopology,
    deployment: &DeploymentConfig,
) -> Vec<FleetSlot> {
    let replicas = deployment.relayer_count;
    let dedicated = deployment.relayer_strategy.channel_policy == ChannelPolicy::Dedicated;
    let mut slots = Vec::new();
    let mut process = 0;
    for (edge, resolved) in topology.edges.iter().enumerate() {
        let channels = resolved.channels.max(1);
        if dedicated {
            for p in 0..channels * replicas {
                slots.push(FleetSlot {
                    process,
                    edge,
                    channel: Some(p % channels),
                    coordination_id: p / channels,
                    group_size: replicas,
                });
                process += 1;
            }
        } else {
            for p in 0..replicas {
                slots.push(FleetSlot {
                    process,
                    edge,
                    channel: None,
                    coordination_id: p,
                    group_size: replicas,
                });
                process += 1;
            }
        }
    }
    slots
}

impl Testnet {
    /// Deploys the testnet described by `deployment`.
    ///
    /// Infallible front end of [`Testnet::try_build`] for the common case of
    /// a valid (sentinel or preset) topology.
    pub fn build(deployment: &DeploymentConfig) -> Self {
        // xcc-lint: allow(panic-in-library, reason = "convenience front end: sentinel and preset topologies resolve by construction; the fallible API is try_build")
        Self::try_build(deployment).expect("deployment topology is valid")
    }

    /// Deploys the testnet described by `deployment`, reporting topology and
    /// handshake problems as [`SetupError`]s instead of panicking.
    ///
    /// Every chain of the resolved topology produces its first (empty)
    /// block; then, per edge, light clients of each other are created from
    /// those headers and the connection and channel handshakes are executed
    /// so the edge's channels are `Open` on both ends before the benchmark
    /// starts — the work the paper's Setup module automates. The relayer
    /// fleet follows [`fleet_plan_for`]: per edge, `relayer_count` shared
    /// processes, or one process per channel (times `relayer_count`
    /// replicas) under [`ChannelPolicy::Dedicated`].
    pub fn try_build(deployment: &DeploymentConfig) -> Result<Self, SetupError> {
        let resolved = deployment
            .topology
            .resolve(
                &deployment.source_chain_id,
                &deployment.destination_chain_id,
                deployment.channel_count,
            )
            .map_err(|source| SetupError::Topology { source })?;
        let rng = DetRng::new(deployment.seed);
        let fleet = fleet_plan_for(&resolved, deployment);

        let params = ConsensusParams {
            min_block_interval: deployment.min_block_interval,
            ..ConsensusParams::default()
        };
        let mut chains = Vec::with_capacity(resolved.chains.len());
        for chain_id in &resolved.chains {
            let mut genesis = GenesisConfig::new(chain_id.as_str())
                .with_validators(deployment.validators_per_chain)
                .with_funded_accounts("user", deployment.user_accounts, deployment.account_balance);
            // Every relayer account is funded on every chain, so a process
            // can pay fees on whichever edge it serves.
            for r in 0..fleet.len().max(1) {
                genesis = genesis.with_account(format!("relayer-{r}"), deployment.account_balance);
            }
            let chain = Chain::with_params(
                genesis,
                params.clone(),
                ConsensusTimingModel::default(),
                MempoolConfig::default(),
            )
            .into_shared();
            // Each chain commits its genesis block so that light clients can
            // be bootstrapped from a real header.
            chain.borrow_mut().produce_block(SimTime::ZERO);
            chains.push(chain);
        }

        let mut paths = Vec::new();
        let mut path_ends = Vec::new();
        for edge in &resolved.edges {
            let endpoints = EdgeEndpoints {
                src: chains[edge.src].clone(),
                dst: chains[edge.dst].clone(),
            };
            for path in try_open_edge_channels(&endpoints, edge.channels)? {
                paths.push(path);
                path_ends.push((edge.src, edge.dst));
            }
        }
        let path = paths[0].clone();

        let mut relayers = Vec::with_capacity(fleet.len());
        let mut relayer_chains = Vec::with_capacity(fleet.len());
        let mut relayer_channel_offset = Vec::with_capacity(fleet.len());
        for slot in &fleet {
            let r = slot.process;
            let edge = resolved.edges[slot.edge];
            let offset = resolved.channel_offset(slot.edge);
            let edge_paths: Vec<RelayPath> = paths[offset..offset + edge.channels].to_vec();
            let config = RelayerConfig {
                source_account: format!("relayer-{r}").into(),
                destination_account: format!("relayer-{r}").into(),
                strategy: deployment.relayer_strategy,
                instances: slot.group_size.max(1),
                channel_assignment: slot.channel,
                coordination_id: Some(slot.coordination_id),
                ..RelayerConfig::default()
            };
            let src_rpc = make_rpc(
                &chains[edge.src],
                deployment,
                &rng,
                &format!("relayer-{r}-src"),
            );
            let dst_rpc = make_rpc(
                &chains[edge.dst],
                deployment,
                &rng,
                &format!("relayer-{r}-dst"),
            );
            relayers.push(Relayer::with_paths(r, config, edge_paths, src_rpc, dst_rpc));
            relayer_chains.push((edge.src, edge.dst));
            relayer_channel_offset.push(offset);
        }

        Ok(Testnet {
            chain_a: chains[0].clone(),
            chain_b: chains[1].clone(),
            chains,
            relayers,
            relayer_chains,
            relayer_channel_offset,
            path,
            paths,
            path_ends,
            deployment: deployment.clone(),
            rng,
        })
    }
}

/// Why testnet setup failed: the topology did not resolve, or a precondition
/// of the client/connection/channel handshake sequence did not hold.
#[derive(Debug, Clone, PartialEq)]
pub enum SetupError {
    /// The deployment's topology graph failed to resolve (unknown chain in
    /// an edge, duplicate names, self-loops…).
    Topology {
        /// What was wrong with the graph.
        source: TopologyError,
    },
    /// A chain has not committed the genesis block the light clients
    /// bootstrap from (`produce_block` was never called before setup).
    MissingGenesisBlock {
        /// The id of the chain missing its block.
        chain: String,
    },
    /// An IBC handshake step was rejected by the host chain.
    Handshake {
        /// The handshake step that failed (e.g. `conn_open_try`).
        step: &'static str,
        /// The rejection reported by the IBC module.
        source: IbcError,
    },
}

impl std::fmt::Display for SetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetupError::Topology { source } => {
                write!(f, "deployment topology failed to resolve: {source}")
            }
            SetupError::MissingGenesisBlock { chain } => write!(
                f,
                "chain {chain} has no committed genesis block to bootstrap light clients from"
            ),
            SetupError::Handshake { step, source } => {
                write!(f, "IBC handshake step {step} failed: {source}")
            }
        }
    }
}

impl std::error::Error for SetupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SetupError::Topology { source } => Some(source),
            SetupError::MissingGenesisBlock { .. } => None,
            SetupError::Handshake { source, .. } => Some(source),
        }
    }
}

/// The live chain handles of one topology edge, as handed to the
/// channel-opening functions: transfers relayed over the edge's channels
/// flow `src → dst`.
#[derive(Clone)]
pub struct EdgeEndpoints {
    /// The chain transfers originate from on this edge.
    pub src: SharedChain,
    /// The chain transfers are delivered to on this edge.
    pub dst: SharedChain,
}

/// Creates the clients, connection and a single unordered transfer channel
/// between two freshly started chains, returning the relay path.
#[deprecated(
    note = "construct an EdgeEndpoints topology edge and call try_open_edge_channels instead"
)]
pub fn open_channel(chain_a: &SharedChain, chain_b: &SharedChain) -> RelayPath {
    let edge = EdgeEndpoints {
        src: chain_a.clone(),
        dst: chain_b.clone(),
    };
    // xcc-lint: allow(panic-in-library, reason = "deprecated compat shim: the fallible edge API is try_open_edge_channels")
    let mut paths = try_open_edge_channels(&edge, 1).expect("handshake preconditions hold");
    paths.remove(0)
}

/// Creates the clients, one connection, and `count` unordered transfer
/// channels between two freshly started chains, returning one relay path per
/// channel in channel-index order.
#[deprecated(
    note = "construct an EdgeEndpoints topology edge and call try_open_edge_channels instead"
)]
pub fn open_channels(chain_a: &SharedChain, chain_b: &SharedChain, count: usize) -> Vec<RelayPath> {
    let edge = EdgeEndpoints {
        src: chain_a.clone(),
        dst: chain_b.clone(),
    };
    // xcc-lint: allow(panic-in-library, reason = "deprecated compat shim: the fallible edge API is try_open_edge_channels")
    try_open_edge_channels(&edge, count).expect("handshake preconditions hold")
}

/// Fallible pair-based front end of [`try_open_edge_channels`], kept for the
/// common case of opening channels between two chains without constructing
/// an [`EdgeEndpoints`] by hand.
pub fn try_open_channels(
    chain_a: &SharedChain,
    chain_b: &SharedChain,
    count: usize,
) -> Result<Vec<RelayPath>, SetupError> {
    try_open_edge_channels(
        &EdgeEndpoints {
            src: chain_a.clone(),
            dst: chain_b.clone(),
        },
        count,
    )
}

/// Creates the clients, one connection, and `count` unordered transfer
/// channels over one topology edge, returning one relay path per channel in
/// channel-index order. Each path carries the edge's `(src, dst)` chain
/// identifiers, so downstream consumers never rely on an implicit A/B
/// orientation.
///
/// All channels of the edge share the same client pair and connection — as
/// on production Cosmos hubs, where one connection carries many channels —
/// so per-channel work differs only in the channel ends themselves.
///
/// Fails with [`SetupError`] if either chain has not committed its genesis
/// block, or if any handshake step is rejected.
pub fn try_open_edge_channels(
    edge: &EdgeEndpoints,
    count: usize,
) -> Result<Vec<RelayPath>, SetupError> {
    let missing = |chain: &SharedChain| SetupError::MissingGenesisBlock {
        chain: chain.borrow().id().to_string(),
    };
    let step = |step: &'static str| move |source: IbcError| SetupError::Handshake { step, source };
    let chain_id = |chain: &SharedChain| {
        let id = chain.borrow().id().to_string();
        ChainId::from_str(&id).map_err(|_| SetupError::Topology {
            source: TopologyError::InvalidChainId { name: id },
        })
    };

    let src_chain = chain_id(&edge.src)?;
    let dst_chain = chain_id(&edge.dst)?;
    let header_a = match edge.src.borrow().block_at(1) {
        Some(committed) => committed.block.header.clone(),
        None => return Err(missing(&edge.src)),
    };
    let header_b = match edge.dst.borrow().block_at(1) {
        Some(committed) => committed.block.header.clone(),
        None => return Err(missing(&edge.dst)),
    };
    let root_a = edge.src.borrow().app().ibc().commitment_root();
    let root_b = edge.dst.borrow().app().ibc().commitment_root();

    let mut a = edge.src.borrow_mut();
    let mut b = edge.dst.borrow_mut();
    let ibc_a = a.app_mut().ibc_mut();
    let ibc_b = b.app_mut().ibc_mut();

    // ICS-02: clients of each other.
    let (client_on_a, _) = ibc_a.create_client(&header_b, root_b);
    let (client_on_b, _) = ibc_b.create_client(&header_a, root_a);

    // ICS-03: connection handshake.
    let (conn_a, _) = ibc_a
        .conn_open_init(&client_on_a, &client_on_b)
        .map_err(step("conn_open_init"))?;
    let (conn_b, _) = ibc_b
        .conn_open_try(&client_on_b, &client_on_a, &conn_a)
        .map_err(step("conn_open_try"))?;
    ibc_a
        .conn_open_ack(&conn_a, &conn_b)
        .map_err(step("conn_open_ack"))?;
    ibc_b
        .conn_open_confirm(&conn_b)
        .map_err(step("conn_open_confirm"))?;

    // ICS-04: unordered transfer channels, as in the paper's deployment
    // (which opens exactly one).
    let port = PortId::transfer();
    let mut paths = Vec::with_capacity(count.max(1));
    for _ in 0..count.max(1) {
        let (chan_a, _) = ibc_a
            .chan_open_init(&port, &conn_a, &port, Order::Unordered)
            .map_err(step("chan_open_init"))?;
        let (chan_b, _) = ibc_b
            .chan_open_try(&port, &conn_b, &port, &chan_a, Order::Unordered)
            .map_err(step("chan_open_try"))?;
        ibc_a
            .chan_open_ack(&port, &chan_a, &chan_b)
            .map_err(step("chan_open_ack"))?;
        ibc_b
            .chan_open_confirm(&port, &chan_b)
            .map_err(step("chan_open_confirm"))?;
        paths.push(RelayPath {
            src_chain: src_chain.clone(),
            dst_chain: dst_chain.clone(),
            port: port.clone(),
            src_channel: chan_a,
            dst_channel: chan_b,
            client_on_dst: client_on_b.clone(),
            client_on_src: client_on_a.clone(),
        });
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn build_opens_the_channel_on_both_ends() {
        let deployment = DeploymentConfig {
            relayer_count: 2,
            user_accounts: 4,
            ..DeploymentConfig::default()
        };
        let testnet = Testnet::build(&deployment);
        let a = testnet.chain_a.borrow();
        let b = testnet.chain_b.borrow();
        assert_eq!(a.height(), 1);
        assert_eq!(b.height(), 1);
        assert!(a
            .app()
            .ibc()
            .channel(&testnet.path.port, &testnet.path.src_channel)
            .unwrap()
            .is_open());
        assert!(b
            .app()
            .ibc()
            .channel(&testnet.path.port, &testnet.path.dst_channel)
            .unwrap()
            .is_open());
        assert_eq!(testnet.relayers.len(), 2);
        assert_eq!(testnet.paths.len(), 1);
        assert_eq!(testnet.paths[0], testnet.path);
        // The legacy pair is chains 0 and 1 of the topology, and the path
        // carries their identifiers.
        assert_eq!(testnet.chains.len(), 2);
        assert_eq!(testnet.path_ends, vec![(0, 1)]);
        assert_eq!(testnet.path.src_chain.as_str(), "ibc-0");
        assert_eq!(testnet.path.dst_chain.as_str(), "ibc-1");
        assert_eq!(testnet.relayer_chains, vec![(0, 1), (0, 1)]);
        assert_eq!(testnet.relayer_channel_offset, vec![0, 0]);
        // Relayer accounts are funded on both chains.
        assert!(a.app().bank().balance(&"relayer-0".into(), "uatom") > 0);
        assert!(b.app().bank().balance(&"relayer-1".into(), "uatom") > 0);
    }

    #[test]
    fn build_opens_every_configured_channel() {
        let deployment = DeploymentConfig {
            relayer_count: 1,
            channel_count: 3,
            user_accounts: 2,
            ..DeploymentConfig::default()
        };
        let testnet = Testnet::build(&deployment);
        assert_eq!(testnet.paths.len(), 3);
        let a = testnet.chain_a.borrow();
        let b = testnet.chain_b.borrow();
        for (i, path) in testnet.paths.iter().enumerate() {
            assert_eq!(path.src_channel.index(), Some(i as u64));
            assert!(a
                .app()
                .ibc()
                .channel(&path.port, &path.src_channel)
                .unwrap()
                .is_open());
            assert!(b
                .app()
                .ibc()
                .channel(&path.port, &path.dst_channel)
                .unwrap()
                .is_open());
            // One connection, one client pair, shared by every channel.
            assert_eq!(path.client_on_dst, testnet.paths[0].client_on_dst);
            assert_eq!(path.client_on_src, testnet.paths[0].client_on_src);
        }
        assert_eq!(a.app().ibc().channels_on_port(&testnet.path.port).len(), 3);
        // Every relayer serves every channel.
        assert_eq!(testnet.relayers[0].paths().len(), 3);
    }

    #[test]
    fn setup_without_genesis_block_reports_which_chain() {
        let fresh = |id: &str| {
            Chain::with_params(
                GenesisConfig::new(id).with_validators(1),
                ConsensusParams::default(),
                ConsensusTimingModel::default(),
                MempoolConfig::default(),
            )
            .into_shared()
        };
        let a = fresh("chain-a");
        let b = fresh("chain-b");
        // Neither chain has produced a block: the source chain is reported.
        let err = try_open_channels(&a, &b, 1).unwrap_err();
        match &err {
            SetupError::MissingGenesisBlock { chain } => assert_eq!(chain, "chain-a"),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("chain-a"));
        // With the source chain bootstrapped, the destination is next.
        a.borrow_mut().produce_block(SimTime::ZERO);
        let err = try_open_channels(&a, &b, 1).unwrap_err();
        assert_eq!(
            err,
            SetupError::MissingGenesisBlock {
                chain: "chain-b".into()
            }
        );
        // Both bootstrapped: the handshake succeeds end to end, and the
        // paths carry the edge's chain identifiers.
        b.borrow_mut().produce_block(SimTime::ZERO);
        let paths = try_open_channels(&a, &b, 2).unwrap();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].src_chain.as_str(), "chain-a");
        assert_eq!(paths[0].dst_chain.as_str(), "chain-b");
    }

    #[test]
    fn fleet_plan_expands_dedicated_deployments_per_channel() {
        // Default policies keep the paper's shape: relayer_count processes.
        let shared = DeploymentConfig {
            relayer_count: 2,
            channel_count: 3,
            ..DeploymentConfig::default()
        };
        let plan = fleet_plan(&shared);
        assert_eq!(plan.len(), 2);
        assert!(plan.iter().all(|s| s.channel.is_none()));
        assert!(plan.iter().all(|s| s.edge == 0));
        assert_eq!(plan[1].coordination_id, 1);
        assert_eq!(plan[1].group_size, 2);

        // Dedicated: one process per channel, times the replica count, with
        // coordination scoped to each channel's replica group.
        let dedicated = DeploymentConfig {
            relayer_count: 2,
            channel_count: 3,
            relayer_strategy: xcc_relayer::strategy::RelayerStrategy::with_channel_policy(
                ChannelPolicy::Dedicated,
            ),
            ..DeploymentConfig::default()
        };
        let plan = fleet_plan(&dedicated);
        assert_eq!(plan.len(), 6, "3 channels × 2 replicas");
        for slot in &plan {
            assert_eq!(slot.channel, Some(slot.process % 3));
            assert_eq!(slot.coordination_id, slot.process / 3);
            assert_eq!(slot.group_size, 2);
        }
        // Exactly `relayer_count` replicas own each channel.
        for channel in 0..3 {
            let replicas = plan.iter().filter(|s| s.channel == Some(channel)).count();
            assert_eq!(replicas, 2);
        }

        // One channel degenerates to the non-dedicated shape.
        let single = DeploymentConfig {
            relayer_count: 2,
            channel_count: 1,
            relayer_strategy: dedicated.relayer_strategy,
            ..DeploymentConfig::default()
        };
        let plan = fleet_plan(&single);
        assert_eq!(plan.len(), 2);
        for slot in &plan {
            assert_eq!(slot.channel, Some(0));
            assert_eq!(slot.coordination_id, slot.process);
        }

        // No relayers means no fleet, dedicated or not.
        let none = DeploymentConfig {
            relayer_count: 0,
            channel_count: 4,
            relayer_strategy: dedicated.relayer_strategy,
            ..DeploymentConfig::default()
        };
        assert!(fleet_plan(&none).is_empty());
    }

    #[test]
    fn fleet_plan_staffs_every_edge_of_a_topology() {
        // A 3-spoke hub has 6 edges; every edge gets its own processes with
        // globally unique ids, edge-major.
        let deployment = DeploymentConfig {
            relayer_count: 2,
            topology: Topology::hub_and_spoke(3),
            ..DeploymentConfig::default()
        };
        let plan = fleet_plan(&deployment);
        assert_eq!(plan.len(), 12, "6 edges × 2 relayers");
        for (i, slot) in plan.iter().enumerate() {
            assert_eq!(slot.process, i);
            assert_eq!(slot.edge, i / 2);
            assert_eq!(slot.coordination_id, i % 2);
        }

        // Dedicated fleets compose with topology: per-edge channel counts
        // expand independently.
        let dedicated = DeploymentConfig {
            relayer_count: 1,
            channel_count: 2,
            relayer_strategy: xcc_relayer::strategy::RelayerStrategy::with_channel_policy(
                ChannelPolicy::Dedicated,
            ),
            topology: Topology::line(3),
            ..DeploymentConfig::default()
        };
        let plan = fleet_plan(&dedicated);
        assert_eq!(plan.len(), 4, "2 edges × 2 inherited channels × 1 replica");
        assert_eq!(plan[0].edge, 0);
        assert_eq!(plan[0].channel, Some(0));
        assert_eq!(plan[1].channel, Some(1));
        assert_eq!(plan[2].edge, 1);
        assert_eq!(plan[2].channel, Some(0), "channel indices are edge-local");
    }

    #[test]
    fn build_deploys_the_dedicated_fleet_with_funded_accounts() {
        let deployment = DeploymentConfig {
            relayer_count: 1,
            channel_count: 3,
            user_accounts: 2,
            relayer_strategy: xcc_relayer::strategy::RelayerStrategy::with_channel_policy(
                ChannelPolicy::Dedicated,
            ),
            ..DeploymentConfig::default()
        };
        let testnet = Testnet::build(&deployment);
        assert_eq!(testnet.relayers.len(), 3, "one process per channel");
        for (channel, relayer) in testnet.relayers.iter().enumerate() {
            assert_eq!(relayer.id(), channel);
            assert_eq!(relayer.channel_assignment(), Some(channel));
            // Every process still maps the full path list of its edge, so
            // telemetry and clear scans key channels by deployment index.
            assert_eq!(relayer.paths().len(), 3);
        }
        // Every process's account is funded on both chains.
        let a = testnet.chain_a.borrow();
        let b = testnet.chain_b.borrow();
        for r in 0..3 {
            assert!(
                a.app()
                    .bank()
                    .balance(&format!("relayer-{r}").into(), "uatom")
                    > 0
            );
            assert!(
                b.app()
                    .bank()
                    .balance(&format!("relayer-{r}").into(), "uatom")
                    > 0
            );
        }
    }

    #[test]
    fn try_build_deploys_a_hub_and_spoke_topology_per_edge() {
        let deployment = DeploymentConfig {
            relayer_count: 1,
            user_accounts: 2,
            topology: Topology::hub_and_spoke(2),
            ..DeploymentConfig::default()
        };
        let testnet = Testnet::try_build(&deployment).unwrap();
        assert_eq!(testnet.chains.len(), 3, "hub + 2 spokes");
        assert_eq!(testnet.paths.len(), 4, "one channel per edge");
        assert_eq!(testnet.relayers.len(), 4, "one process per edge");
        // Edge-major global channel order: inbound spoke→hub, then outbound.
        assert_eq!(testnet.path_ends, vec![(1, 0), (2, 0), (0, 1), (0, 2)]);
        assert_eq!(testnet.paths[0].src_chain.as_str(), "ibc-1");
        assert_eq!(testnet.paths[0].dst_chain.as_str(), "ibc-hub");
        assert_eq!(testnet.paths[2].src_chain.as_str(), "ibc-hub");
        // Every edge opened its own stack: channels are open on both ends.
        for (path, &(src, dst)) in testnet.paths.iter().zip(&testnet.path_ends) {
            assert!(testnet.chains[src]
                .borrow()
                .app()
                .ibc()
                .channel(&path.port, &path.src_channel)
                .unwrap()
                .is_open());
            assert!(testnet.chains[dst]
                .borrow()
                .app()
                .ibc()
                .channel(&path.port, &path.dst_channel)
                .unwrap()
                .is_open());
        }
        // Each relayer serves exactly its edge's paths, offset into the
        // global channel space by the edge's position.
        assert_eq!(testnet.relayer_channel_offset, vec![0, 1, 2, 3]);
        for (r, relayer) in testnet.relayers.iter().enumerate() {
            assert_eq!(relayer.paths().len(), 1);
            assert_eq!(
                relayer.paths()[0],
                testnet.paths[testnet.relayer_channel_offset[r]]
            );
        }
        // Relayer accounts exist on every chain, including the spokes.
        for chain in &testnet.chains {
            let chain = chain.borrow();
            for r in 0..4 {
                assert!(
                    chain
                        .app()
                        .bank()
                        .balance(&format!("relayer-{r}").into(), "uatom")
                        > 0
                );
            }
        }
    }

    #[test]
    fn try_build_reports_invalid_topologies() {
        let deployment = DeploymentConfig {
            topology: Topology {
                chains: vec!["ibc-0".into(), "ibc-1".into()],
                edges: vec![crate::topology::TopologyEdge::new("ibc-0", "ibc-9")],
            },
            ..DeploymentConfig::default()
        };
        let Err(err) = Testnet::try_build(&deployment) else {
            panic!("an edge naming an unknown chain must fail setup");
        };
        assert!(matches!(
            err,
            SetupError::Topology {
                source: TopologyError::UnknownChain { edge: 0, .. }
            }
        ));
        assert!(err.to_string().contains("ibc-9"));
    }

    #[test]
    fn builds_are_deterministic_for_a_seed() {
        let deployment = DeploymentConfig {
            user_accounts: 2,
            ..DeploymentConfig::default()
        };
        let t1 = Testnet::build(&deployment);
        let t2 = Testnet::build(&deployment);
        assert_eq!(
            t1.chain_a
                .borrow()
                .latest_block()
                .unwrap()
                .block
                .header
                .hash(),
            t2.chain_a
                .borrow()
                .latest_block()
                .unwrap()
                .block
                .header
                .hash()
        );
        assert_eq!(t1.path, t2.path);
    }
}
