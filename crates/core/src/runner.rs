//! The experiment driver: a discrete-event loop advancing both chains, the
//! relayer processes and the workload generator in virtual time, collecting
//! the raw data the Analysis module consumes.
//!
//! # Event model
//!
//! The loop schedules three event kinds:
//!
//! * `BlockA` / `BlockB` — one chain produces its next block. The handler
//!   records the block, **notifies** every relayer process (an O(1) inbox
//!   push) and schedules one `RelayerWake(id)` per process at the current
//!   instant; it never runs pipeline code itself.
//! * `RelayerWake(id)` — process `id` drains its inbox via
//!   [`Relayer::wake`](xcc_relayer::relayer::Relayer::wake), performing its
//!   pipeline work on its own virtual-time lane (its per-chain RPC
//!   endpoints and worker watermarks). A `Some(next)` return re-schedules
//!   the process at `next`.
//! * `Fault(idx)` — the `idx`-th entry of the deployment's compiled
//!   [`FaultPlan`](crate::fault::FaultPlan) fires: a relayer process
//!   crashes or restarts, a chain halts or stretches its block interval, or
//!   a light client's trust period lapses. All fault events are scheduled
//!   up-front before the loop starts, so an **empty plan schedules
//!   nothing** and the event sequence — and therefore every golden fixture —
//!   is bit-identical to a run without fault support. At equal timestamps
//!   a fault's up-front insertion order places it before that instant's
//!   block and wake events (scheduler FIFO), so a fault always applies
//!   before the chains and relayers act on the same tick.
//!
//! # Determinism
//!
//! Ordering at equal timestamps is the scheduler's FIFO contract
//! (see [`xcc_sim::Scheduler`]): wakes scheduled by one commit run in
//! process-id order. One extra rule makes the event loop equivalent to the
//! old synchronous runner *by construction*: a block event popping while
//! relayer wakes are pending at the same instant **yields** — it re-schedules
//! itself at the current time, landing behind the wakes in FIFO order. Both
//! chains' blocks frequently commit on the same 5-second grid, and the §V
//! sequence race is sensitive to whether a relayer's broadcasts enter a
//! chain's mempool before or after that chain's same-instant commit; the
//! yield rule pins the order to "relayer work first", exactly what the
//! synchronous runner did and what the golden fixtures pin. See
//! `docs/DETERMINISM.md`.

use xcc_chain::chain::SharedChain;
use xcc_ibc::events as ibc_events;
use xcc_relayer::relayer::RelayerStats;
use xcc_relayer::telemetry::{TelemetryLog, TransferStep};
use xcc_rpc::endpoint::LaneStats;
use xcc_sim::{FaultKind, Scheduler, SimDuration, SimTime};

use crate::config::{DeploymentConfig, WorkloadConfig};
use crate::testnet::{make_rpc, Testnet};
use crate::workload::{SubmissionRecord, SubmissionStats, WorkloadConnector};

/// One committed block as observed by the driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockRecord {
    /// Height of the block.
    pub height: u64,
    /// When the proposer started assembling it.
    pub proposed_at: SimTime,
    /// When consensus on it completed.
    pub committed_at: SimTime,
    /// Number of transactions included.
    pub tx_count: usize,
    /// Number of ABCI events emitted by its transactions (a proxy for the
    /// amount of IBC work in the block).
    pub events: u64,
    /// Interval since the previous block's commit.
    pub interval: SimDuration,
}

/// Everything an experiment run produced, handed to the Analysis module.
pub struct RunOutput {
    /// Blocks committed on the source chain, in order.
    pub blocks_a: Vec<BlockRecord>,
    /// Blocks committed on the destination chain, in order.
    pub blocks_b: Vec<BlockRecord>,
    /// Merged relayer telemetry plus the workload's transfer-broadcast times.
    pub telemetry: TelemetryLog,
    /// Workload submission statistics.
    pub submission: SubmissionStats,
    /// Per-transaction submission records.
    pub submission_records: Vec<SubmissionRecord>,
    /// Per-relayer activity counters.
    pub relayer_stats: Vec<RelayerStats>,
    /// Per-process RPC lane accounting, one `(source lane, destination
    /// lane)` pair per relayer process in process-id order.
    pub rpc_lanes: Vec<(LaneStats, LaneStats)>,
    /// The source chain at the end of the run.
    pub chain_a: SharedChain,
    /// The destination chain at the end of the run.
    pub chain_b: SharedChain,
    /// The primary relay path (channel 0).
    pub path: xcc_relayer::relayer::RelayPath,
    /// Every relay path used, in channel order (`paths[0] == path`).
    pub paths: Vec<xcc_relayer::relayer::RelayPath>,
    /// Commit time of the first measurement block (the window start).
    pub measurement_start: SimTime,
    /// Commit time of the last measurement block (the window end).
    pub measurement_end: SimTime,
    /// The workload configuration that was executed.
    pub workload: WorkloadConfig,
    /// The deployment configuration that was executed.
    pub deployment: DeploymentConfig,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// The source chain produces its next block.
    BlockA,
    /// The destination chain produces its next block.
    BlockB,
    /// Relayer process `id` drains its inbox and runs its pipeline.
    RelayerWake(usize),
    /// Entry `idx` of the deployment's compiled fault timeline fires.
    Fault(usize),
}

/// Records receive / acknowledgement confirmations from committed block data
/// for packets whose events no relayer delivered, at the committing block's
/// commit time. Existing telemetry entries always win (the record API keeps
/// the earliest time, and relayer-observed steps are only ever later than
/// the commit they derive from — so this is a pure gap-filler).
fn backfill_confirmations(
    telemetry: &mut TelemetryLog,
    testnet: &Testnet,
    blocks_a: &[BlockRecord],
    blocks_b: &[BlockRecord],
) {
    // One pass per direction: `WRITE_ACK` on the destination chain fills
    // `RecvConfirmation`, `ACK_PACKET` on the source chain fills
    // `AckConfirmation`.
    let mut pass = |chain: &xcc_chain::chain::SharedChain,
                    blocks: &[BlockRecord],
                    event_kind: &str,
                    dst_side: bool,
                    step: TransferStep| {
        let chain = chain.borrow();
        for record in blocks {
            let Some(block) = chain.block_at(record.height) else {
                continue;
            };
            for result in &block.results {
                if !result.is_ok() {
                    continue;
                }
                for event in &result.events {
                    if event.kind != event_kind {
                        continue;
                    }
                    let channel = testnet.paths.iter().position(|p| {
                        let end = if dst_side {
                            &p.dst_channel
                        } else {
                            &p.src_channel
                        };
                        ibc_events::is_for_channel(event, &p.port, end)
                    });
                    let (Some(channel), Some(packet)) =
                        (channel, ibc_events::packet_from_event(event))
                    else {
                        continue;
                    };
                    let channel = channel as u64;
                    if telemetry
                        .step_time_on(channel, packet.sequence, step)
                        .is_none()
                    {
                        telemetry.record_on(channel, packet.sequence, step, record.committed_at);
                    }
                }
            }
        }
    };

    pass(
        &testnet.chain_b,
        blocks_b,
        ibc_events::WRITE_ACK,
        true,
        TransferStep::RecvConfirmation,
    );
    pass(
        &testnet.chain_a,
        blocks_a,
        ibc_events::ACK_PACKET,
        false,
        TransferStep::AckConfirmation,
    );
}

/// Runs one experiment: deploys the testnet, drives block production on both
/// chains, feeds events to the relayers, submits the workload and returns the
/// collected raw data.
pub fn run_experiment(
    deployment: &DeploymentConfig,
    workload_config: &WorkloadConfig,
) -> RunOutput {
    let mut testnet = Testnet::build(deployment);
    let workload_rpc = make_rpc(&testnet.chain_a, deployment, &testnet.rng, "workload-cli");
    let mut workload = WorkloadConnector::with_paths(
        workload_config.clone(),
        testnet.paths.clone(),
        workload_rpc,
        deployment.user_accounts,
    );

    let min_interval = deployment.min_block_interval;
    let mut sched: Scheduler<Ev> = Scheduler::new();
    // Both chains committed block 1 during setup at t = 0.
    sched.schedule_at(SimTime::ZERO + min_interval, Ev::BlockA);
    sched.schedule_at(SimTime::ZERO + min_interval, Ev::BlockB);

    // Schedule every fault event up-front. An empty plan compiles to an
    // empty timeline and performs zero scheduler calls here, which keeps the
    // scheduler's insertion-sequence stream — and with it every pre-fault
    // golden fixture — bit-identical (see docs/DETERMINISM.md).
    let faults = deployment.fault_plan.compile();
    for idx in 0..faults.len() {
        if let Some((at, _)) = faults.get(idx) {
            sched.schedule_at(at, Ev::Fault(idx));
        }
    }
    // Per-chain fault state, indexed by fault-service id (0 = source chain A,
    // 1 = destination chain B): when a halt ends, and the (factor, until)
    // window of a block-interval stretch.
    let mut halt_until = [SimTime::ZERO; 2];
    let mut stretch = [(1u64, SimTime::ZERO); 2];
    let block_interval = |stretch: &[(u64, SimTime); 2], service: usize, t: SimTime| {
        let (factor, until) = stretch[service];
        if t < until {
            min_interval * factor
        } else {
            min_interval
        }
    };

    let mut blocks_a: Vec<BlockRecord> = Vec::new();
    let mut blocks_b: Vec<BlockRecord> = Vec::new();
    let mut last_commit_a = SimTime::ZERO;
    let mut last_commit_b = SimTime::ZERO;
    let mut measurement_start = SimTime::ZERO;
    let mut measurement_end = SimTime::ZERO;

    // The first workload window is submitted right away so that its
    // transactions are available for the first measurement block.
    workload.submit_window(SimTime::ZERO, testnet.chain_b.borrow().height());

    let target_blocks = workload_config.measurement_blocks;
    let grace_blocks = workload_config.completion_grace_blocks;
    let mut source_running = true;
    // Relayer wakes outstanding at the current instant. Block events yield
    // to these (see the module docs): because time advances monotonically,
    // any outstanding wake scheduled at or before `now` is at exactly `now`,
    // so a single counter per instant suffices.
    let mut wakes_due: Vec<(SimTime, usize)> = Vec::new();
    // The single home of the invariant "wakes_due counts exactly the
    // `RelayerWake` events in the scheduler": every schedule site records
    // here, the `RelayerWake` arm decrements.
    fn note_wakes(wakes_due: &mut Vec<(SimTime, usize)>, at: SimTime, count: usize) {
        if count == 0 {
            return;
        }
        match wakes_due.iter_mut().find(|(t, _)| *t == at) {
            Some((_, pending)) => *pending += count,
            None => wakes_due.push((at, count)),
        }
    }
    let schedule_wakes = |sched: &mut Scheduler<Ev>,
                          wakes_due: &mut Vec<(SimTime, usize)>,
                          at: SimTime,
                          count: usize| {
        for id in 0..count {
            sched.schedule_at(at, Ev::RelayerWake(id));
        }
        note_wakes(wakes_due, at, count);
    };

    while let Some((t, ev)) = sched.pop() {
        let wakes_pending_now = wakes_due
            .iter()
            .any(|(at, pending)| *at == t && *pending > 0);
        match ev {
            Ev::BlockA | Ev::BlockB if wakes_pending_now => {
                // Relayer wakes are already queued at this instant: yield so
                // the processes run first (FIFO puts the re-scheduled block
                // behind them), preserving the synchronous runner's
                // relayer-work-before-next-commit order.
                sched.schedule_at(t, ev);
            }
            // A halted chain (`ChainHalt` fault) produces no block until the
            // halt window ends; its block event parks at the halt deadline.
            Ev::BlockA if t < halt_until[0] => {
                sched.schedule_at(halt_until[0], Ev::BlockA);
            }
            Ev::BlockB if t < halt_until[1] => {
                sched.schedule_at(halt_until[1], Ev::BlockB);
            }
            Ev::BlockA => {
                let outcome = testnet.chain_a.borrow_mut().produce_block(t);
                let record = BlockRecord {
                    height: outcome.height,
                    proposed_at: t,
                    committed_at: outcome.committed_at,
                    tx_count: outcome.tx_count,
                    events: outcome.included_messages,
                    interval: outcome.committed_at - last_commit_a,
                };
                last_commit_a = outcome.committed_at;
                blocks_a.push(record);

                // The commit only notifies the relayer processes; their
                // pipeline work runs at the wake events scheduled below.
                for relayer in &mut testnet.relayers {
                    relayer.notify_source_block(outcome.height, outcome.committed_at);
                }
                schedule_wakes(&mut sched, &mut wakes_due, t, testnet.relayers.len());

                // Measurement bookkeeping: block 2 is the first block that can
                // contain workload transactions.
                let measured = blocks_a.len() as u64; // block heights 2, 3, …
                if measured == 1 {
                    measurement_start = outcome.committed_at;
                }
                if measured == target_blocks {
                    measurement_end = outcome.committed_at;
                }

                if !workload.finished_submitting() {
                    workload.submit_window(outcome.committed_at, testnet.chain_b.borrow().height());
                }

                let stop = if measured < target_blocks {
                    false
                } else if !workload_config.run_to_completion {
                    true
                } else {
                    let chain = testnet.chain_a.borrow();
                    let ibc = chain.app().ibc();
                    let outstanding: usize = testnet
                        .paths
                        .iter()
                        .map(|path| {
                            let sent = ibc.sent_sequences(&path.port, &path.src_channel);
                            ibc.unacknowledged_packets(&path.port, &path.src_channel, &sent)
                                .len()
                        })
                        .sum();
                    let done = workload.finished_submitting() && outstanding == 0;
                    done || measured >= target_blocks + grace_blocks
                };
                if !stop {
                    let interval = block_interval(&stretch, 0, t);
                    sched.schedule_at(outcome.committed_at.max(t + interval), Ev::BlockA);
                } else {
                    source_running = false;
                    if measurement_end == SimTime::ZERO {
                        measurement_end = outcome.committed_at;
                    }
                }
            }
            Ev::BlockB => {
                let outcome = testnet.chain_b.borrow_mut().produce_block(t);
                let record = BlockRecord {
                    height: outcome.height,
                    proposed_at: t,
                    committed_at: outcome.committed_at,
                    tx_count: outcome.tx_count,
                    events: outcome.included_messages,
                    interval: outcome.committed_at - last_commit_b,
                };
                last_commit_b = outcome.committed_at;
                blocks_b.push(record);

                for relayer in &mut testnet.relayers {
                    relayer.notify_dest_block(outcome.height, outcome.committed_at);
                }
                schedule_wakes(&mut sched, &mut wakes_due, t, testnet.relayers.len());

                // The destination chain keeps producing blocks for as long as
                // the source side is still running; once the source side has
                // stopped, pending recvs can no longer complete anyway.
                if source_running {
                    let interval = block_interval(&stretch, 1, t);
                    sched.schedule_at(outcome.committed_at.max(t + interval), Ev::BlockB);
                }
            }
            Ev::RelayerWake(id) => {
                if let Some((_, pending)) = wakes_due.iter_mut().find(|(at, _)| *at == t) {
                    *pending = pending.saturating_sub(1);
                }
                wakes_due.retain(|(at, pending)| *at > t || *pending > 0);
                if let Some(next) = testnet.relayers[id].wake(t) {
                    let at = next.max(t);
                    sched.schedule_at(at, Ev::RelayerWake(id));
                    note_wakes(&mut wakes_due, at, 1);
                }
            }
            Ev::Fault(idx) => {
                let Some((_, kind)) = faults.get(idx) else {
                    continue;
                };
                match kind {
                    // Out-of-range process / path indices are tolerated so a
                    // sweep can apply one plan across deployments of
                    // different sizes: the fault simply has no target.
                    FaultKind::ProcessCrash { process } => {
                        if let Some(relayer) = testnet.relayers.get_mut(process) {
                            relayer.crash(t);
                        }
                    }
                    FaultKind::ProcessRestart { process } => {
                        if let Some(relayer) = testnet.relayers.get_mut(process) {
                            relayer.restart(t);
                            // Rejoin through the ordinary wake protocol so the
                            // replayed inbox drains on the process's own lane.
                            sched.schedule_at(t, Ev::RelayerWake(process));
                            note_wakes(&mut wakes_due, t, 1);
                        }
                    }
                    FaultKind::ServiceHalt { service, duration } => {
                        if service < halt_until.len() {
                            halt_until[service] = halt_until[service].max(t + duration);
                        }
                    }
                    FaultKind::ServiceStretch {
                        service,
                        factor,
                        duration,
                    } => {
                        if service < stretch.len() {
                            stretch[service] = (factor.max(1), t + duration);
                        }
                    }
                    FaultKind::TrustExpiry { subject } => {
                        // The trust period of the client *on the destination
                        // chain* lapses: recv verification for this path is
                        // stranded until out-of-band recovery (not modelled),
                        // while source-side ack/timeout handling stays live.
                        if let Some(path) = testnet.paths.get(subject) {
                            let _ = testnet
                                .chain_b
                                .borrow_mut()
                                .app_mut()
                                .ibc_mut()
                                .expire_client(&path.client_on_dst);
                        }
                    }
                }
            }
        }
    }

    // Merge telemetry from every relayer and attach the workload's broadcast
    // timestamps to the packet sequences each committed transaction created.
    let mut telemetry = TelemetryLog::new();
    let mut relayer_stats = Vec::new();
    let mut rpc_lanes = Vec::new();
    for relayer in &testnet.relayers {
        telemetry.merge(relayer.telemetry());
        relayer_stats.push(*relayer.stats());
        rpc_lanes.push(relayer.lane_stats());
    }
    {
        let chain = testnet.chain_a.borrow();
        for record in workload.records() {
            if !record.accepted {
                continue;
            }
            let Some((_, _, result)) = chain.find_tx(&record.tx_hash) else {
                continue;
            };
            for event in &result.events {
                if event.kind == ibc_events::SEND_PACKET {
                    if let Some(packet) = ibc_events::packet_from_event(event) {
                        telemetry.record_on(
                            record.channel as u64,
                            packet.sequence,
                            TransferStep::TransferBroadcast,
                            record.broadcast_at,
                        );
                    }
                }
            }
        }
    }

    // The Analysis module reads committed transactions straight off the
    // chains (the framework's Cross-chain Event Processor pulls block data
    // over RPC, independently of the relayers' subscriptions), so receive /
    // acknowledgement confirmations are backfilled at block commit time for
    // packets the relayers never observed — e.g. events lost to an
    // oversized WebSocket frame (§V). Steps the relayers did observe keep
    // their original event-delivery timestamps: the backfill never
    // overwrites an existing record.
    backfill_confirmations(&mut telemetry, &testnet, &blocks_a, &blocks_b);

    RunOutput {
        blocks_a,
        blocks_b,
        telemetry,
        submission: workload.stats(),
        submission_records: workload.records().to_vec(),
        relayer_stats,
        rpc_lanes,
        chain_a: testnet.chain_a.clone(),
        chain_b: testnet.chain_b.clone(),
        path: testnet.path.clone(),
        paths: testnet.paths.clone(),
        measurement_start,
        measurement_end,
        workload: workload_config.clone(),
        deployment: deployment.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_run_completes_transfers_end_to_end() {
        let deployment = DeploymentConfig {
            user_accounts: 4,
            relayer_count: 1,
            network_rtt_ms: 0,
            ..DeploymentConfig::default()
        };
        let workload = WorkloadConfig {
            total_transfers: 200,
            submission_blocks: 1,
            measurement_blocks: 4,
            run_to_completion: true,
            completion_grace_blocks: 40,
            ..WorkloadConfig::default()
        };
        let run = run_experiment(&deployment, &workload);
        assert_eq!(run.submission.submitted, 200);
        // All 200 transfers eventually acknowledge back on the source chain.
        assert_eq!(
            run.telemetry.count_for_step(TransferStep::AckConfirmation),
            200
        );
        assert!(run.blocks_a.len() >= 4);
        assert!(!run.blocks_b.is_empty());
        assert!(run.measurement_end > run.measurement_start);
        // Funds actually moved: vouchers exist on chain B.
        let voucher = format!("transfer/{}/uatom", run.path.dst_channel);
        let total: u128 = (0..4)
            .map(|i| {
                run.chain_b
                    .borrow()
                    .app()
                    .bank()
                    .balance(&format!("user-{i}").into(), &voucher)
            })
            .sum();
        assert_eq!(total, 200);
    }
}
