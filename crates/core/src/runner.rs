//! The experiment driver: a discrete-event loop advancing every chain of the
//! deployment's topology, the relayer processes and the workload generator in
//! virtual time, collecting the raw data the Analysis module consumes.
//!
//! # Event model
//!
//! The loop schedules three event kinds:
//!
//! * `Block(chain)` — one chain of the topology produces its next block. The
//!   handler records the block, **notifies** the relayer processes whose edge
//!   touches that chain (an O(1) inbox push) and schedules one
//!   `RelayerWake(id)` per notified process at the current instant; it never
//!   runs pipeline code itself. Chain 0 is the primary chain: its commits
//!   anchor the measurement window, drive workload submission and decide when
//!   the run stops. In the legacy two-chain topology `Block(0)` / `Block(1)`
//!   are exactly the old `BlockA` / `BlockB` events.
//! * `RelayerWake(id)` — process `id` drains its inbox via
//!   [`Relayer::wake`](xcc_relayer::relayer::Relayer::wake), performing its
//!   pipeline work on its own virtual-time lane (its per-chain RPC
//!   endpoints and worker watermarks). A `Some(next)` return re-schedules
//!   the process at `next`.
//! * `Fault(idx)` — the `idx`-th entry of the deployment's compiled
//!   [`FaultPlan`](crate::fault::FaultPlan) fires: a relayer process
//!   crashes or restarts, a chain halts or stretches its block interval, or
//!   a light client's trust period lapses. All fault events are scheduled
//!   up-front before the loop starts, so an **empty plan schedules
//!   nothing** and the event sequence — and therefore every golden fixture —
//!   is bit-identical to a run without fault support. At equal timestamps
//!   a fault's up-front insertion order places it before that instant's
//!   block and wake events (scheduler FIFO), so a fault always applies
//!   before the chains and relayers act on the same tick.
//!
//! # Multi-hop forwarding
//!
//! When the workload carries a hop plan, a [`HopForwarder`] rides along: at
//! every block commit it scans the committed block for first-leg packet
//! acknowledgements and submits the matching second-leg transfers on the mid
//! chain. A run without hop routes constructs an inert forwarder that
//! performs no RPC calls and no scheduler interaction, keeping hop-free runs
//! event-identical.
//!
//! # Determinism
//!
//! Ordering at equal timestamps is the scheduler's FIFO contract
//! (see [`xcc_sim::Scheduler`]): wakes scheduled by one commit run in
//! process-id order. One extra rule makes the event loop equivalent to the
//! old synchronous runner *by construction*: a block event popping while
//! relayer wakes are pending at the same instant **yields** — it re-schedules
//! itself at the current time, landing behind the wakes in FIFO order. The
//! chains' blocks frequently commit on the same 5-second grid, and the §V
//! sequence race is sensitive to whether a relayer's broadcasts enter a
//! chain's mempool before or after that chain's same-instant commit; the
//! yield rule pins the order to "relayer work first", exactly what the
//! synchronous runner did and what the golden fixtures pin. See
//! `docs/DETERMINISM.md`.

use std::collections::BTreeMap;

use xcc_chain::chain::SharedChain;
use xcc_ibc::events as ibc_events;
use xcc_relayer::relayer::RelayerStats;
use xcc_relayer::telemetry::{TelemetryLog, TransferStep};
use xcc_rpc::endpoint::{LaneStats, RpcEndpoint};
use xcc_sim::{prof, FaultKind, Scheduler, SchedulerBackend, SimDuration, SimTime};
use xcc_tendermint::hash::Hash;

use crate::config::{DeploymentConfig, WorkloadConfig};
use crate::testnet::{make_rpc, SetupError, Testnet};
use crate::topology::HopRoute;
use crate::work::WorkProfile;
use crate::workload::{
    ForwardRecord, HopForwarder, SubmissionRecord, SubmissionStats, WorkloadConnector,
};

/// One committed block as observed by the driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockRecord {
    /// Height of the block.
    pub height: u64,
    /// When the proposer started assembling it.
    pub proposed_at: SimTime,
    /// When consensus on it completed.
    pub committed_at: SimTime,
    /// Number of transactions included.
    pub tx_count: usize,
    /// Number of ABCI events emitted by its transactions (a proxy for the
    /// amount of IBC work in the block).
    pub events: u64,
    /// Interval since the previous block's commit.
    pub interval: SimDuration,
}

/// Everything an experiment run produced, handed to the Analysis module.
pub struct RunOutput {
    /// Blocks committed on the primary chain (`chains[0]`), in order.
    pub blocks_a: Vec<BlockRecord>,
    /// Blocks committed on the second chain (`chains[1]`), in order.
    pub blocks_b: Vec<BlockRecord>,
    /// Blocks committed per chain, indexed like [`RunOutput::chains`]
    /// (`blocks[0] == blocks_a`, `blocks[1] == blocks_b`).
    pub blocks: Vec<Vec<BlockRecord>>,
    /// Merged relayer telemetry plus the workload's transfer-broadcast
    /// times, keyed by global (edge-major) channel index.
    pub telemetry: TelemetryLog,
    /// Workload submission statistics.
    pub submission: SubmissionStats,
    /// Per-transaction submission records.
    pub submission_records: Vec<SubmissionRecord>,
    /// Per-transaction second-leg forward records of the hop plan's active
    /// routes (empty without a hop plan).
    pub forwards: Vec<ForwardRecord>,
    /// Aggregate second-leg submission statistics.
    pub forward_stats: SubmissionStats,
    /// The hop routes that were actually active (in-range plan entries).
    pub hop_routes: Vec<HopRoute>,
    /// Per-relayer activity counters.
    pub relayer_stats: Vec<RelayerStats>,
    /// Per-process RPC lane accounting, one `(source lane, destination
    /// lane)` pair per relayer process in process-id order.
    pub rpc_lanes: Vec<(LaneStats, LaneStats)>,
    /// The primary chain (`chains[0]`) at the end of the run.
    pub chain_a: SharedChain,
    /// The second chain (`chains[1]`) at the end of the run.
    pub chain_b: SharedChain,
    /// Every chain of the topology at the end of the run, in topology order.
    pub chains: Vec<SharedChain>,
    /// The primary relay path (global channel 0).
    pub path: xcc_relayer::relayer::RelayPath,
    /// Every relay path used, in global channel order (`paths[0] == path`).
    pub paths: Vec<xcc_relayer::relayer::RelayPath>,
    /// Per global path, the `(src, dst)` chain indices of its edge.
    pub path_ends: Vec<(usize, usize)>,
    /// Commit time of the first measurement block (the window start).
    pub measurement_start: SimTime,
    /// Commit time of the last measurement block (the window end).
    pub measurement_end: SimTime,
    /// The workload configuration that was executed.
    pub workload: WorkloadConfig,
    /// The deployment configuration that was executed.
    pub deployment: DeploymentConfig,
    /// The run's deterministic work profile (xcc-prof counters, setup and
    /// teardown included) — see [`crate::work`].
    pub work: WorkProfile,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// The chain at this topology index produces its next block.
    Block(usize),
    /// Relayer process `id` drains its inbox and runs its pipeline.
    RelayerWake(usize),
    /// Entry `idx` of the deployment's compiled fault timeline fires.
    Fault(usize),
}

/// Records receive / acknowledgement confirmations from committed block data
/// for packets whose events no relayer delivered, at the committing block's
/// commit time. Existing telemetry entries always win (the record API keeps
/// the earliest time, and relayer-observed steps are only ever later than
/// the commit they derive from — so this is a pure gap-filler).
fn backfill_confirmations(
    telemetry: &mut TelemetryLog,
    testnet: &Testnet,
    blocks: &[Vec<BlockRecord>],
) {
    // One pass per chain: a `WRITE_ACK` fills `RecvConfirmation` for a path
    // whose destination is this chain, an `ACK_PACKET` fills
    // `AckConfirmation` for a path whose source is this chain. The chain
    // match matters in topologies — channel identifiers are per-chain
    // counters, so the same `channel-0` name legitimately exists on several
    // chains and only the `(chain, port, channel)` triple is unique.
    for (c, records) in blocks.iter().enumerate() {
        let chain = testnet.chains[c].borrow();
        for record in records {
            let Some(block) = chain.block_at(record.height) else {
                continue;
            };
            for result in &block.results {
                if !result.is_ok() {
                    continue;
                }
                for event in &result.events {
                    let (dst_side, step) = if event.kind == ibc_events::WRITE_ACK {
                        (true, TransferStep::RecvConfirmation)
                    } else if event.kind == ibc_events::ACK_PACKET {
                        (false, TransferStep::AckConfirmation)
                    } else {
                        continue;
                    };
                    let channel = testnet.paths.iter().enumerate().position(|(i, p)| {
                        let (src, dst) = testnet.path_ends[i];
                        let (on_chain, end) = if dst_side {
                            (dst == c, &p.dst_channel)
                        } else {
                            (src == c, &p.src_channel)
                        };
                        on_chain && ibc_events::is_for_channel(event, &p.port, end)
                    });
                    let (Some(channel), Some(packet)) =
                        (channel, ibc_events::packet_from_event(event))
                    else {
                        continue;
                    };
                    let channel = channel as u64;
                    if telemetry
                        .step_time_on(channel, packet.sequence, step)
                        .is_none()
                    {
                        telemetry.record_on(channel, packet.sequence, step, record.committed_at);
                    }
                }
            }
        }
    }
}

/// Attaches the workload's broadcast timestamp to every packet sequence a
/// committed transfer transaction created, under the transaction's global
/// channel index.
fn attach_broadcast(
    telemetry: &mut TelemetryLog,
    chain: &SharedChain,
    tx_hash: &Hash,
    channel: usize,
    broadcast_at: SimTime,
) {
    let chain = chain.borrow();
    let Some((_, _, result)) = chain.find_tx(tx_hash) else {
        return;
    };
    for event in &result.events {
        if event.kind == ibc_events::SEND_PACKET {
            if let Some(packet) = ibc_events::packet_from_event(event) {
                telemetry.record_on(
                    channel as u64,
                    packet.sequence,
                    TransferStep::TransferBroadcast,
                    broadcast_at,
                );
            }
        }
    }
}

/// Runs one experiment: deploys the testnet, drives block production on every
/// chain of the topology, feeds events to the relayers, submits the workload
/// (and forwards hop-plan second legs) and returns the collected raw data.
///
/// Fails with [`SetupError`] when the deployment's topology does not resolve
/// or the IBC handshakes cannot complete.
pub fn run_experiment(
    deployment: &DeploymentConfig,
    workload_config: &WorkloadConfig,
) -> Result<RunOutput, SetupError> {
    // Counters cover the whole run, setup (handshakes, funding) included:
    // the profile should account for every unit of work a spec costs, not
    // just the measurement window.
    prof::reset();
    let mut testnet = Testnet::try_build(deployment)?;
    let chain_count = testnet.chains.len();
    let path_src: Vec<usize> = testnet.path_ends.iter().map(|&(src, _)| src).collect();

    // One workload endpoint per distinct packet-source chain, in
    // first-appearance (global channel) order. The primary chain keeps the
    // historical `workload-cli` RPC label so its forked random stream — and
    // with it every two-chain golden fixture — is unchanged.
    let mut rpc_chains: Vec<usize> = Vec::new();
    for &src in &path_src {
        if !rpc_chains.contains(&src) {
            rpc_chains.push(src);
        }
    }
    let workload_rpcs: Vec<RpcEndpoint> = rpc_chains
        .iter()
        .map(|&c| {
            let label = if c == 0 {
                "workload-cli".to_string()
            } else {
                format!("workload-cli-{c}")
            };
            make_rpc(&testnet.chains[c], deployment, &testnet.rng, &label)
        })
        .collect();
    let path_rpc: Vec<usize> = path_src
        .iter()
        .map(|src| rpc_chains.iter().position(|c| c == src).unwrap_or(0))
        .collect();
    let mut workload = WorkloadConnector::for_topology(
        workload_config.clone(),
        testnet.paths.clone(),
        path_rpc,
        workload_rpcs,
        deployment.user_accounts,
    );

    // The hop forwarder only exists for in-range routes; hop-free runs get
    // an inert forwarder with zero endpoints and zero per-block work.
    let active_routes: Vec<HopRoute> = workload_config
        .hop_plan
        .iter()
        .copied()
        .filter(|r| {
            r.first_leg < testnet.paths.len()
                && r.second_leg < testnet.paths.len()
                && r.first_leg != r.second_leg
        })
        .collect();
    let mut forwarder_rpcs: BTreeMap<usize, RpcEndpoint> = BTreeMap::new();
    for route in &active_routes {
        let src = path_src[route.second_leg];
        forwarder_rpcs.entry(src).or_insert_with(|| {
            make_rpc(
                &testnet.chains[src],
                deployment,
                &testnet.rng,
                &format!("forwarder-cli-{src}"),
            )
        });
    }
    let mut forwarder = HopForwarder::new(
        workload_config,
        active_routes,
        testnet.paths.clone(),
        path_src.clone(),
        forwarder_rpcs,
        deployment.user_accounts,
    );

    let min_interval = deployment.min_block_interval;
    // Both backends pop the exact same `(time, seq)` FIFO sequence
    // (equivalence-tested in xcc-sim and by the scheduler property tests),
    // so the choice is pure host-side cost. The xcc-prof counters showed the
    // runner's queue is tiny — a few hundred events per run, dwarfed by the
    // work inside each handler — and on that shape the measured golden
    // replay is faster on the heap than on the hierarchical wheel (whose
    // cascade bookkeeping only pays off at much higher event rates), so the
    // heap stays the default. See docs/PERFORMANCE.md.
    let mut sched: Scheduler<Ev> = Scheduler::with_backend(SchedulerBackend::Heap);
    // Every chain committed block 1 during setup at t = 0; their block
    // streams start in topology order (chain 0 first, like the old
    // `BlockA` / `BlockB` insertion sequence).
    for c in 0..chain_count {
        sched.schedule_at(SimTime::ZERO + min_interval, Ev::Block(c));
    }

    // Schedule every fault event up-front. An empty plan compiles to an
    // empty timeline and performs zero scheduler calls here, which keeps the
    // scheduler's insertion-sequence stream — and with it every pre-fault
    // golden fixture — bit-identical (see docs/DETERMINISM.md).
    let faults = deployment.fault_plan.compile();
    for idx in 0..faults.len() {
        if let Some((at, _)) = faults.get(idx) {
            sched.schedule_at(at, Ev::Fault(idx));
        }
    }
    // Per-chain fault state, indexed by fault-service id (the chain's
    // topology index; 0 = the legacy source chain A, 1 = destination B):
    // when a halt ends, and the (factor, until) window of a block-interval
    // stretch.
    let mut halt_until = vec![SimTime::ZERO; chain_count];
    let mut stretch = vec![(1u64, SimTime::ZERO); chain_count];
    let block_interval = |stretch: &[(u64, SimTime)], service: usize, t: SimTime| {
        let (factor, until) = stretch[service];
        if t < until {
            min_interval * factor
        } else {
            min_interval
        }
    };

    let mut blocks: Vec<Vec<BlockRecord>> = vec![Vec::new(); chain_count];
    let mut last_commit = vec![SimTime::ZERO; chain_count];
    let mut measurement_start = SimTime::ZERO;
    let mut measurement_end = SimTime::ZERO;

    // The first workload window is submitted right away so that its
    // transactions are available for the first measurement block. The height
    // is read before the call: submitting borrows the target chains, which
    // may include the one the timeout height is read from.
    let dest_height = testnet.chains[1].borrow().height();
    workload.submit_window(SimTime::ZERO, dest_height);

    let target_blocks = workload_config.measurement_blocks;
    let grace_blocks = workload_config.completion_grace_blocks;
    let mut source_running = true;
    // Relayer wakes outstanding at the current instant. Block events yield
    // to these (see the module docs): because time advances monotonically,
    // any outstanding wake scheduled at or before `now` is at exactly `now`,
    // so a single counter per instant suffices.
    let mut wakes_due: Vec<(SimTime, usize)> = Vec::new();
    // The single home of the invariant "wakes_due counts exactly the
    // `RelayerWake` events in the scheduler": every schedule site records
    // here, the `RelayerWake` arm decrements.
    fn note_wakes(wakes_due: &mut Vec<(SimTime, usize)>, at: SimTime, count: usize) {
        if count == 0 {
            return;
        }
        match wakes_due.iter_mut().find(|(t, _)| *t == at) {
            Some((_, pending)) => *pending += count,
            None => wakes_due.push((at, count)),
        }
    }

    while let Some((t, ev)) = sched.pop() {
        let wakes_pending_now = wakes_due
            .iter()
            .any(|(at, pending)| *at == t && *pending > 0);
        match ev {
            Ev::Block(_) if wakes_pending_now => {
                // Relayer wakes are already queued at this instant: yield so
                // the processes run first (FIFO puts the re-scheduled block
                // behind them), preserving the synchronous runner's
                // relayer-work-before-next-commit order.
                sched.schedule_at(t, ev);
            }
            // A halted chain (`ChainHalt` fault) produces no block until the
            // halt window ends; its block event parks at the halt deadline.
            Ev::Block(c) if t < halt_until[c] => {
                sched.schedule_at(halt_until[c], ev);
            }
            Ev::Block(c) => {
                let outcome = testnet.chains[c].borrow_mut().produce_block(t);
                let record = BlockRecord {
                    height: outcome.height,
                    proposed_at: t,
                    committed_at: outcome.committed_at,
                    tx_count: outcome.tx_count,
                    events: outcome.included_messages,
                    interval: outcome.committed_at - last_commit[c],
                };
                last_commit[c] = outcome.committed_at;
                blocks[c].push(record);

                // The commit only notifies the relayer processes whose edge
                // touches this chain; their pipeline work runs at the wake
                // events scheduled below, in ascending process-id order (for
                // the two-chain topology every relayer touches every chain,
                // which is exactly the legacy notify-all behaviour).
                let mut woken = 0;
                for id in 0..testnet.relayers.len() {
                    let (src, dst) = testnet.relayer_chains[id];
                    if src != c && dst != c {
                        continue;
                    }
                    if src == c {
                        testnet.relayers[id]
                            .notify_source_block(outcome.height, outcome.committed_at);
                    }
                    if dst == c {
                        testnet.relayers[id]
                            .notify_dest_block(outcome.height, outcome.committed_at);
                    }
                    sched.schedule_at(t, Ev::RelayerWake(id));
                    woken += 1;
                }
                note_wakes(&mut wakes_due, t, woken);

                // Hop-plan second legs chain off this block's first-leg
                // acknowledgements; without routes this is a no-op.
                forwarder.on_block_commit(
                    c,
                    outcome.height,
                    outcome.committed_at,
                    &testnet.chains[c],
                );

                if c == 0 {
                    // Measurement bookkeeping: block 2 is the first block
                    // that can contain workload transactions.
                    let measured = blocks[0].len() as u64; // block heights 2, 3, …
                    if measured == 1 {
                        measurement_start = outcome.committed_at;
                    }
                    if measured == target_blocks {
                        measurement_end = outcome.committed_at;
                    }

                    if !workload.finished_submitting() {
                        let dest_height = testnet.chains[1].borrow().height();
                        workload.submit_window(outcome.committed_at, dest_height);
                    }

                    let stop = if measured < target_blocks {
                        false
                    } else if !workload_config.run_to_completion {
                        true
                    } else {
                        let outstanding: usize = testnet
                            .paths
                            .iter()
                            .zip(&testnet.path_ends)
                            .map(|(path, &(src, _))| {
                                let chain = testnet.chains[src].borrow();
                                let ibc = chain.app().ibc();
                                let sent = ibc.sent_sequences(&path.port, &path.src_channel);
                                ibc.unacknowledged_packets(&path.port, &path.src_channel, &sent)
                                    .len()
                            })
                            .sum();
                        // Forwarded second legs still sitting in a mid
                        // chain's mempool are not yet `sent`, so the
                        // outstanding count alone would miss them.
                        let hops_pending = forwarder.routes().iter().any(|route| {
                            let src = testnet.path_ends[route.second_leg].0;
                            testnet.chains[src].borrow().mempool_size() > 0
                        });
                        let done =
                            workload.finished_submitting() && outstanding == 0 && !hops_pending;
                        done || measured >= target_blocks + grace_blocks
                    };
                    if !stop {
                        let interval = block_interval(&stretch, 0, t);
                        sched.schedule_at(outcome.committed_at.max(t + interval), Ev::Block(0));
                    } else {
                        source_running = false;
                        if measurement_end == SimTime::ZERO {
                            measurement_end = outcome.committed_at;
                        }
                    }
                } else {
                    // The other chains keep producing blocks for as long as
                    // the primary side is still running; once it has
                    // stopped, pending recvs can no longer complete anyway.
                    if source_running {
                        let interval = block_interval(&stretch, c, t);
                        sched.schedule_at(outcome.committed_at.max(t + interval), Ev::Block(c));
                    }
                }
            }
            Ev::RelayerWake(id) => {
                prof::bump_relayer_wake();
                if let Some((_, pending)) = wakes_due.iter_mut().find(|(at, _)| *at == t) {
                    *pending = pending.saturating_sub(1);
                }
                wakes_due.retain(|(at, pending)| *at > t || *pending > 0);
                if let Some(next) = testnet.relayers[id].wake(t) {
                    let at = next.max(t);
                    sched.schedule_at(at, Ev::RelayerWake(id));
                    note_wakes(&mut wakes_due, at, 1);
                }
            }
            Ev::Fault(idx) => {
                let Some((_, kind)) = faults.get(idx) else {
                    continue;
                };
                match kind {
                    // Out-of-range process / path indices are tolerated so a
                    // sweep can apply one plan across deployments of
                    // different sizes: the fault simply has no target.
                    FaultKind::ProcessCrash { process } => {
                        if let Some(relayer) = testnet.relayers.get_mut(process) {
                            relayer.crash(t);
                        }
                    }
                    FaultKind::ProcessRestart { process } => {
                        if let Some(relayer) = testnet.relayers.get_mut(process) {
                            relayer.restart(t);
                            // Rejoin through the ordinary wake protocol so the
                            // replayed inbox drains on the process's own lane.
                            sched.schedule_at(t, Ev::RelayerWake(process));
                            note_wakes(&mut wakes_due, t, 1);
                        }
                    }
                    FaultKind::ServiceHalt { service, duration } => {
                        if service < halt_until.len() {
                            halt_until[service] = halt_until[service].max(t + duration);
                        }
                    }
                    FaultKind::ServiceStretch {
                        service,
                        factor,
                        duration,
                    } => {
                        if service < stretch.len() {
                            stretch[service] = (factor.max(1), t + duration);
                        }
                    }
                    FaultKind::TrustExpiry { subject } => {
                        // The trust period of the client *on the path's
                        // destination chain* lapses: recv verification for
                        // this path is stranded until out-of-band recovery
                        // (not modelled), while source-side ack/timeout
                        // handling stays live.
                        if let Some(path) = testnet.paths.get(subject) {
                            let dst = testnet.path_ends[subject].1;
                            let _ = testnet.chains[dst]
                                .borrow_mut()
                                .app_mut()
                                .ibc_mut()
                                .expire_client(&path.client_on_dst);
                        }
                    }
                }
            }
        }
    }

    // Merge telemetry from every relayer — re-keying each process's
    // edge-local channel indices into the global edge-major space — and
    // attach the workload's broadcast timestamps to the packet sequences
    // each committed transaction created.
    let mut telemetry = TelemetryLog::new();
    let mut relayer_stats = Vec::new();
    let mut rpc_lanes = Vec::new();
    for (r, relayer) in testnet.relayers.iter().enumerate() {
        telemetry.merge_offset(
            relayer.telemetry(),
            testnet.relayer_channel_offset[r] as u64,
        );
        relayer_stats.push(*relayer.stats());
        rpc_lanes.push(relayer.lane_stats());
    }
    for record in workload.records() {
        if !record.accepted {
            continue;
        }
        let src = path_src[record.channel];
        attach_broadcast(
            &mut telemetry,
            &testnet.chains[src],
            &record.tx_hash,
            record.channel,
            record.broadcast_at,
        );
    }
    for record in forwarder.records() {
        if !record.accepted {
            continue;
        }
        let src = path_src[record.channel];
        attach_broadcast(
            &mut telemetry,
            &testnet.chains[src],
            &record.tx_hash,
            record.channel,
            record.submitted_at,
        );
    }

    // The Analysis module reads committed transactions straight off the
    // chains (the framework's Cross-chain Event Processor pulls block data
    // over RPC, independently of the relayers' subscriptions), so receive /
    // acknowledgement confirmations are backfilled at block commit time for
    // packets the relayers never observed — e.g. events lost to an
    // oversized WebSocket frame (§V). Steps the relayers did observe keep
    // their original event-delivery timestamps: the backfill never
    // overwrites an existing record.
    backfill_confirmations(&mut telemetry, &testnet, &blocks);

    Ok(RunOutput {
        blocks_a: blocks[0].clone(),
        blocks_b: blocks[1].clone(),
        blocks,
        telemetry,
        submission: workload.stats(),
        submission_records: workload.records().to_vec(),
        forwards: forwarder.records().to_vec(),
        forward_stats: forwarder.stats(),
        hop_routes: forwarder.routes().to_vec(),
        relayer_stats,
        rpc_lanes,
        chain_a: testnet.chain_a.clone(),
        chain_b: testnet.chain_b.clone(),
        chains: testnet.chains.clone(),
        path: testnet.path.clone(),
        paths: testnet.paths.clone(),
        path_ends: testnet.path_ends.clone(),
        measurement_start,
        measurement_end,
        workload: workload_config.clone(),
        deployment: deployment.clone(),
        work: WorkProfile::from_counters(&prof::snapshot()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn a_small_run_completes_transfers_end_to_end() {
        let deployment = DeploymentConfig {
            user_accounts: 4,
            relayer_count: 1,
            network_rtt_ms: 0,
            ..DeploymentConfig::default()
        };
        let workload = WorkloadConfig {
            total_transfers: 200,
            submission_blocks: 1,
            measurement_blocks: 4,
            run_to_completion: true,
            completion_grace_blocks: 40,
            ..WorkloadConfig::default()
        };
        let run = run_experiment(&deployment, &workload).expect("pair deployment builds");
        assert_eq!(run.submission.submitted, 200);
        // All 200 transfers eventually acknowledge back on the source chain.
        assert_eq!(
            run.telemetry.count_for_step(TransferStep::AckConfirmation),
            200
        );
        assert!(run.blocks_a.len() >= 4);
        assert!(!run.blocks_b.is_empty());
        assert_eq!(run.blocks.len(), 2);
        assert_eq!(run.blocks[0], run.blocks_a);
        assert!(run.forwards.is_empty());
        assert!(run.measurement_end > run.measurement_start);
        // Funds actually moved: vouchers exist on chain B.
        let voucher = format!("transfer/{}/uatom", run.path.dst_channel);
        let total: u128 = (0..4)
            .map(|i| {
                run.chain_b
                    .borrow()
                    .app()
                    .bank()
                    .balance(&format!("user-{i}").into(), &voucher)
            })
            .sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn a_hub_run_forwards_second_legs_and_conserves_hops() {
        let spokes = 2;
        let deployment = DeploymentConfig {
            user_accounts: 4,
            relayer_count: 1,
            network_rtt_ms: 0,
            topology: Topology::hub_and_spoke(spokes),
            ..DeploymentConfig::default()
        };
        let workload = WorkloadConfig {
            total_transfers: 100,
            submission_blocks: 1,
            measurement_blocks: 4,
            run_to_completion: true,
            completion_grace_blocks: 60,
            // Direct traffic only enters the spoke→hub legs; the forwarder
            // owns the hub→spoke legs.
            channel_weights: vec![1, 1, 0, 0],
            hop_plan: Topology::hub_and_spoke_routes(spokes),
            ..WorkloadConfig::default()
        };
        let run = run_experiment(&deployment, &workload).expect("hub deployment builds");
        assert_eq!(run.chains.len(), spokes + 1);
        assert_eq!(run.hop_routes.len(), spokes);
        assert_eq!(run.submission.submitted, 100);
        // Every first-leg ack spawned a second-leg transfer, and every
        // second leg completed: two acks per transfer overall.
        assert_eq!(run.forward_stats.submitted, 100);
        assert!(run
            .forwards
            .iter()
            .all(|f| f.submitted_at >= f.triggered_at));
        assert_eq!(
            run.telemetry.count_for_step(TransferStep::AckConfirmation),
            200
        );
    }
}
