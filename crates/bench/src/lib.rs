//! Regenerates the paper's tables and figures from the scenario registry.
//!
//! Every bench binary is a one-liner over [`run_and_print`]; the `figure`
//! binary runs any registered scenario by name. Sweep behaviour is
//! controlled by the environment variables that
//! [`xcc_framework::sweep`] owns:
//!
//! * `XCC_FULL_SWEEP` — use the paper's full parameter ranges;
//! * `XCC_SWEEP_THREADS` — worker-pool size (default: all cores);
//! * `XCC_OUTPUT` — `text` (default), `json` or `csv`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;

use xcc_framework::outcome;
use xcc_framework::registry;
use xcc_framework::sweep::{OutputFormat, SweepMode};

/// Runs the named scenario with environment-configured mode/format and
/// prints the result to stdout.
///
/// # Panics
///
/// Panics when `name` is not registered; the registry's names are printed in
/// the message.
pub fn run_and_print(name: &str) {
    let entry = registry::get(name).unwrap_or_else(|| {
        panic!(
            "unknown scenario `{name}`; registered scenarios: {}",
            registry::names().join(", ")
        )
    });
    let mode = SweepMode::from_env();
    let outcomes = entry.run(mode);
    match OutputFormat::from_env() {
        OutputFormat::Text => print!("{}", entry.render(&outcomes)),
        OutputFormat::Json => {
            println!(
                "{}",
                serde_json::to_string_pretty(&outcomes).expect("outcomes serialize")
            )
        }
        OutputFormat::Csv => print!("{}", outcome::csv_table(&outcomes)),
    }
}

/// Prints the registry: one `name — title` line per scenario.
pub fn print_scenario_list() {
    for entry in registry::entries() {
        println!("{:<26} {}", entry.name, entry.title);
    }
}
