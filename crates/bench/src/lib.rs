//! Placeholder — implemented in a later step.
