//! Regenerates — and, with `--check`, verifies — the golden fixtures used by
//! `tests/relayer_strategies.rs` and `tests/multi_channel.rs`.
//!
//! The fixtures pin the exact `ScenarioOutcome`s of small fig8/fig9/fig11/
//! fig12-shaped runs so the determinism tests can prove that the pluggable
//! relayer pipeline's default strategy reproduces the pre-refactor relayer
//! bit for bit. Regenerate (and carefully review the diff!) with:
//!
//! ```text
//! cargo run --release -p xcc-bench --bin goldens > tests/fixtures/default_strategy_goldens.json
//! ```
//!
//! In `--check` mode no file is written: every fixture set is regenerated
//! in-memory and compared against `tests/fixtures/`, and the process exits
//! non-zero on any drift — CI runs this so the fixtures can never silently
//! diverge from the code that produces them.

use xcc_framework::registry;
use xcc_framework::scenarios;
use xcc_framework::spec::ExperimentSpec;
use xcc_framework::{ScenarioOutcome, SweepMode};
use xcc_relayer::strategy::{ChannelPolicy, SequenceTracking};

/// The spec set behind the golden fixtures: one small point per paper figure
/// the relayer refactor must preserve (Figs. 8, 9, 11 and 12).
pub fn golden_specs() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec::relayer_throughput()
            .named("golden/fig8/rate=20/rtt=0")
            .relayers(1)
            .rtt_ms(0)
            .input_rate(20)
            .measurement_blocks(5)
            .seed(42),
        ExperimentSpec::relayer_throughput()
            .named("golden/fig8/rate=60/rtt=200")
            .relayers(1)
            .rtt_ms(200)
            .input_rate(60)
            .measurement_blocks(5)
            .seed(42),
        ExperimentSpec::relayer_throughput()
            .named("golden/fig9/rate=20/rtt=200")
            .relayers(2)
            .rtt_ms(200)
            .input_rate(20)
            .measurement_blocks(5)
            .seed(42),
        ExperimentSpec::relayer_throughput()
            .named("golden/fig11/rate=60/rtt=200")
            .relayers(2)
            .rtt_ms(200)
            .input_rate(60)
            .measurement_blocks(5)
            .seed(42),
        ExperimentSpec::latency()
            .named("golden/fig12/transfers=400")
            .transfers(400)
            .submission_blocks(1)
            .rtt_ms(200)
            .seed(42),
    ]
}

/// The spec set behind the multi-channel golden fixture: small two-channel
/// runs with the default strategy, pinning the per-channel bookkeeping.
/// Regenerate with:
///
/// ```text
/// cargo run --release -p xcc-bench --bin goldens -- --multi-channel \
///     > tests/fixtures/multi_channel_goldens.json
/// ```
pub fn multi_channel_golden_specs() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec::relayer_throughput()
            .named("golden/multi_channel/rate=20/channels=2/rtt=0")
            .relayers(1)
            .channels(2)
            .rtt_ms(0)
            .input_rate(20)
            .measurement_blocks(5)
            .seed(42),
        ExperimentSpec::relayer_throughput()
            .named("golden/multi_channel/rate=40/channels=2/rtt=200/weighted")
            .relayers(1)
            .channels(2)
            .channel_weights([3, 1])
            .rtt_ms(200)
            .input_rate(40)
            .measurement_blocks(5)
            .seed(42),
    ]
}

/// The spec set behind the sequence-race golden fixture: the §V straddled-
/// commit repro under both sequence-tracking arms, pinning the race's cost
/// (Resync) and the fixed behaviour (MempoolAware, zero broadcast
/// failures). Regenerate with:
///
/// ```text
/// cargo run --release -p xcc-bench --bin goldens -- --sequence-race \
///     > tests/fixtures/sequence_race_goldens.json
/// ```
pub fn sequence_race_golden_specs() -> Vec<ExperimentSpec> {
    let repro = ExperimentSpec::relayer_throughput()
        .named("golden/sequence_race/rate=40/rtt=0")
        .relayers(1)
        .rtt_ms(0)
        .input_rate(40)
        .measurement_blocks(6)
        .seed(42);
    vec![
        repro
            .clone()
            .named("golden/sequence_race/rate=40/rtt=0/seqtrack=resync")
            .sequence_tracking(SequenceTracking::Resync),
        repro
            .named("golden/sequence_race/rate=40/rtt=0/seqtrack=mempool")
            .sequence_tracking(SequenceTracking::MempoolAware),
    ]
}

/// The spec set behind the dedicated-scaling golden fixture: the same
/// 4-channel, one-`relayer_count` deployment under both channel policies.
/// The shared-process arm pins the per-process throughput cap (the flat
/// `multi_channel_scaling` curve), the dedicated arm pins the fleet of one
/// relayer process per channel breaking it by ≥2× — the acceptance bar
/// `tests/dedicated_fleet.rs` asserts against this fixture. Regenerate with:
///
/// ```text
/// cargo run --release -p xcc-bench --bin goldens -- --dedicated-scaling \
///     > tests/fixtures/dedicated_scaling_goldens.json
/// ```
pub fn dedicated_scaling_golden_specs() -> Vec<ExperimentSpec> {
    let base = ExperimentSpec::relayer_throughput()
        .relayers(1)
        .channels(4)
        .rtt_ms(0)
        .input_rate(120)
        .measurement_blocks(6)
        .seed(42);
    vec![
        base.clone()
            .named("golden/dedicated_scaling/rate=120/channels=4/policy=fair-share"),
        base.named("golden/dedicated_scaling/rate=120/channels=4/policy=dedicated")
            .channel_policy(ChannelPolicy::Dedicated),
    ]
}

/// The spec set behind one fault-scenario golden fixture: the quick-mode
/// grid of the registered scenario, each point renamed under the `golden/`
/// prefix (the sweep already suffixes every point with `/faults=<label>`).
/// Pulling the grid straight from the registry keeps the fixture in
/// lockstep with the scenario definition — editing the scenario's grid is a
/// reviewed fixture regeneration, never a silent drift. Regenerate with:
///
/// ```text
/// cargo run --release -p xcc-bench --bin goldens -- --relayer-crash \
///     > tests/fixtures/relayer_crash_goldens.json
/// ```
///
/// (and `--chain-halt` / `--client-expiry` for the other two scenarios).
pub fn fault_scenario_specs(scenario: &str) -> Vec<ExperimentSpec> {
    registry_scenario_specs(scenario)
}

/// The spec set behind one topology-scenario golden fixture: the quick-mode
/// grid of the registered scenario, each point renamed under the `golden/`
/// prefix (the sweep already suffixes every point with `/topo=<label>`).
/// The hub fixture pins the measured hub-vs-pair aggregate throughput and
/// the per-hop latency breakdown. Regenerate with:
///
/// ```text
/// cargo run --release -p xcc-bench --bin goldens -- --hub-spoke \
///     > tests/fixtures/hub_spoke_scaling_goldens.json
/// ```
///
/// (and `--mesh` for `mesh_contention`).
pub fn topology_scenario_specs(scenario: &str) -> Vec<ExperimentSpec> {
    registry_scenario_specs(scenario)
}

/// The quick-mode grid of a registered scenario, each point renamed under
/// the `golden/` prefix. Pulling the grid straight from the registry keeps
/// the fixture in lockstep with the scenario definition — editing the
/// scenario's grid is a reviewed fixture regeneration, never a silent drift.
fn registry_scenario_specs(scenario: &str) -> Vec<ExperimentSpec> {
    let entry = registry::get(scenario).expect("scenario is registered");
    entry
        .grid(SweepMode::Quick)
        .points()
        .into_iter()
        .map(|spec| {
            let name = format!("golden/{}", spec.name);
            spec.named(name)
        })
        .collect()
}

/// Every fixture set: the `--check` mode walks all of them.
fn fixture_sets() -> Vec<(&'static str, Vec<ExperimentSpec>)> {
    vec![
        (
            "tests/fixtures/default_strategy_goldens.json",
            golden_specs(),
        ),
        (
            "tests/fixtures/multi_channel_goldens.json",
            multi_channel_golden_specs(),
        ),
        (
            "tests/fixtures/sequence_race_goldens.json",
            sequence_race_golden_specs(),
        ),
        (
            "tests/fixtures/dedicated_scaling_goldens.json",
            dedicated_scaling_golden_specs(),
        ),
        (
            "tests/fixtures/relayer_crash_goldens.json",
            fault_scenario_specs("relayer_crash"),
        ),
        (
            "tests/fixtures/chain_halt_goldens.json",
            fault_scenario_specs("chain_halt"),
        ),
        (
            "tests/fixtures/client_expiry_goldens.json",
            fault_scenario_specs("client_expiry"),
        ),
        (
            "tests/fixtures/hub_spoke_scaling_goldens.json",
            topology_scenario_specs("hub_spoke_scaling"),
        ),
        (
            "tests/fixtures/mesh_contention_goldens.json",
            topology_scenario_specs("mesh_contention"),
        ),
    ]
}

fn regenerate(specs: &[ExperimentSpec]) -> Vec<ScenarioOutcome> {
    specs.iter().map(scenarios::run).collect()
}

/// Regenerates every fixture set in-memory and diffs it against the file on
/// disk. Returns how many fixtures drifted.
fn check_fixtures() -> usize {
    let mut drifted = 0;
    for (path, specs) in fixture_sets() {
        let on_disk = match std::fs::read_to_string(path) {
            Ok(contents) => contents,
            Err(err) => {
                eprintln!("DRIFT: cannot read {path}: {err}");
                drifted += 1;
                continue;
            }
        };
        let pinned: Vec<ScenarioOutcome> = match serde_json::from_str(&on_disk) {
            Ok(outcomes) => outcomes,
            Err(err) => {
                eprintln!("DRIFT: {path} does not parse: {err}");
                drifted += 1;
                continue;
            }
        };
        let fresh = regenerate(&specs);
        if fresh == pinned {
            println!("ok: {path} ({} outcomes)", fresh.len());
        } else {
            drifted += 1;
            eprintln!("DRIFT: {path} no longer matches the code that produces it");
            for (fresh, pinned) in fresh.iter().zip(&pinned) {
                if fresh != pinned {
                    eprintln!("  {} diverged", pinned.spec.name);
                }
            }
            if fresh.len() != pinned.len() {
                eprintln!(
                    "  fixture has {} outcomes, regeneration produced {}",
                    pinned.len(),
                    fresh.len()
                );
            }
            eprintln!("  regenerate with the `goldens` bin and review the diff");
        }
    }
    drifted
}

/// `--bench` mode: times the release-mode replay of every golden fixture set
/// and writes `BENCH_golden.json` at the workspace root, so the replay cost
/// trajectory stays visible across PRs. "Events" are fully completed
/// transfers — the unit every golden scenario produces and the denominator
/// the paper's throughput figures use.
fn bench_fixtures() -> std::io::Result<()> {
    let mut set_rows = String::new();
    let mut total_secs = 0.0_f64;
    let mut total_completed = 0_u64;
    for (path, specs) in fixture_sets() {
        // xcc-lint: allow(wall-clock, reason = "bench harness timing only: measures the host replaying the fixtures, never feeds simulated state")
        let start = std::time::Instant::now();
        let outcomes = regenerate(&specs);
        let secs = start.elapsed().as_secs_f64();
        let completed: u64 = outcomes.iter().map(|o| o.completed()).sum();
        total_secs += secs;
        total_completed += completed;
        if !set_rows.is_empty() {
            set_rows.push_str(",\n");
        }
        set_rows.push_str(&format!(
            "    {{\n      \"fixture\": \"{path}\",\n      \"outcomes\": {},\n      \
             \"completed_transfers\": {completed},\n      \"wall_clock_secs\": {secs:.3},\n      \
             \"events_per_sec\": {:.1}\n    }}",
            outcomes.len(),
            rate(completed, secs),
        ));
        eprintln!("bench: {path}: {secs:.3}s, {completed} completed transfers");
    }
    let report = format!(
        "{{\n  \"harness\": \"goldens --bench\",\n  \"event_unit\": \"completed_transfers\",\n  \
         \"sets\": [\n{set_rows}\n  ],\n  \"total\": {{\n    \"wall_clock_secs\": \
         {total_secs:.3},\n    \"completed_transfers\": {total_completed},\n    \
         \"events_per_sec\": {:.1}\n  }}\n}}\n",
        rate(total_completed, total_secs),
    );
    std::fs::write("BENCH_golden.json", &report)?;
    println!("{report}");
    eprintln!("bench: wrote BENCH_golden.json");
    Ok(())
}

fn rate(events: u64, secs: f64) -> f64 {
    if secs > 0.0 {
        events as f64 / secs
    } else {
        0.0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--bench") {
        bench_fixtures().expect("bench report written");
        return;
    }
    if args.iter().any(|a| a == "--check") {
        let drifted = check_fixtures();
        if drifted > 0 {
            eprintln!("{drifted} fixture set(s) drifted");
            std::process::exit(2);
        }
        println!("all golden fixtures match the code that produces them");
        return;
    }
    let specs = if args.iter().any(|a| a == "--multi-channel") {
        multi_channel_golden_specs()
    } else if args.iter().any(|a| a == "--sequence-race") {
        sequence_race_golden_specs()
    } else if args.iter().any(|a| a == "--dedicated-scaling") {
        dedicated_scaling_golden_specs()
    } else if args.iter().any(|a| a == "--relayer-crash") {
        fault_scenario_specs("relayer_crash")
    } else if args.iter().any(|a| a == "--chain-halt") {
        fault_scenario_specs("chain_halt")
    } else if args.iter().any(|a| a == "--client-expiry") {
        fault_scenario_specs("client_expiry")
    } else if args.iter().any(|a| a == "--hub-spoke") {
        topology_scenario_specs("hub_spoke_scaling")
    } else if args.iter().any(|a| a == "--mesh") {
        topology_scenario_specs("mesh_contention")
    } else {
        golden_specs()
    };
    let outcomes = regenerate(&specs);
    println!(
        "{}",
        serde_json::to_string_pretty(&outcomes).expect("outcomes serialize")
    );
}
